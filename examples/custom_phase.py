"""Designing your own speculation phase, the framework way.

The paper's methodology (Section 2): write a simple algorithm optimized
for a favourable case, let it *switch* when the speculation fails, and
prove only the new phase — the composition theorem gives correctness of
the whole protocol for free.

This example builds a new first phase from scratch: **Sequencer**, a
single-server consensus that is even cheaper than Quorum (one server
instead of all), speculating that the sequencer stays up.  The workflow:

1. implement the phase against the message-passing substrate;
2. record its interface trace with phase-tagged actions;
3. check the paper's invariants I1-I3 on the traces;
4. check speculative linearizability SLin(1,2) directly;
5. compose with Backup (Paxos) and check the composed trace.

The example ships the phase with a deliberately *unsafe* timeout rule
(switch with your own proposal) alongside the fixed one, and shows the
checkers catching the bug on an adversarial schedule — the kind of
subtle speculation error the paper's methodology exists to prevent.

Run with:  python examples/custom_phase.py
"""

from repro.core import (
    TraceRecorder,
    consensus_adt,
    consensus_rinit,
    check_composition_theorem,
    is_speculatively_linearizable,
)
from repro.core.adt import decide, propose
from repro.core.invariants import check_first_phase_invariants
from repro.mp.backup import BackupClient
from repro.mp.paxos import PaxosAcceptor, PaxosCoordinator
from repro.mp.sim import Network, Process, Simulator

ADT = consensus_adt()


class SequencerServer(Process):
    """Accepts the first proposal; echoes it to everyone."""

    def __init__(self, pid):
        super().__init__(pid)
        self.accepted = None

    def on_message(self, src, message):
        if message[0] == "seq-propose":
            if self.accepted is None:
                self.accepted = message[1]
            self.send(src, ("seq-accept", self.accepted))


class SequencerClient(Process):
    """Proposes to the sequencer; decides on its answer or switches.

    Speculation: the sequencer is alive.  Two timeout rules:

    * ``unsafe=True`` — on timeout, switch with the client's *own*
      proposal.  This looks plausible but is WRONG: the sequencer may
      have echoed (and thereby decided) another client's value before
      dying, and our own-value switch then contradicts that decision.
      The framework catches this below.
    * ``unsafe=False`` (the fix) — on timeout, switch only once an echo
      reveals the sequencer's sticky value (Quorum's own rule: "waits
      for at least one message accept(v')").  Safe, at the cost of
      blocking if the sequencer died silently.
    """

    def __init__(
        self, pid, sequencer, on_decide, on_switch, timeout=4.0, unsafe=False
    ):
        super().__init__(pid)
        self.sequencer = sequencer
        self.on_decide = on_decide
        self.on_switch = on_switch
        self.timeout = timeout
        self.unsafe = unsafe
        self.proposal = None
        self.done = False
        self.timer_expired = False

    def propose(self, value):
        self.proposal = value
        self.send(self.sequencer, ("seq-propose", value))
        self.timer = self.set_timer(self.timeout, self._on_timeout)

    def on_message(self, src, message):
        if self.done or message[0] != "seq-accept":
            return
        self.done = True
        self.timer.cancel()
        if self.timer_expired:
            self.on_switch(message[1])  # late echo: safe switch value
        else:
            self.on_decide(message[1])

    def _on_timeout(self):
        if self.done:
            return
        if self.unsafe:
            self.done = True
            self.on_switch(self.proposal)
        else:
            self.timer_expired = True  # wait for an echo to switch safely


class SequencerPlusBackup:
    """The composed deployment: Sequencer fast path, Paxos backup."""

    def __init__(
        self, n_servers=3, seed=0, crash_sequencer_at=None, unsafe=False
    ):
        self.unsafe = unsafe
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim)
        self.n_servers = n_servers
        self.recorder = TraceRecorder(phase_bounds=(1, 3))
        self.network.register(SequencerServer("seq"))
        self.acceptors = [
            self.network.register(PaxosAcceptor(("acc", i)))
            for i in range(n_servers)
        ]
        self.coordinators = [
            self.network.register(
                PaxosCoordinator(
                    ("coord", i),
                    rank=i,
                    n_coordinators=n_servers,
                    acceptors=[("acc", j) for j in range(n_servers)],
                    pre_prepare=(i == 0),
                )
            )
            for i in range(n_servers)
        ]
        self._learners = [("b", i) for i in range(8)] + [
            ("coord", i) for i in range(n_servers)
        ]
        for acceptor in self.acceptors:
            acceptor.register_learners(self._learners)
        if crash_sequencer_at is not None:
            self.network.crash_at("seq", crash_sequencer_at)
        self._count = 0
        self.decisions = {}

    def propose(self, client, value, at=0.0):
        index = self._count
        self._count += 1
        input = propose(value)

        def on_decide(v):
            self.decisions[client] = v
            self.recorder.respond(client, 1, input, decide(v))

        def on_switch(sv):
            self.recorder.switch(client, 2, input, sv)
            backup = BackupClient(
                ("b", index),
                coordinators=[("coord", i) for i in range(self.n_servers)],
                n_acceptors=self.n_servers,
                on_decide=on_backup_decide,
            )
            self.network.register(backup)
            backup.switch_to_backup(sv)

        def on_backup_decide(v):
            self.decisions[client] = v
            self.recorder.respond(client, 2, input, decide(v))

        def start():
            self.recorder.invoke(client, 1, input)
            quorum = SequencerClient(
                ("s", index),
                "seq",
                on_decide,
                on_switch,
                unsafe=self.unsafe,
            )
            self.network.register(quorum)
            quorum.propose(value)

        self.sim.schedule(at, start)

    def run(self):
        self.sim.run(max_events=100000)


def check(system, values, label):
    system.run()
    trace = system.recorder.trace()
    rinit = consensus_rinit(values, max_extra=1)
    from repro.core.actions import sig_phase

    phase1 = trace.project(sig_phase(1, 2).contains)
    inv_ok = all(r.ok for r in check_first_phase_invariants(phase1, 2))
    slin_ok = is_speculatively_linearizable(phase1, 1, 2, ADT, rinit)
    comp_ok, why = check_composition_theorem(trace, 1, 2, 3, ADT, rinit)
    print(f"--- {label} ---")
    print("  decisions:", system.decisions)
    print("  invariants I1-I3:", inv_ok)
    print("  Sequencer phase is SLin(1,2):", slin_ok)
    print("  composed trace passes Theorem 5 check:", comp_ok, "-", why)


def adversarial_schedule(unsafe):
    """The killer schedule: echo c1 (it decides), crash, starve c2."""
    system = SequencerPlusBackup(
        seed=0, crash_sequencer_at=2.5, unsafe=unsafe
    )
    system.propose("c1", "v1", at=0.0)   # echo arrives at t=2: decides v1
    system.propose("c2", "v2", at=3.0)   # sequencer already dead
    return system


if __name__ == "__main__":
    # Happy case: the sequencer is up, one message round trip decides.
    system = SequencerPlusBackup(seed=0)
    system.propose("c1", "v1", at=0.0)
    system.propose("c2", "v2", at=0.5)
    check(system, ["v1", "v2"], "sequencer alive (safe rule)")

    # Speculation fails before anyone decided: Backup serves everyone.
    # (With the safe rule a silent sequencer would block, so this demo
    # uses the unsafe rule in a schedule where it happens to be benign.)
    system = SequencerPlusBackup(seed=0, crash_sequencer_at=0.0, unsafe=True)
    system.propose("c1", "v1", at=1.0)
    system.propose("c2", "v2", at=1.5)
    check(system, ["v1", "v2"], "sequencer dead on arrival (benign)")

    # THE POINT OF THE FRAMEWORK: the plausible-looking unsafe timeout
    # rule is caught by the checkers on the adversarial schedule —
    # c1 decided v1 through the sequencer, c2 switches with v2, Backup
    # decides v2 for c2: agreement is broken and every check fails.
    system = adversarial_schedule(unsafe=True)
    check(system, ["v1", "v2"], "UNSAFE rule under the adversarial schedule")

    # The fixed rule never switches blindly: under the same schedule c2
    # blocks (conditional wait-freedom, like Quorum's wait-for-accept),
    # and everything that did happen remains correct.
    system = adversarial_schedule(unsafe=False)
    check(system, ["v1", "v2"], "fixed rule under the adversarial schedule")
