"""Shared-memory consensus: registers when you can, CAS when you must.

Reproduces the Section 2.5 story on the interleaving machine:

* contention-free executions solve consensus with registers only
  (Figure 2's RCons) despite Herlihy's impossibility — by speculating;
* contended executions detect the race through the splitter and switch
  to the CAS-based CASCons (Figure 3);
* exhaustive interleaving exploration model-checks agreement and
  linearizability over *every* schedule of two clients.

Run with:  python examples/sm_consensus.py
"""

from repro.core import consensus_adt, is_linearizable, strip_phase_tags
from repro.sm import explore_composed, run_composed

ADT = consensus_adt()


def contention_free():
    print("--- contention-free: registers only ---")
    run = run_composed(
        [("c1", "v1"), ("c2", "v2"), ("c3", "v3")], mode="sequential"
    )
    reads, writes, cas = run.counts.snapshot()
    print(f"  decisions: {run.decisions}")
    print(f"  primitive ops: {reads} reads, {writes} writes, {cas} CAS")
    for client, outcome in sorted(run.outcomes.items()):
        print(f"  {client}: path={outcome.path} decided={outcome.decided_value}")
    assert cas == 0, "the fast path must not touch CAS"


def contended():
    print("\n--- contended: the splitter detects the race ---")
    for seed in (0, 3, 5):
        run = run_composed(
            [("c1", "v1"), ("c2", "v2")], mode="random", seed=seed
        )
        reads, writes, cas = run.counts.snapshot()
        paths = {c: o.path for c, o in sorted(run.outcomes.items())}
        print(
            f"  seed={seed}: decisions={run.decisions} paths={paths} "
            f"CAS={cas}"
        )
        assert len(run.decisions) == 1


def exhaustive():
    print("\n--- exhaustive model checking of 2 clients ---")
    total = 0
    switched = 0
    non_linearizable = 0
    for run in explore_composed([("c1", "v1"), ("c2", "v2")]):
        total += 1
        assert len(run.decisions) == 1, run.schedule
        if any(o.switched for o in run.outcomes.values()):
            switched += 1
        if total % 500 == 0:
            # Sample the (expensive) linearizability check.
            if not is_linearizable(strip_phase_tags(run.trace), ADT):
                non_linearizable += 1
    print(f"  schedules explored: {total}")
    print(f"  schedules where some client switched: {switched}")
    print(f"  linearizability violations: {non_linearizable}")
    assert non_linearizable == 0


if __name__ == "__main__":
    contention_free()
    contended()
    exhaustive()
