"""A Chubby-style distributed lock service (the paper's motivating app).

"Notable use cases of consensus in message-passing systems include
Google's Chubby distributed lock service" (§2.1).  This example runs a
lock service whose every operation is linearized by the speculative
replicated log — Quorum fast path when slots are quiet, Paxos backup when
they are contended or a server is down — and verifies mutual exclusion
and linearizability on the observed histories.

Run with:  python examples/lock_service.py
"""

from repro.core import is_linearizable
from repro.smr import LockService, lock_table_adt


def jitter(rng):
    return rng.uniform(0.5, 1.5)


def quiet_day():
    print("--- quiet day: handoff through the fast path ---")
    svc = LockService(n_servers=3, seed=0)
    svc.acquire("alice", "build-lock", at=0.0)
    svc.acquire("bob", "build-lock", at=10.0)
    svc.release("alice", "build-lock", at=20.0)
    svc.acquire("bob", "build-lock", at=30.0)
    svc.holder_of("carol", "build-lock", at=40.0)
    svc.run()
    for r in svc.results:
        o = r.outcome
        print(
            f"  {r.client:<6} {str(r.command):<34} -> {str(r.response):<20}"
            f" path={o.path} latency={o.latency:.1f}"
        )
    print("  final table:", svc.table())


def thundering_herd():
    print("\n--- thundering herd: four clients race for one lock ---")
    svc = LockService(n_servers=3, seed=7, delay=jitter)
    for i, name in enumerate(("alice", "bob", "carol", "dave")):
        svc.acquire(name, "leader", at=0.1 * i)
    svc.run(until=3000.0)
    winners = [r.client for r in svc.results if r.response == ("granted", True)]
    print(f"  grants: {winners} (exactly one)")
    print("  mutual exclusion over the whole log:", svc.mutual_exclusion_holds())
    print(
        "  observed history linearizable:",
        is_linearizable(svc.interface_trace(), lock_table_adt()),
    )


def degraded_cluster():
    print("\n--- one server down: service stays available ---")
    svc = LockService(n_servers=3, seed=1)
    svc.smr.crash_server(2, at=0.0)
    svc.acquire("alice", "L", at=1.0)
    svc.release("alice", "L", at=30.0)
    svc.acquire("bob", "L", at=60.0)
    svc.run()
    for r in svc.results:
        print(
            f"  {r.client:<6} {str(r.command):<26} -> {r.response} "
            f"(path={r.outcome.path})"
        )


if __name__ == "__main__":
    quiet_day()
    thundering_herd()
    degraded_cluster()
