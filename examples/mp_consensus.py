"""Message-passing consensus under fire: latency, contention and crashes.

Reproduces the paper's Section 2.1 narrative end to end on the simulated
asynchronous network:

* Quorum alone decides in 2 message delays when fault- and
  contention-free; Paxos needs 3 (its minimum);
* under contention the composition switches to Backup — an adversary can
  force the slow path (the Zyzzyva-style fragility the paper discusses);
* under a server crash, Quorum cannot decide and the composition degrades
  gracefully to Backup;
* every execution's trace is checked against the theory.

Run with:  python examples/mp_consensus.py
"""

from repro.core import (
    consensus_adt,
    consensus_rinit,
    is_linearizable,
    strip_phase_tags,
)
from repro.core.invariants import (
    check_first_phase_invariants,
    check_second_phase_invariants,
)
from repro.mp import ComposedConsensus, PaxosOnly, QuorumOnly

ADT = consensus_adt()


def jitter(rng):
    return rng.uniform(0.5, 1.5)


def latency_comparison():
    print("--- latency, fault-free and contention-free ---")
    header = f"{'protocol':<22}{'latency (msg delays)':>22}"
    print(header)
    quorum = QuorumOnly(n_servers=3, seed=0)
    o = quorum.propose("c", "v", at=0.0)
    quorum.run()
    print(f"{'Quorum (fast path)':<22}{o.latency:>22.1f}")

    paxos = PaxosOnly(n_servers=3, seed=0)
    o = paxos.propose("c", "v", at=5.0)
    paxos.run()
    print(f"{'Paxos (pre-prepared)':<22}{o.latency:>22.1f}")

    paxos_cold = PaxosOnly(n_servers=3, seed=0, pre_prepare=False)
    o = paxos_cold.propose("c", "v", at=5.0)
    paxos_cold.run()
    print(f"{'Paxos (cold start)':<22}{o.latency:>22.1f}")

    composed = ComposedConsensus(n_servers=3, seed=0)
    o = composed.propose("c", "v", at=0.0)
    composed.run()
    print(f"{'Quorum+Backup':<22}{o.latency:>22.1f}")


def contention_scenario():
    print("\n--- contention: the composition switches but agrees ---")
    system = ComposedConsensus(n_servers=3, seed=11, delay=jitter)
    outcomes = [
        system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(4)
    ]
    system.run()
    for o in outcomes:
        print(
            f"  {o.client}: path={o.path:<5} decided={o.decided_value} "
            f"latency={o.latency:.1f}"
        )
    decisions = {o.decided_value for o in outcomes}
    print("  agreement:", decisions)
    trace = system.trace()
    print(
        "  linearizable:",
        is_linearizable(strip_phase_tags(trace), ADT),
    )
    print(
        "  Quorum invariants I1-I3:",
        all(r.ok for r in check_first_phase_invariants(
            system.first_phase_trace(), 2
        )),
    )
    print(
        "  Backup invariants I4-I5:",
        all(r.ok for r in check_second_phase_invariants(
            system.second_phase_trace(), 2
        )),
    )


def crash_scenario():
    print("\n--- crash: graceful degradation to Backup ---")
    system = ComposedConsensus(n_servers=3, seed=0)
    system.crash_server(2, at=0.0)
    outcome = system.propose("c1", "v1", at=1.0)
    system.run()
    print(
        f"  with 1/3 servers crashed: path={outcome.path} "
        f"decided={outcome.decided_value} latency={outcome.latency:.1f}"
    )

    # Majority crash: no liveness (but still no disagreement).
    system = ComposedConsensus(n_servers=3, seed=0)
    system.crash_server(1, at=0.0)
    system.crash_server(2, at=0.0)
    outcome = system.propose("c1", "v1", at=1.0)
    system.run(until=200.0)
    print(
        f"  with 2/3 servers crashed: decided={outcome.decided_value} "
        "(no majority: Backup cannot progress, safety preserved)"
    )


def loss_scenario():
    print("\n--- message loss: retries keep the system live ---")
    system = ComposedConsensus(n_servers=3, seed=4, loss_rate=0.2)
    outcomes = [
        system.propose(f"c{i}", f"v{i}", at=float(i)) for i in range(3)
    ]
    system.run(until=500.0)
    for o in outcomes:
        status = (
            f"decided={o.decided_value} latency={o.latency:.1f}"
            if o.decided_value
            else "undecided within horizon"
        )
        print(f"  {o.client}: path={o.path:<5} {status}")


if __name__ == "__main__":
    latency_comparison()
    contention_scenario()
    crash_scenario()
    loss_scenario()
