"""A replicated key-value store on speculative SMR (paper §6 application).

Chubby- and Gaios-style workloads on the speculative replicated log: each
log slot is a Quorum+Backup consensus instance, and KV responses are
derived from the log with the universal-ADT recipe.  The example shows:

* a sequential workload riding the 2-delay fast path;
* a bursty concurrent workload where slots are contended and commands
  fall back to Backup, yet the client-observable history stays
  linearizable;
* fault injection.

Run with:  python examples/smr_kv_store.py
"""

from repro.core import is_linearizable
from repro.smr import ReplicatedKVStore, kv_store_adt


def jitter(rng):
    return rng.uniform(0.5, 1.5)


def sequential_workload():
    print("--- sequential workload: fast path throughout ---")
    kv = ReplicatedKVStore(n_servers=3, seed=1)
    kv.put("alice", "user:1", "Ada", at=0.0)
    kv.put("bob", "user:2", "Bob", at=10.0)
    kv.get("carol", "user:1", at=20.0)
    kv.put("alice", "user:1", "Ada Lovelace", at=30.0)
    kv.get("bob", "user:1", at=40.0)
    kv.delete("carol", "user:2", at=50.0)
    kv.run()
    for r in kv.results:
        o = r.outcome
        print(
            f"  {r.client:<6} {str(r.command):<38} -> {str(r.response):<26}"
            f" slot={o.slot} path={o.path} latency={o.latency:.1f}"
        )
    print("  final state:", kv.state())


def concurrent_workload():
    print("\n--- concurrent burst: slot contention, still linearizable ---")
    kv = ReplicatedKVStore(n_servers=3, seed=9, delay=jitter)
    kv.put("alice", "x", 1, at=0.0)
    kv.put("bob", "x", 2, at=0.0)
    kv.put("carol", "y", 3, at=0.2)
    kv.get("dave", "x", at=0.4)
    kv.run()
    for r in kv.results:
        o = r.outcome
        print(
            f"  {r.client:<6} {str(r.command):<20} -> {str(r.response):<18}"
            f" slot={o.slot} path={o.path} attempts={o.attempts}"
        )
    trace = kv.interface_trace()
    print(
        "  client-observable history linearizable:",
        is_linearizable(trace, kv_store_adt()),
    )
    print("  replicated log:", [c[:-1] for c in kv.smr.committed_log()])


def faulty_deployment():
    print("\n--- one server crashed: the log keeps committing ---")
    kv = ReplicatedKVStore(n_servers=3, seed=2)
    kv.smr.crash_server(0, at=0.0)
    kv.put("alice", "k", "v", at=1.0)
    kv.get("bob", "k", at=20.0)
    kv.run()
    for r in kv.results:
        print(
            f"  {r.client:<6} {str(r.command):<18} -> {r.response} "
            f"(path={r.outcome.path})"
        )


if __name__ == "__main__":
    sequential_workload()
    concurrent_workload()
    faulty_deployment()
