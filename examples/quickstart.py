"""Quickstart: the speculative-linearizability toolkit in five minutes.

Walks through the paper's core artifacts:

1. check linearizability of hand-written consensus traces (the examples
   of Section 2.2) with both the new and the classical checker;
2. check *speculative* linearizability of a phase trace with switches;
3. run the simulated Quorum+Backup consensus and verify its recorded
   trace against the theory — including the intra-object composition
   theorem.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    Trace,
    check_composition_theorem,
    consensus_adt,
    consensus_rinit,
    inv,
    is_linearizable,
    is_linearizable_classical,
    is_speculatively_linearizable,
    linearize,
    res,
    strip_phase_tags,
    swi,
)
from repro.core.adt import decide, propose
from repro.mp import ComposedConsensus


def section(title):
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def demo_linearizability():
    section("1. Linearizability of consensus traces (paper §2.2)")
    adt = consensus_adt()

    good = Trace(
        [
            inv("c1", 1, propose("v1")),
            inv("c2", 1, propose("v2")),
            res("c2", 1, propose("v2"), decide("v2")),
            res("c1", 1, propose("v1"), decide("v2")),
        ]
    )
    result = linearize(good, adt)
    print("good trace linearizable:", result.ok)
    print("  witness linearization:", result.master)
    print("  classical checker agrees:", is_linearizable_classical(good, adt))

    bad = Trace(
        [
            inv("c1", 1, propose("v1")),
            inv("c2", 1, propose("v2")),
            res("c1", 1, propose("v1"), decide("v1")),
            res("c2", 1, propose("v2"), decide("v2")),
        ]
    )
    print("split-decision trace linearizable:", is_linearizable(bad, adt))


def demo_speculative():
    section("2. Speculative linearizability of a phase trace (paper §2.3)")
    adt = consensus_adt()
    rinit = consensus_rinit(["v1", "v2"], max_extra=1)

    # c1 decides v1 in the first phase; c2 aborts, carrying switch value
    # v1 (I1: switches agree with decisions).
    phase_trace = Trace(
        [
            inv("c1", 1, propose("v1")),
            inv("c2", 1, propose("v2")),
            res("c1", 1, propose("v1"), decide("v1")),
            swi("c2", 2, propose("v2"), "v1"),
        ]
    )
    print(
        "phase trace is SLin(1,2):",
        is_speculatively_linearizable(phase_trace, 1, 2, adt, rinit),
    )

    conflicting = Trace(
        [
            inv("c1", 1, propose("v1")),
            inv("c2", 1, propose("v2")),
            res("c1", 1, propose("v1"), decide("v1")),
            swi("c2", 2, propose("v2"), "v2"),  # contradicts the decision
        ]
    )
    print(
        "conflicting switch is SLin(1,2):",
        is_speculatively_linearizable(conflicting, 1, 2, adt, rinit),
    )


def demo_simulation():
    section("3. Simulated Quorum+Backup consensus (paper §2.1/§2.4)")
    adt = consensus_adt()

    # Fault-free, contention-free: the fast path decides in 2 delays.
    system = ComposedConsensus(n_servers=3, seed=0)
    outcome = system.propose("alice", "v-alice", at=0.0)
    system.run()
    print(
        f"uncontended: path={outcome.path} latency="
        f"{outcome.latency} message delays"
    )

    # Contention (random delays): clients fall back to Backup but agree.
    def jitter(rng):
        return rng.uniform(0.5, 1.5)

    system = ComposedConsensus(n_servers=3, seed=7, delay=jitter)
    values = ["v0", "v1", "v2"]
    outcomes = [
        system.propose(f"client{i}", v, at=0.0)
        for i, v in enumerate(values)
    ]
    system.run()
    for o in outcomes:
        print(
            f"  {o.client}: path={o.path} decided={o.decided_value} "
            f"latency={o.latency:.1f}"
        )

    trace = system.trace()
    print("recorded", len(trace), "interface actions")
    print(
        "projection linearizable:",
        is_linearizable(strip_phase_tags(trace), adt),
    )
    rinit = consensus_rinit(values, max_extra=1)
    ok, why = check_composition_theorem(trace, 1, 2, 3, adt, rinit)
    print("intra-object composition theorem:", ok, "-", why)


def demo_report():
    section("4. The one-call verification report")
    from repro.core import verify_phases

    def jitter(rng):
        return rng.uniform(0.5, 1.5)

    system = ComposedConsensus(n_servers=3, seed=3, delay=jitter)
    values = ["v1", "v2"]
    for i, v in enumerate(values):
        system.propose(f"c{i}", v, at=0.0)
    system.run()
    report = verify_phases(
        system.trace(),
        [1, 2, 3],
        consensus_adt(),
        consensus_rinit(values, max_extra=1),
        check_invariants=True,
    )
    print(report.render())


if __name__ == "__main__":
    demo_linearizability()
    demo_speculative()
    demo_simulation()
    demo_report()
    print("\nAll quickstart checks completed.")
