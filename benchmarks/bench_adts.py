"""F1 — Figure 1 (the consensus specification) and the ADT layer.

Figure 1 is the sequential consensus specification; its reproduction is
the ``consensus_adt`` output function.  The harness checks the figure's
semantics exhaustively over bounded histories — "the first process
executing will impose its value to all others" — and benchmarks the ADT
layer (output-function folding, the universal ADT's derivation of other
ADTs), which underpins every checker in the repository.

Run standalone:  python benchmarks/bench_adts.py
"""

import itertools

import pytest

from repro.core.adt import (
    apply_adt_to_universal_output,
    consensus_adt,
    decide,
    propose,
    queue_adt,
    enq,
    deq,
    universal_adt,
)


def figure1_census(values=("a", "b", "c"), max_len=5):
    """Exhaustively verify f([p(v1), ..., p(vn)]) = d(v1)."""
    adt = consensus_adt()
    checked = 0
    for length in range(1, max_len + 1):
        for combo in itertools.product(values, repeat=length):
            history = tuple(propose(v) for v in combo)
            for i in range(1, length + 1):
                assert adt.output(history[:i]) == decide(combo[0])
                checked += 1
    return checked


def universal_derivation_census(values=("a", "b"), max_len=4):
    """Section 6: deriving consensus from universal-object responses."""
    cons = consensus_adt()
    universal = universal_adt()
    checked = 0
    for length in range(1, max_len + 1):
        for combo in itertools.product(values, repeat=length):
            history = tuple(propose(v) for v in combo)
            response = universal.output(history)
            assert apply_adt_to_universal_output(cons, response) == decide(
                combo[0]
            )
            checked += 1
    return checked


class TestFigure1:
    def test_exhaustive_census(self):
        assert figure1_census() > 1000

    def test_universal_derivation(self):
        assert universal_derivation_census() > 20


@pytest.mark.benchmark(group="adts-f1")
def test_bench_consensus_output(benchmark):
    adt = consensus_adt()
    history = tuple(propose(f"v{i}") for i in range(50))
    benchmark(adt.output, history)


@pytest.mark.benchmark(group="adts-f1")
def test_bench_universal_output(benchmark):
    adt = universal_adt()
    history = tuple(propose(f"v{i}") for i in range(50))
    benchmark(adt.output, history)


@pytest.mark.benchmark(group="adts-f1")
def test_bench_queue_fold(benchmark):
    adt = queue_adt()
    history = tuple(
        enq(i) if i % 2 == 0 else deq() for i in range(60)
    )
    benchmark(adt.output, history)


def _drive(step, adt, inputs, iterations=5_000):
    """The checker's hot-loop shape: repeated (state, input) steps."""
    state = adt.initial_state
    for i in range(iterations):
        state, _ = step(state, inputs[i % len(inputs)])
    return state


def hot_path_inputs():
    return consensus_adt(), [propose("a"), propose("b"), propose("c")]


class TestCachedStep:
    def test_step_agrees_with_transition(self):
        adt, inputs = hot_path_inputs()
        state = adt.initial_state
        for payload in inputs * 3:
            expected = adt.transition(state, payload)
            assert adt.step(state, payload) == expected
            state = expected[0]

    def test_step_actually_caches(self):
        adt, inputs = hot_path_inputs()
        adt.step.cache_clear()
        _drive(adt.step, adt, inputs, iterations=1_000)
        info = adt.step.cache_info()
        assert info.hits > info.misses


@pytest.mark.benchmark(group="adts-hot-path")
def test_bench_transition_uncached(benchmark):
    adt, inputs = hot_path_inputs()
    benchmark(lambda: _drive(adt.transition, adt, inputs))


@pytest.mark.benchmark(group="adts-hot-path")
def test_bench_step_cached(benchmark):
    adt, inputs = hot_path_inputs()
    adt.step.cache_clear()
    benchmark(lambda: _drive(adt.step, adt, inputs))


def main():
    import time

    n = figure1_census()
    print(f"F1: Figure 1 semantics verified on {n} (history, index) pairs")
    m = universal_derivation_census()
    print(
        f"    universal-ADT derivation (Section 6) verified on {m} histories"
    )
    adt, inputs = hot_path_inputs()
    adt.step.cache_clear()
    t0 = time.time()
    _drive(adt.transition, adt, inputs, iterations=50_000)
    uncached = time.time() - t0
    t0 = time.time()
    _drive(adt.step, adt, inputs, iterations=50_000)
    cached = time.time() - t0
    print(
        f"    hot-path step: transition {uncached:.3f}s vs lru_cache'd "
        f"step {cached:.3f}s ({uncached / cached:.1f}x)"
    )


if __name__ == "__main__":
    main()
