"""E6 — the model-checked composition theorem (paper §6).

The Isabelle result, reproduced by exhaustive small-scope model checking:
``SpecAutomaton(m,n) ‖ SpecAutomaton(n,o)`` (connecting switches hidden)
is trace-included in ``SpecAutomaton(m,o)``.  The table sweeps scopes
(clients × inputs × invocation budget) and reports state/pair counts —
the executable counterpart of the paper's "1600 lines of Isabelle, 500
proof steps".

Also includes the rinit ablation called out in DESIGN.md: the singleton
relation (Section 6's choice, value = history) versus a coarser
equivalence-class relation, compared by the number of distinct abort
values flowing across the phase boundary.

Run standalone:  python benchmarks/bench_ioa.py
"""

import pytest

from repro.core.actions import Switch
from repro.ioa import (
    SpecAutomaton,
    check_trace_inclusion,
    compose_automata,
    reachable_states,
)
from repro.ioa.modelcheck import (
    build_composition_scope as build,
    composition_scope_row as scope_row,
    parallel_scope_table,
)
from repro.ioa.refinement import phase_tag_blind

SCOPES = [
    {"clients": ("c1",), "inputs": ("a",), "budget": 2},
    {"clients": ("c1",), "inputs": ("a", "b"), "budget": 2},
    {"clients": ("c1", "c2"), "inputs": ("a",), "budget": 1},
    {"clients": ("c1", "c2"), "inputs": ("a", "b"), "budget": 1},
]


def table(jobs=1):
    return parallel_scope_table(SCOPES, jobs=jobs)


def abort_value_census(scope):
    """Distinct abort values crossing the (1,2)->(2,3) boundary."""
    impl, _ = build(scope)
    values = set()
    from repro.ioa.execution import successors
    from collections import deque

    frontier = deque(impl.initial_states())
    seen = set(frontier)
    while frontier:
        state = frontier.popleft()
        for action, successor in successors(impl, state):
            if isinstance(action, Switch):
                values.add(action.value)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return len(values)


class TestModelCheckedTheorem:
    @pytest.fixture(scope="class")
    def rows(self):
        return table()

    def test_inclusion_holds_on_all_scopes(self, rows):
        for row in rows:
            assert row["included"], row["counterexample"]

    def test_scopes_are_nontrivial(self, rows):
        assert all(row["impl_states"] > 30 for row in rows)
        assert any(row["impl_states"] > 900 for row in rows)

    def test_subset_construction_explored(self, rows):
        assert all(row["pairs"] > 20 for row in rows)


class TestRefinementMapping:
    def test_identity_refinement_of_standalone_phase(self):
        # The paper's proof technique itself: a refinement mapping from
        # a closed single-phase system onto the phase automaton.
        from repro.ioa import ClientEnvironment, check_refinement_mapping

        clients = ("c1",)
        auto = SpecAutomaton(1, 2, clients)
        env = ClientEnvironment(clients, ("a", "b"), m=1, budget=2)
        impl = compose_automata(auto, env)
        ok, cex, explored = check_refinement_mapping(
            impl, auto, mapping=lambda state: state[0]
        )
        assert ok, str(cex)
        assert explored > 10


class TestComposedInvariants:
    def test_fifteen_invariants_exhaustively(self):
        # The Isabelle proof rests on 15 state invariants; their
        # executable analogues hold over the full reachable space.
        import os
        import sys

        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "tests")
        )
        from test_composed_invariants import ALL_INVARIANTS
        from repro.ioa import ClientEnvironment, check_invariants

        clients = ("c1", "c2")
        system = compose_automata(
            SpecAutomaton(1, 2, clients),
            SpecAutomaton(2, 3, clients),
            ClientEnvironment(clients, ("a", "b"), m=1, budget=1),
        )
        explored, violations = check_invariants(system, ALL_INVARIANTS)
        assert len(ALL_INVARIANTS) == 15
        assert violations == []
        assert explored > 500


class TestAblation:
    def test_singleton_rinit_value_flow(self):
        # The singleton relation sends concrete histories; the census
        # grows with scope, demonstrating why the paper's compact
        # "set of equivalent histories" representation matters.
        small = abort_value_census(SCOPES[0])
        large = abort_value_census(SCOPES[3])
        assert small < large


@pytest.mark.benchmark(group="ioa-e6")
def test_bench_inclusion_small_scope(benchmark):
    impl, spec = build(SCOPES[0])
    benchmark(
        lambda: check_trace_inclusion(
            impl, spec, normalize=phase_tag_blind
        )
    )


@pytest.mark.benchmark(group="ioa-e6")
def test_bench_reachability(benchmark):
    impl, _ = build(SCOPES[2])
    benchmark(lambda: len(reachable_states(impl)))


def main(jobs=1):
    print("E6: model-checked composition theorem (trace inclusion)")
    print(
        f"{'clients':>8} {'inputs':>7} {'budget':>7} {'impl states':>12} "
        f"{'pairs':>8} {'included':>9} {'seconds':>8}"
    )
    for row in table(jobs=jobs):
        print(
            f"{row['clients']:>8} {row['inputs']:>7} {row['budget']:>7} "
            f"{row['impl_states']:>12} {row['pairs']:>8} "
            f"{str(row['included']):>9} {row['seconds']:>8.2f}"
        )
    print(
        "\npaper: mechanized proof that SLin(m,n) || SLin(n,o) |= SLin(m,o)"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    main(jobs=parser.parse_args().jobs)
