"""Throughput — the high-volume data plane vs the seed client model.

The paper's client replicates one operation per consensus round: probe
a slot, propose, wait for the decision, derive the response from the
whole decided prefix.  That is the right model for measuring message
delays (E11) and exactly the wrong one for volume — throughput is
capped at one op per protocol round trip per client, and response
derivation is O(n) per op.

This benchmark measures what the data-plane rebuild buys, end to end
over real localhost TCP sockets with durability on:

* **seed configuration** — probing :class:`~repro.net.client.NetClient`
  ops, JSON frames, one replica group, one fsync per WAL append;
* **pipelined configuration** — per-shard batching
  :class:`~repro.net.pipeline.SlotPipeline` proposers (``window``
  in-flight decrees, up to ``batch`` ops per decree), struct-packed
  binary frames, sharded replica groups routed by the partition key,
  and WAL group commit (one fsync per event-loop tick's appends).

Both runs keep the WAL enabled and both histories are checked: the
seed history monolithically, the pipelined one per shard (disjoint key
sets make per-shard checking compositional — Horn & Kroening's
locality argument).  The gated metric is the dimensionless ``speedup``
(floor 10x, the acceptance criterion) plus the linearizability
booleans; ops/s and p50/p99 latency are reported through the harness's
uniform :func:`throughput_metrics` surface with loosened per-check
tolerances (latency percentiles are noisy on shared runners).

Run standalone:  python benchmarks/bench_throughput.py
"""

import importlib.util
import os
import tempfile

from repro.net.loadgen import run_loadgen

SILENT = lambda line: None  # noqa: E731

#: both configurations run the same key set.  Wider than the loadgen
#: default so the partition spreads: the compositional checker's
#: per-key search depth stays bounded as the op count grows, and the
#: shard router has something to route.
KEYS = tuple(f"key{i:02d}" for i in range(12))


def _harness():
    """Load harness.py for the uniform throughput metric helpers."""
    path = os.path.join(os.path.dirname(__file__), "harness.py")
    spec = importlib.util.spec_from_file_location("harness", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_seed_config(ops, clients=16):
    """The seed data plane: one op per round, JSON, per-append fsync."""
    with tempfile.TemporaryDirectory(prefix="bench-tp-seed-") as wal_root:
        return run_loadgen(
            replicas=3,
            clients=clients,
            ops=ops,
            seed=42,
            keys=KEYS,
            wal_root=wal_root,
            emit=SILENT,
        )


def run_pipelined_config(ops, clients=16, shards=2, window=8, batch=16):
    """The rebuilt data plane: pipeline + batch + binary + shards +
    group commit, same replica count per group, WAL on."""
    with tempfile.TemporaryDirectory(prefix="bench-tp-pipe-") as wal_root:
        return run_loadgen(
            replicas=3,
            clients=clients,
            ops=ops,
            seed=42,
            keys=KEYS,
            wal_root=wal_root,
            shards=shards,
            pipeline=True,
            window=window,
            batch=batch,
            codec="binary",
            group_commit=True,
            emit=SILENT,
        )


def harness_report(quick):
    """The harness entry: metrics + regression gates for ``throughput``."""
    harness = _harness()
    # Different op counts per configuration: ops/s normalizes them, and
    # each run must last long enough to time (the pipelined plane burns
    # through small workloads in milliseconds).
    seed_ops = 160 if quick else 480
    pipe_ops = 1600 if quick else 3200
    seed = run_seed_config(seed_ops)
    pipe = run_pipelined_config(pipe_ops)
    metrics = {
        "seed_committed": seed.committed,
        "pipelined_committed": pipe.committed,
        "shards": pipe.shards,
        "window": pipe.window,
        "batch": pipe.batch,
        "codec": pipe.codec,
        "decrees": pipe.decrees,
        "ops_per_decree": (
            pipe.batched_ops / pipe.decrees if pipe.decrees else 0.0
        ),
        "speedup": (
            pipe.throughput / seed.throughput if seed.throughput else 0.0
        ),
        "seed_linearizable": seed.linearizable,
        "pipelined_linearizable": pipe.linearizable,
    }
    metrics.update(
        harness.throughput_metrics(
            seed.latencies, seed.duration, prefix="seed_"
        )
    )
    metrics.update(
        harness.throughput_metrics(
            pipe.latencies, pipe.duration, prefix="pipelined_"
        )
    )
    return {
        "name": "throughput",
        "metrics": metrics,
        "checks": [
            # the acceptance criterion: >=10x over the seed path, as a
            # machine-independent ratio with an absolute floor
            {"metric": "speedup", "mode": "higher_better", "min": 10.0},
            {"metric": "seed_linearizable", "mode": "bool"},
            {"metric": "pipelined_linearizable", "mode": "bool"},
            # absolute rates and tail latencies are machine-dependent:
            # keep them visible on dashboards but gate loosely
            {
                "metric": "pipelined_ops_per_s",
                "mode": "higher_better",
                "tolerance": 4.0,
            },
            {
                "metric": "pipelined_latency_p99_ms",
                "mode": "lower_better",
                "tolerance": 4.0,
            },
        ],
    }


def main():
    print("throughput: seed client model vs the pipelined data plane")
    report = harness_report(quick=False)
    m = report["metrics"]
    print(
        f"  seed     : {m['seed_ops_per_s']:>9.1f} ops/s  "
        f"p50={m['seed_latency_p50_ms']:.1f}ms "
        f"p99={m['seed_latency_p99_ms']:.1f}ms  "
        f"({m['seed_committed']} ops, "
        f"{'linearizable' if m['seed_linearizable'] else 'VIOLATION'})"
    )
    print(
        f"  pipelined: {m['pipelined_ops_per_s']:>9.1f} ops/s  "
        f"p50={m['pipelined_latency_p50_ms']:.1f}ms "
        f"p99={m['pipelined_latency_p99_ms']:.1f}ms  "
        f"({m['pipelined_committed']} ops over {m['shards']} shards, "
        f"{'linearizable' if m['pipelined_linearizable'] else 'VIOLATION'})"
    )
    print(
        f"  data plane: window={m['window']} batch<={m['batch']} "
        f"codec={m['codec']} group-commit; "
        f"{m['decrees']} decrees, {m['ops_per_decree']:.1f} ops/decree"
    )
    print(f"  speedup: {m['speedup']:.1f}x (gate: >=10x)")
    assert m["seed_linearizable"] and m["pipelined_linearizable"]
    assert m["speedup"] >= 10.0, "speedup below the 10x acceptance floor"


if __name__ == "__main__":
    main()
