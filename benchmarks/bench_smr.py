"""E9 — speculative SMR serving a replicated KV store (paper §6).

"The speculative approach to SMR protocols has been shown to yield some
of the most efficient SMR protocols in practice."  The harness sweeps a
KV workload across inter-arrival gaps (from fully sequential to bursty)
and reports per-command latency and fast-path share.  Expected shape:
the widely spaced workload rides the 2-delay Quorum fast path for every
slot; as commands pack together, slots get contended, commands retry on
later slots and latency degrades toward the Backup regime — while the
client-observable history stays linearizable throughout.

Run standalone:  python benchmarks/bench_smr.py
"""

import statistics

import pytest

from repro.core.linearizability import is_linearizable
from repro.smr import ReplicatedKVStore, kv_store_adt
from repro.smr.replica import SpeculativeSMR


def jitter(rng):
    return rng.uniform(0.5, 1.5)


def workload_point(gap, n_commands=6, seeds=range(4)):
    latencies = []
    fast = 0
    total = 0
    linearizable = True
    for seed in seeds:
        kv = ReplicatedKVStore(
            n_servers=3, seed=seed, delay=jitter if gap < 8 else 1.0
        )
        for i in range(n_commands):
            client = f"c{i % 3}"
            if i % 3 == 2:
                kv.get(client, f"k{i % 2}", at=gap * i)
            else:
                kv.put(client, f"k{i % 2}", i, at=gap * i)
        kv.run(until=5000.0)
        for r in kv.results:
            total += 1
            latencies.append(r.outcome.latency)
            if r.outcome.path == "fast":
                fast += 1
        if not is_linearizable(kv.interface_trace(), kv_store_adt()):
            linearizable = False
    return {
        "gap": gap,
        "commands": total,
        "fast_fraction": fast / total,
        "mean_latency": statistics.mean(latencies),
        "p_max": max(latencies),
        "linearizable": linearizable,
    }


def workload_series(gaps=(12.0, 4.0, 1.0, 0.0)):
    return [workload_point(gap) for gap in gaps]


def slot_throughput(n_commands):
    """Commands committed and total virtual time for a sequential burst."""
    smr = SpeculativeSMR(n_servers=3, seed=0)
    for i in range(n_commands):
        smr.submit(f"c{i}", f"cmd{i}", at=6.0 * i)
    smr.run()
    return {
        "commands": n_commands,
        "committed": len(smr.committed_log()),
        "span": max(
            o.commit_time for o in smr.outcomes if o.commit_time is not None
        ),
    }


class TestWorkloadShape:
    @pytest.fixture(scope="class")
    def series(self):
        return workload_series()

    def test_spaced_workload_all_fast(self, series):
        assert series[0]["fast_fraction"] == 1.0
        assert series[0]["mean_latency"] == pytest.approx(2.0)

    def test_bursty_workload_degrades(self, series):
        assert series[-1]["fast_fraction"] < series[0]["fast_fraction"]
        assert series[-1]["mean_latency"] > series[0]["mean_latency"]

    def test_all_commands_commit(self, series):
        assert all(p["commands"] == 24 for p in series)

    def test_linearizable_throughout(self, series):
        assert all(p["linearizable"] for p in series)


class TestThroughput:
    def test_log_grows_linearly(self):
        a = slot_throughput(4)
        b = slot_throughput(8)
        assert a["committed"] == 4 and b["committed"] == 8
        # Sequential fast-path commits: constant latency per slot.
        assert b["span"] - a["span"] == pytest.approx(6.0 * 4)


@pytest.mark.benchmark(group="smr-e9")
def test_bench_kv_sequential(benchmark):
    def round():
        kv = ReplicatedKVStore(n_servers=3, seed=0)
        for i in range(4):
            kv.put(f"c{i}", "k", i, at=8.0 * i)
        kv.run()
        return kv

    benchmark(round)


@pytest.mark.benchmark(group="smr-e9")
def test_bench_kv_bursty(benchmark):
    def round():
        kv = ReplicatedKVStore(n_servers=3, seed=0, delay=jitter)
        for i in range(4):
            kv.put(f"c{i}", "k", i, at=0.0)
        kv.run(until=5000.0)
        return kv

    benchmark(round)


def main():
    print("E9: replicated KV store on speculative SMR (workload sweep)")
    print(
        f"{'gap':>6} {'cmds':>5} {'fast%':>7} {'mean lat':>9} "
        f"{'max lat':>8} {'linearizable':>13}"
    )
    for p in workload_series():
        print(
            f"{p['gap']:>6.1f} {p['commands']:>5} "
            f"{100 * p['fast_fraction']:>6.0f}% {p['mean_latency']:>9.2f} "
            f"{p['p_max']:>8.2f} {str(p['linearizable']):>13}"
        )
    print(
        "\npaper: speculation wins when slots are uncontended; the backup "
        "keeps bursty workloads correct"
    )


if __name__ == "__main__":
    main()
