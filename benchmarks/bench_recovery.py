"""E12 — crash-recovery costs of the TCP runtime's write-ahead log.

Durability is paid for twice: on every append (fsync before a reply
leaves the node) and at restart (replaying the log before the listener
binds).  This experiment measures the restart side:

* **replay cost vs log length** — reopening a `NodeWAL` replays every
  record after the snapshot; the time grows linearly with the log, and
  snapshot compaction bounds it: a compacted log recovers from
  ``snapshot + tail`` in near-constant time, by construction equal to
  the full-history fold (the equivalence is asserted, not assumed);
* **torn-tail tolerance** — a log whose final record is cut mid-body
  (the crash-mid-append case) must replay everything before the tear;
* **restart throughput dip** — a live 3-replica cluster under
  closed-loop load has one replica killed and restarted from its WAL;
  throughput dips while unanimity is impossible (every slot pays the
  Backup path) and recovers after the restart, with the whole history
  still linearizable.

Wall-clock seconds are reported but never gated; the regression gates
are the booleans (fold equivalence, torn-tail tolerance, verdict) and
the dimensionless compaction speedup.

Run standalone:  python benchmarks/bench_recovery.py
"""

import asyncio
import os
import statistics
import tempfile
import time

from repro.core.fastcheck import check_linearizable
from repro.net import LocalCluster, NetClient, NodeWAL
from repro.net.client import HistoryRecorder
from repro.smr.universal import UniversalFrontend, kv_store_adt

#: every record folds onto one of ``length // SLOT_DIVISOR`` slots, the
#: realistic shape (durable state is per-slot and overwritten in place),
#: which is exactly what makes the compacted snapshot smaller than the log
SLOT_DIVISOR = 16


def _write_log(directory, length, compact_threshold):
    wal = NodeWAL(
        directory, fsync=False, compact_threshold=compact_threshold
    )
    slots = max(1, length // SLOT_DIVISOR)
    for i in range(length):
        slot = i % slots
        wal.record_acceptor(slot, (i, i, ("put", f"k{slot}", i)))
    wal.close()


def _reopen_seconds(directory, repeats):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        wal = NodeWAL(directory, fsync=False)
        samples.append(time.perf_counter() - t0)
        wal.close()
    return statistics.median(samples)


def replay_costs(lengths, repeats=3):
    """(length, full_replay_s, compacted_replay_s, folds_equal) rows.

    The full log never compacts (threshold above ``length``); the
    compacted one snapshots every ``length // 8`` records, so recovery
    is snapshot + a short tail.  Both must fold to identical state.
    """
    rows = []
    for length in lengths:
        with tempfile.TemporaryDirectory() as root:
            full_dir = os.path.join(root, "full")
            compact_dir = os.path.join(root, "compacted")
            _write_log(full_dir, length, compact_threshold=length + 1)
            _write_log(
                compact_dir, length, compact_threshold=max(8, length // 8)
            )
            full_s = _reopen_seconds(full_dir, repeats)
            compact_s = _reopen_seconds(compact_dir, repeats)
            a = NodeWAL(full_dir, fsync=False)
            b = NodeWAL(compact_dir, fsync=False)
            equal = (
                a.recovered.acceptors == b.recovered.acceptors
                and a.recovered.quorum == b.recovered.quorum
                and a.recovered.decided == b.recovered.decided
            )
            a.close()
            b.close()
            rows.append((length, full_s, compact_s, equal))
    return rows


def torn_tail_tolerated(length=200):
    """Cut the final record mid-body; replay must keep the prefix."""
    with tempfile.TemporaryDirectory() as root:
        directory = os.path.join(root, "torn")
        _write_log(directory, length, compact_threshold=length + 1)
        path = os.path.join(directory, "wal.log")
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-3])
        wal = NodeWAL(directory, fsync=False)
        ok = (
            wal.recovered.torn_tail
            and wal.recovered.records_replayed == length - 1
        )
        wal.close()
        return ok


async def _restart_dip(kill_at=0.7, restart_at=1.2, deadline=2.2):
    """Closed-loop ops through a kill/restart; per-window throughput."""
    loop = asyncio.get_running_loop()
    with tempfile.TemporaryDirectory() as wal_root:
        cluster = LocalCluster(n_servers=3, wal_root=wal_root)
        await cluster.start()
        transport = cluster.client_transport("bench")
        recorder = HistoryRecorder(clock=lambda: transport.now)
        client = NetClient(
            "c0",
            3,
            transport,
            {},
            recorder,
            UniversalFrontend(kv_store_adt()),
            op_timeout=3.0,
        )
        commits = []
        start = loop.time()

        async def drive():
            i = 0
            while loop.time() - start < deadline:
                await client.submit(("put", f"k{i % 4}", i))
                commits.append(loop.time() - start)
                i += 1

        async def nemesis():
            await asyncio.sleep(kill_at)
            await cluster.kill(1)
            await asyncio.sleep(restart_at - kill_at)
            await cluster.restart(1)

        await asyncio.gather(drive(), nemesis())
        await cluster.stop()

    def rate(lo, hi):
        n = sum(1 for t in commits if lo <= t < hi)
        return n / (hi - lo)

    check = check_linearizable(recorder.trace(), kv_store_adt())
    return {
        "committed": len(commits),
        "throughput_before": rate(0.0, kill_at),
        "throughput_down": rate(kill_at, restart_at),
        "throughput_after": rate(restart_at, deadline),
        "linearizable": bool(check.ok),
    }


def harness_report(quick):
    """The harness entry: metrics + regression gates for ``recovery``."""
    lengths = [512, 2048] if quick else [512, 2048, 8192]
    rows = replay_costs(lengths, repeats=3 if quick else 5)
    length, full_s, compact_s, _ = rows[-1]
    dip = asyncio.run(_restart_dip())
    return {
        "name": "recovery",
        "metrics": {
            "log_length": length,
            "full_replay_s": full_s,
            "compacted_replay_s": compact_s,
            "compaction_speedup": full_s / compact_s if compact_s else 0.0,
            "recovered_equal": all(row[3] for row in rows),
            "torn_tail_tolerated": torn_tail_tolerated(),
            "restart_committed": dip["committed"],
            "restart_throughput_before": dip["throughput_before"],
            "restart_throughput_down": dip["throughput_down"],
            "restart_throughput_after": dip["throughput_after"],
            "restart_linearizable": dip["linearizable"],
        },
        "checks": [
            {"metric": "recovered_equal", "mode": "bool"},
            {"metric": "torn_tail_tolerated", "mode": "bool"},
            {"metric": "restart_linearizable", "mode": "bool"},
            {
                "metric": "compaction_speedup",
                "mode": "higher_better",
                "min": 1.5,
            },
        ],
    }


def main():
    print("E12: WAL replay cost vs log length (ms, wall-clock)")
    print(f"{'records':>9} {'full':>10} {'compacted':>10} {'speedup':>8}")
    for length, full_s, compact_s, equal in replay_costs(
        [512, 2048, 8192]
    ):
        assert equal, "snapshot+tail fold diverged from full replay"
        print(
            f"{length:>9} {full_s * 1000:>9.2f}m {compact_s * 1000:>9.2f}m "
            f"{full_s / compact_s:>7.1f}x"
        )
    print("  (snapshot + tail == full-history fold, asserted per row)")

    assert torn_tail_tolerated()
    print("\ntorn final record: truncated and tolerated, prefix intact")

    print("\nE12b: live 3-replica cluster, kill node1 @0.7s, restart @1.2s")
    dip = asyncio.run(_restart_dip())
    print(
        f"  throughput op/s: before={dip['throughput_before']:.0f} "
        f"down={dip['throughput_down']:.0f} "
        f"after={dip['throughput_after']:.0f} "
        f"(committed={dip['committed']}, "
        f"history={'linearizable' if dip['linearizable'] else 'VIOLATION'})"
    )
    assert dip["linearizable"]
    print(
        "\npaper: with a replica down every slot pays Backup's 3 delays;"
        "\nthe WAL restart restores unanimity and the fast path returns"
    )


if __name__ == "__main__":
    main()
