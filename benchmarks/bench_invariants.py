"""E5 — invariants I1-I5 over adversarial execution sweeps (§2.4/§2.5).

The paper proves the example algorithms satisfy I1-I3 (first phases) and
I4-I5 (second phases); this harness *measures* it: the table counts
invariant violations over randomized executions of both substrates under
increasing adversity (contention, message loss, crashes, duplication for
message passing; random schedules for shared memory).  Expected shape:
all-zero violation columns with hundreds of executions per row.

Run standalone:  python benchmarks/bench_invariants.py
"""

import pytest

from repro.core.actions import sig_phase
from repro.core.invariants import (
    check_first_phase_invariants,
    check_second_phase_invariants,
)
from repro.mp import ComposedConsensus
from repro.sm import run_composed


def jitter(rng):
    return rng.uniform(0.5, 1.5)


MP_REGIMES = [
    ("clean", dict(delay=jitter)),
    ("loss 10%", dict(delay=jitter, loss_rate=0.1)),
    ("dup 20%", dict(delay=jitter, duplicate_rate=0.2)),
    ("crash 1", dict(delay=jitter, crash=0)),
    ("loss+crash", dict(delay=jitter, loss_rate=0.1, crash=2)),
]


def mp_row(label, config, seeds=range(12), n_clients=3):
    config = dict(config)
    crash = config.pop("crash", None)
    violations = {"I1": 0, "I2": 0, "I3": 0, "I4": 0, "I5": 0}
    runs = 0
    for seed in seeds:
        system = ComposedConsensus(n_servers=3, seed=seed, **config)
        if crash is not None:
            system.crash_server(crash, at=2.0)
        for i in range(n_clients):
            system.propose(f"c{i}", f"v{i}", at=0.0)
        system.run(until=500.0)
        runs += 1
        for report in check_first_phase_invariants(
            system.first_phase_trace(), 2
        ):
            if not report.ok:
                violations[report.name] += 1
        for report in check_second_phase_invariants(
            system.second_phase_trace(), 2
        ):
            if not report.ok:
                violations[report.name] += 1
    return {"regime": label, "runs": runs, **violations}


def mp_table():
    return [mp_row(label, config) for label, config in MP_REGIMES]


def sm_row(n_clients, seeds=range(60)):
    violations = {"I1": 0, "I2": 0, "I3": 0, "I4": 0, "I5": 0}
    runs = 0
    for seed in seeds:
        proposals = [(f"c{i}", f"v{i}") for i in range(n_clients)]
        run = run_composed(proposals, mode="random", seed=seed)
        runs += 1
        p1 = run.trace.project(sig_phase(1, 2).contains)
        p2 = run.trace.project(sig_phase(2, 3).contains)
        for report in check_first_phase_invariants(p1, 2):
            if not report.ok:
                violations[report.name] += 1
        for report in check_second_phase_invariants(p2, 2):
            if not report.ok:
                violations[report.name] += 1
    return {"clients": n_clients, "runs": runs, **violations}


def sm_table():
    return [sm_row(n) for n in (2, 3, 4)]


class TestMessagePassingInvariants:
    @pytest.fixture(scope="class")
    def table(self):
        return mp_table()

    def test_no_violations_any_regime(self, table):
        for row in table:
            for name in ("I1", "I2", "I3", "I4", "I5"):
                assert row[name] == 0, row

    def test_all_regimes_ran(self, table):
        assert all(row["runs"] >= 10 for row in table)


class TestSharedMemoryInvariants:
    @pytest.fixture(scope="class")
    def table(self):
        return sm_table()

    def test_no_violations(self, table):
        for row in table:
            for name in ("I1", "I2", "I3", "I4", "I5"):
                assert row[name] == 0, row

    def test_coverage(self, table):
        assert sum(row["runs"] for row in table) >= 150


@pytest.mark.benchmark(group="invariants-e5")
def test_bench_mp_invariant_check(benchmark):
    system = ComposedConsensus(n_servers=3, seed=3, delay=jitter)
    for i in range(3):
        system.propose(f"c{i}", f"v{i}", at=0.0)
    system.run()
    trace = system.first_phase_trace()
    benchmark(check_first_phase_invariants, trace, 2)


@pytest.mark.benchmark(group="invariants-e5")
def test_bench_sm_execution_and_check(benchmark):
    def round():
        run = run_composed(
            [("c1", "v1"), ("c2", "v2")], mode="random", seed=5
        )
        p1 = run.trace.project(sig_phase(1, 2).contains)
        return check_first_phase_invariants(p1, 2)

    benchmark(round)


def main():
    print("E5a: message-passing invariant census (violations per regime)")
    header = f"{'regime':<12} {'runs':>5} " + " ".join(
        f"{n:>4}" for n in ("I1", "I2", "I3", "I4", "I5")
    )
    print(header)
    for row in mp_table():
        print(
            f"{row['regime']:<12} {row['runs']:>5} "
            + " ".join(f"{row[n]:>4}" for n in ("I1", "I2", "I3", "I4", "I5"))
        )
    print("\nE5b: shared-memory invariant census")
    print(header.replace("regime", "clients"))
    for row in sm_table():
        print(
            f"{row['clients']:<12} {row['runs']:>5} "
            + " ".join(f"{row[n]:>4}" for n in ("I1", "I2", "I3", "I4", "I5"))
        )
    print("\npaper: I1-I3 hold for Quorum/RCons, I4-I5 for Backup/CASCons")


if __name__ == "__main__":
    main()
