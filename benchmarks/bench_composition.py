"""E4 + E8 — the intra-object composition theorem and Theorem 2 at scale.

The harness regenerates the paper's central formal results as counts:

* **E4 (Theorem 5)** — over simulated Quorum+Backup executions and all
  bounded interleavings of their phase projections, count traces where
  both premises hold and the conclusion holds; a single "premises hold,
  conclusion fails" row entry would falsify the reproduction;
* **E8 (Theorem 2)** — over the same traces, count SLin(1,m) traces whose
  projection onto sigT is linearizable;
* an **ablation** of the paper's "switching without agreement": the cost
  (extra consensus rounds) a naive agreement-based switch would add,
  measured as the message complexity of running one more consensus per
  switch versus the zero extra rounds of the paper's design.

Run standalone:  python benchmarks/bench_composition.py
"""

import pytest

from repro.core.adt import consensus_adt
from repro.core.composition import (
    check_composition_theorem,
    check_theorem_2,
    decompose,
    interleavings,
)
from repro.core.speculative import consensus_rinit
from repro.mp import ComposedConsensus

ADT = consensus_adt()


def jitter(rng):
    return rng.uniform(0.5, 1.5)


def simulated_trace(seed, n_clients=2, late_client=True):
    """A contended burst plus, optionally, one late fast-path client.

    The late client decides in phase 1 *after* the early clients have
    switched, so the phase projections overlap in time and admit many
    distinct interleavings — the interesting inputs for Theorem 5.
    """
    system = ComposedConsensus(n_servers=3, seed=seed, delay=jitter)
    values = [f"v{i}" for i in range(n_clients)]
    for i, v in enumerate(values):
        system.propose(f"c{i}", v, at=0.0)
    if late_client:
        values.append("vlate")
        system.propose("late", "vlate", at=12.0)
    system.run()
    return system.trace(), values


def theorem5_census(seeds=range(10), interleavings_per_trace=25, n_clients=3):
    held = 0
    vacuous = 0
    falsified = 0
    checked = 0
    for seed in seeds:
        trace, values = simulated_trace(seed, n_clients=n_clients)
        rinit = consensus_rinit(values, max_extra=1)
        t12, t23 = decompose(trace, 1, 2, 3)
        for candidate in interleavings(
            t12, t23, 2, limit=interleavings_per_trace
        ):
            ok, why = check_composition_theorem(
                candidate, 1, 2, 3, ADT, rinit
            )
            checked += 1
            if not ok:
                falsified += 1
            elif "premise fails" in why:
                vacuous += 1
            else:
                held += 1
    return {
        "checked": checked,
        "held": held,
        "vacuous": vacuous,
        "falsified": falsified,
    }


def theorem2_census(seeds=range(10)):
    held = 0
    vacuous = 0
    falsified = 0
    for seed in seeds:
        trace, values = simulated_trace(seed)
        rinit = consensus_rinit(values, max_extra=1)
        ok, why = check_theorem_2(trace, 3, ADT, rinit)
        if not ok:
            falsified += 1
        elif "premise fails" in why:
            vacuous += 1
        else:
            held += 1
    return {"held": held, "vacuous": vacuous, "falsified": falsified}


def switch_cost_ablation(seeds=range(6)):
    """Messages per decision: the paper's agreement-free switch versus a
    hypothetical switch that runs one extra consensus to agree on the
    switch value (lower bound: one more Paxos round trip per switch)."""
    rows = []
    for seed in seeds:
        system = ComposedConsensus(n_servers=3, seed=seed, delay=jitter)
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(3)
        ]
        system.run()
        switches = sum(1 for o in outcomes if o.switched)
        actual = system.stats.sent
        # An agreement-based switch would run >= 1 extra Paxos phase-2
        # round per switching client: n accept + n*learners accepted.
        n = system.n_servers
        learners = switches + n
        hypothetical = actual + switches * (n + n * learners)
        rows.append(
            {
                "seed": seed,
                "switches": switches,
                "messages": actual,
                "with_agreement": hypothetical,
            }
        )
    return rows


class TestTheorem5:
    @pytest.fixture(scope="class")
    def census(self):
        return theorem5_census()

    def test_never_falsified(self, census):
        assert census["falsified"] == 0

    def test_nonvacuously_exercised(self, census):
        assert census["held"] == census["checked"] > 0

    def test_coverage(self, census):
        # Mixed fast/slow runs yield multiple interleavings per trace.
        assert census["checked"] >= 20


class TestTheorem2:
    @pytest.fixture(scope="class")
    def census(self):
        return theorem2_census()

    def test_never_falsified(self, census):
        assert census["falsified"] == 0

    def test_nonvacuous(self, census):
        assert census["held"] > 5


class TestSwitchAblation:
    def test_agreement_free_switch_is_cheaper(self):
        for row in switch_cost_ablation():
            if row["switches"]:
                assert row["messages"] < row["with_agreement"]


@pytest.mark.benchmark(group="composition-e4")
def test_bench_theorem5_one_trace(benchmark):
    trace, values = simulated_trace(3)
    rinit = consensus_rinit(values, max_extra=1)
    benchmark(check_composition_theorem, trace, 1, 2, 3, ADT, rinit)


@pytest.mark.benchmark(group="composition-e4")
def test_bench_theorem2_one_trace(benchmark):
    trace, values = simulated_trace(3)
    rinit = consensus_rinit(values, max_extra=1)
    benchmark(check_theorem_2, trace, 3, ADT, rinit)


def main():
    c5 = theorem5_census()
    print("E4: Theorem 5 census over simulated traces + interleavings")
    print(
        f"  checked={c5['checked']} held={c5['held']} "
        f"vacuous={c5['vacuous']} falsified={c5['falsified']}"
    )
    c2 = theorem2_census()
    print("E8: Theorem 2 census over simulated traces")
    print(
        f"  held={c2['held']} vacuous={c2['vacuous']} "
        f"falsified={c2['falsified']}"
    )
    print("\nablation: agreement-free switching (messages per run)")
    print(f"{'seed':>5} {'switches':>9} {'actual':>8} {'with agreement':>15}")
    for row in switch_cost_ablation():
        print(
            f"{row['seed']:>5} {row['switches']:>9} {row['messages']:>8} "
            f"{row['with_agreement']:>15}"
        )


if __name__ == "__main__":
    main()
