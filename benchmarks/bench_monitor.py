"""Monitoring overhead and the streaming monitor's memory bound.

The streaming monitor (docs/MONITORING.md) promises two things worth
gating in CI:

* **low overhead on the hot path** — `loadgen --monitor` taps every
  recorded event into an async-drained queue and advances one search
  frontier per partition key *while the pipelined burst runs*.  The
  tap's enqueue is O(1) on the client's critical path; the frontier
  work rides the same event loop.  This benchmark runs the identical
  pipelined burst monitor-off and monitor-on and reports the
  dimensionless slowdown ratio (gated: the monitor may not eat the
  data plane);
* **O(concurrent window) memory** — a monitored run retains only the
  events of operations that are still open or not yet covered by a
  quiescent cut; every decided prefix is garbage-collected.  The
  second half streams a large synthetic concurrent workload (50k ops,
  100k events, full run) straight through a
  :class:`~repro.monitor.StreamingMonitor` and asserts the *peak*
  retained-event gauge stays under a fixed bound that depends only on
  the client count — not on the 50k run length.

Run standalone:  python benchmarks/bench_monitor.py
"""

import random
import tempfile
import time

from repro.monitor import StreamingMonitor
from repro.net.loadgen import run_loadgen
from repro.smr.universal import kv_store_adt

SILENT = lambda line: None  # noqa: E731

KEYS = tuple(f"key{i:02d}" for i in range(12))

#: synthetic-feed shape: this many clients run concurrently, so the GC
#: invariant predicts peak retention proportional to it
GC_CLIENTS = 8

#: the fixed memory bound the 50k-op run must stay under: a decided
#: prefix is collected at every per-key quiescent cut, so retention is
#: O(concurrent window) — a few events per in-flight client — never
#: O(run length).  8 clients * 8x slack = 64 events out of 100_000.
GC_PEAK_BOUND = 8 * GC_CLIENTS


def run_burst(ops, monitor, clients=16, shards=2):
    """One pipelined burst on the rebuilt data plane, monitor on/off.

    ``check=False`` keeps the post-hoc checker out of both timings so
    the delta is the monitor alone.
    """
    prefix = "bench-mon-on-" if monitor else "bench-mon-off-"
    with tempfile.TemporaryDirectory(prefix=prefix) as wal_root:
        return run_loadgen(
            replicas=3,
            clients=clients,
            ops=ops,
            seed=42,
            keys=KEYS,
            wal_root=wal_root,
            shards=shards,
            pipeline=True,
            window=8,
            batch=16,
            codec="binary",
            group_commit=True,
            check=False,
            monitor=monitor,
            emit=SILENT,
        )


def synthetic_gc_run(ops, clients=GC_CLIENTS, seed=7):
    """Stream ``ops`` concurrent kv operations through one monitor.

    ``clients`` sequential clients interleave over a shared key set:
    each round opens up to ``clients`` invocations in a seeded order,
    then delivers the matching responses in another seeded order, so
    the monitor permanently sees a full concurrent window without the
    run ever quiescing globally for long.  Outputs are computed from a
    real linearization (the delivery order), so the verdict stays
    ``ok`` and every prefix becomes collectable — this measures the GC,
    not the violation path.
    """
    adt = kv_store_adt()
    monitor = StreamingMonitor(adt)
    rng = random.Random(f"bench-monitor:{seed}")
    keys = KEYS[:4]
    store = {}
    issued = 0
    start = time.perf_counter()
    while issued < ops:
        round_clients = list(range(clients))[: max(1, min(clients, ops - issued))]
        rng.shuffle(round_clients)
        pending = []
        for c in round_clients:
            key = rng.choice(keys)
            if rng.random() < 0.5:
                command = ("put", key, issued)
            else:
                command = ("get", key)
            monitor.feed(("inv", f"c{c}", command, None, float(issued)))
            pending.append((c, command))
            issued += 1
        rng.shuffle(pending)
        for c, command in pending:
            # linearize in delivery order against the model store
            if command[0] == "put":
                prev = store.get(command[1])
                store[command[1]] = command[2]
                output = ("value", prev)
            else:
                output = ("value", store.get(command[1]))
            monitor.feed(("res", f"c{c}", command, output, float(issued)))
    elapsed = time.perf_counter() - start
    report = monitor.report()
    assert report.verdict == "ok", report.reason
    return report, elapsed


def harness_report(quick):
    """The harness entry: metrics + regression gates for ``monitor``."""
    burst_ops = 800 if quick else 1600
    off = run_burst(burst_ops, monitor=False)
    on = run_burst(burst_ops, monitor=True)
    # The memory-bound run is the acceptance criterion at 50k ops; the
    # bound itself never scales down, only the quick run length does.
    gc_ops = 10_000 if quick else 50_000
    gc_report, gc_elapsed = synthetic_gc_run(gc_ops)
    metrics = {
        "burst_ops": burst_ops,
        "monitor_off_ops_per_s": off.throughput,
        "monitor_on_ops_per_s": on.throughput,
        "monitor_overhead": (
            off.throughput / on.throughput if on.throughput else 0.0
        ),
        "monitor_verdict_ok": on.monitor_verdict == "ok",
        "monitor_events": on.monitor_events,
        "monitor_peak_retained": on.monitor_peak_retained,
        "monitor_gc_drops": on.monitor_gc_drops,
        "gc_ops": gc_ops,
        "gc_events": gc_report.events,
        "gc_events_per_s": (
            gc_report.events / gc_elapsed if gc_elapsed else 0.0
        ),
        "gc_peak_retained": gc_report.peak_retained,
        "gc_drops": gc_report.gc_drops,
        "gc_bound": GC_PEAK_BOUND,
        "gc_bounded": gc_report.peak_retained <= GC_PEAK_BOUND,
    }
    return {
        "name": "monitor",
        "metrics": metrics,
        "checks": [
            # the acceptance criteria: the live verdict agrees, and the
            # monitored run's memory stays under the fixed bound
            {"metric": "monitor_verdict_ok", "mode": "bool"},
            {"metric": "gc_bounded", "mode": "bool"},
            # overhead is a machine-independent ratio; gate it so the
            # monitor can never quietly eat the data plane
            {
                "metric": "monitor_overhead",
                "mode": "lower_better",
                "tolerance": 2.0,
            },
            # absolute rates are machine-dependent: visible, loose gate
            {
                "metric": "monitor_on_ops_per_s",
                "mode": "higher_better",
                "tolerance": 4.0,
            },
            {
                "metric": "gc_events_per_s",
                "mode": "higher_better",
                "tolerance": 4.0,
            },
        ],
    }


def main():
    print("monitor: live-tap overhead and the GC memory bound")
    report = harness_report(quick=False)
    m = report["metrics"]
    print(
        f"  burst off : {m['monitor_off_ops_per_s']:>9.1f} ops/s "
        f"({m['burst_ops']} ops, pipelined, 2 shards)"
    )
    print(
        f"  burst on  : {m['monitor_on_ops_per_s']:>9.1f} ops/s  "
        f"overhead {m['monitor_overhead']:.2f}x, "
        f"verdict {'ok' if m['monitor_verdict_ok'] else 'NOT OK'}, "
        f"{m['monitor_events']} events, "
        f"peak retained {m['monitor_peak_retained']}, "
        f"gc'd {m['monitor_gc_drops']}"
    )
    print(
        f"  gc run    : {m['gc_ops']} ops / {m['gc_events']} events at "
        f"{m['gc_events_per_s']:.0f} events/s; peak retained "
        f"{m['gc_peak_retained']} (bound {m['gc_bound']}), "
        f"gc'd {m['gc_drops']}"
    )
    assert m["monitor_verdict_ok"]
    assert m["gc_bounded"], (
        f"peak retained {m['gc_peak_retained']} exceeds the "
        f"O(concurrent window) bound {m['gc_bound']}"
    )


if __name__ == "__main__":
    main()
