"""Exhaustive trace-level theorem sweeps (validation-machinery harness).

Not a paper table — the harness that *certifies* the trace-level theorems
on complete small scopes, complementing the per-figure experiments.  For
each scope it enumerates every well-formed composed consensus trace and
reports how Theorem 5's implication fared:

* ``held``     — both premises and the conclusion hold;
* ``vacuous``  — some premise fails (the trace is not phase-correct);
* ``falsified``— premises hold, conclusion fails: a counterexample.

The falsified column must be all zeros.  During development this sweep
caught a real bug (the Real-Time Order pairing across switches), so it
doubles as the reproduction's regression oracle.

Run standalone:  python benchmarks/bench_enumeration.py
"""

import time

import pytest

from repro.core.adt import consensus_adt
from repro.core.composition import check_composition_theorem
from repro.core.enumeration import enumerate_composed_consensus_traces
from repro.core.speculative import consensus_rinit

ADT = consensus_adt()

SCOPES = [
    {"clients": ["c1"], "values": ["a"], "max_len": 5},
    {"clients": ["c1"], "values": ["a", "b"], "max_len": 5},
    {"clients": ["c1", "c2"], "values": ["a"], "max_len": 5},
    {"clients": ["c1", "c2"], "values": ["a", "b"], "max_len": 5},
]


def sweep(scope):
    rinit = consensus_rinit(scope["values"], max_extra=1)
    checked = held = vacuous = falsified = 0
    t0 = time.time()
    for trace in enumerate_composed_consensus_traces(
        scope["clients"], scope["values"], scope["max_len"]
    ):
        checked += 1
        ok, why = check_composition_theorem(trace, 1, 2, 3, ADT, rinit)
        if not ok:
            falsified += 1
        elif "premise fails" in why:
            vacuous += 1
        else:
            held += 1
    return {
        "clients": len(scope["clients"]),
        "values": len(scope["values"]),
        "max_len": scope["max_len"],
        "checked": checked,
        "held": held,
        "vacuous": vacuous,
        "falsified": falsified,
        "seconds": time.time() - t0,
    }


def table():
    return [sweep(scope) for scope in SCOPES]


class TestSweeps:
    @pytest.fixture(scope="class")
    def rows(self):
        return table()

    def test_no_scope_falsifies_theorem5(self, rows):
        assert all(row["falsified"] == 0 for row in rows)

    def test_scopes_are_complete_and_nontrivial(self, rows):
        assert sum(row["checked"] for row in rows) > 3500
        assert all(row["held"] > 0 for row in rows)

    def test_rich_scope_contains_broken_traces(self, rows):
        # The two-value scopes include traces violating the premises, so
        # the implication is checked against genuinely bad inputs too.
        rich = [row for row in rows if row["values"] == 2]
        assert all(row["vacuous"] > 0 for row in rich)


@pytest.mark.benchmark(group="enumeration")
def test_bench_exhaustive_small_scope(benchmark):
    benchmark(sweep, SCOPES[0])


def main():
    print("Exhaustive Theorem-5 sweeps (trace level)")
    print(
        f"{'clients':>8} {'values':>7} {'len':>4} {'checked':>8} "
        f"{'held':>6} {'vacuous':>8} {'falsified':>10} {'seconds':>8}"
    )
    for row in table():
        print(
            f"{row['clients']:>8} {row['values']:>7} {row['max_len']:>4} "
            f"{row['checked']:>8} {row['held']:>6} {row['vacuous']:>8} "
            f"{row['falsified']:>10} {row['seconds']:>8.1f}"
        )
    print("\nevery falsified cell must be 0 (Theorem 5)")


if __name__ == "__main__":
    main()
