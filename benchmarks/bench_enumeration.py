"""Exhaustive trace-level theorem sweeps (validation-machinery harness).

Not a paper table — the harness that *certifies* the trace-level theorems
on complete small scopes, complementing the per-figure experiments.  For
each scope it enumerates every well-formed composed consensus trace and
reports how Theorem 5's implication fared:

* ``held``     — both premises and the conclusion hold;
* ``vacuous``  — some premise fails (the trace is not phase-correct);
* ``falsified``— premises hold, conclusion fails: a counterexample.

The falsified column must be all zeros.  During development this sweep
caught a real bug (the Real-Time Order pairing across switches), so it
doubles as the reproduction's regression oracle.

Run standalone:  python benchmarks/bench_enumeration.py
"""

import time

import pytest

from repro.core.enumeration import (
    parallel_composition_sweep,
    sweep_composition_scope,
)

SCOPES = [
    {"clients": ["c1"], "values": ["a"], "max_len": 5},
    {"clients": ["c1"], "values": ["a", "b"], "max_len": 5},
    {"clients": ["c1", "c2"], "values": ["a"], "max_len": 5},
    {"clients": ["c1", "c2"], "values": ["a", "b"], "max_len": 5},
]


def sweep(scope, jobs=1):
    t0 = time.time()
    if jobs > 1:
        counts = parallel_composition_sweep(
            scope["clients"], scope["values"], scope["max_len"], jobs=jobs
        )
    else:
        counts = sweep_composition_scope(
            scope["clients"], scope["values"], scope["max_len"]
        )
    return {
        "clients": len(scope["clients"]),
        "values": len(scope["values"]),
        "max_len": scope["max_len"],
        **counts,
        "seconds": time.time() - t0,
    }


def table(jobs=1):
    return [sweep(scope, jobs=jobs) for scope in SCOPES]


class TestSweeps:
    @pytest.fixture(scope="class")
    def rows(self):
        return table()

    def test_no_scope_falsifies_theorem5(self, rows):
        assert all(row["falsified"] == 0 for row in rows)

    def test_scopes_are_complete_and_nontrivial(self, rows):
        assert sum(row["checked"] for row in rows) > 3500
        assert all(row["held"] > 0 for row in rows)

    def test_rich_scope_contains_broken_traces(self, rows):
        # The two-value scopes include traces violating the premises, so
        # the implication is checked against genuinely bad inputs too.
        rich = [row for row in rows if row["values"] == 2]
        assert all(row["vacuous"] > 0 for row in rich)


@pytest.mark.benchmark(group="enumeration")
def test_bench_exhaustive_small_scope(benchmark):
    benchmark(sweep, SCOPES[0])


def main(jobs=1):
    print("Exhaustive Theorem-5 sweeps (trace level)")
    print(
        f"{'clients':>8} {'values':>7} {'len':>4} {'checked':>8} "
        f"{'held':>6} {'vacuous':>8} {'falsified':>10} {'seconds':>8}"
    )
    for row in table(jobs=jobs):
        print(
            f"{row['clients']:>8} {row['values']:>7} {row['max_len']:>4} "
            f"{row['checked']:>8} {row['held']:>6} {row['vacuous']:>8} "
            f"{row['falsified']:>10} {row['seconds']:>8.1f}"
        )
    print("\nevery falsified cell must be 0 (Theorem 5)")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1)
    main(jobs=parser.parse_args().jobs)
