"""E10 — nemesis campaign throughput and checker overhead.

Three series:

* **clean campaign** — N seeded random fault schedules against each
  deployment (Quorum+Backup, three-phase, SMR/KV); every trace is
  checked for linearizability and must pass — the paper's guarantee is
  safety under *all* schedules, so any violation here is a reproduction
  bug;
* **throughput** — schedules/second end-to-end and the fraction of
  wall-clock spent inside the linearizability checker (the price of
  checking every trace rather than sampling);
* **mutant hunt** — the same campaign against an acceptor that forgets
  its state on recovery (a classic stable-storage bug): the campaign
  must catch the violation and delta-debug the schedule to a minimal
  reproducer, demonstrating end-to-end that the harness detects real
  safety bugs.

Run standalone:  python benchmarks/bench_faults.py
"""

import time

import pytest

import repro.faults.campaign as campaign_mod
from repro.faults import run_campaign

#: base seed whose 50-schedule mutant window is known to contain a
#: violating schedule (seed 1046) — keeps the demonstration fast while
#: staying a genuine random-campaign catch, not a hand-built schedule
MUTANT_BASE_SEED = 1000


def timed_campaign(n_schedules=25, base_seed=0, targets=("composed", "multiphase", "smr")):
    """Run a clean campaign and split wall-clock into sim vs checker."""
    checker_time = 0.0
    original_check = campaign_mod._check

    def timing_check(result, trace, adt, node_limit):
        nonlocal checker_time
        t0 = time.perf_counter()
        original_check(result, trace, adt, node_limit)
        checker_time += time.perf_counter() - t0

    campaign_mod._check = timing_check
    try:
        t0 = time.perf_counter()
        report = run_campaign(
            n_schedules=n_schedules,
            base_seed=base_seed,
            targets=targets,
            emit=lambda line: None,
        )
        elapsed = time.perf_counter() - t0
    finally:
        campaign_mod._check = original_check
    return {
        "report": report,
        "elapsed": elapsed,
        "checker_time": checker_time,
        "schedules_per_sec": report.runs / elapsed if elapsed else float("inf"),
        "checker_share": checker_time / elapsed if elapsed else 0.0,
    }


def mutant_hunt(n_schedules=50, base_seed=MUTANT_BASE_SEED):
    """Hunt the amnesiac acceptor with a random campaign; shrink hits."""
    return run_campaign(
        n_schedules=n_schedules,
        base_seed=base_seed,
        targets=("composed",),
        mutant=True,
        shrink=True,
        emit=lambda line: None,
    )


class TestCleanCampaign:
    @pytest.fixture(scope="class")
    def outcome(self):
        return timed_campaign(n_schedules=10)

    def test_every_trace_linearizable(self, outcome):
        assert outcome["report"].all_linearizable

    def test_no_inconclusive_runs(self, outcome):
        assert outcome["report"].inconclusive == 0

    def test_metrics_cover_all_runs(self, outcome):
        report = outcome["report"]
        assert report.runs == 30  # 10 schedules x 3 targets
        grouped = report.by_fault_class()
        assert sum(len(rs) for rs in grouped.values()) == report.runs


class TestMutantHunt:
    @pytest.fixture(scope="class")
    def report(self):
        return mutant_hunt()

    def test_campaign_catches_the_bug(self, report):
        assert len(report.violations) >= 1

    def test_shrunk_reproducer_is_smaller_and_replayable(self, report):
        violation = report.violations[0]
        assert len(violation.shrunk.actions) <= len(
            violation.result.schedule.actions
        )
        assert f"seed={violation.shrunk.seed}" in violation.shrunk.describe()


@pytest.mark.benchmark(group="faults-e10")
def test_bench_campaign_round(benchmark):
    benchmark(timed_campaign, 2, 0, ("composed",))


def main():
    print("E10a: clean nemesis campaign (50 schedules x 3 targets)")
    outcome = timed_campaign(n_schedules=50)
    report = outcome["report"]
    print(report.summary())
    print(
        f"\nE10b: throughput {outcome['schedules_per_sec']:.0f} "
        f"schedules/sec; checker overhead "
        f"{100 * outcome['checker_share']:.0f}% of wall-clock "
        f"({outcome['elapsed']:.2f}s total)"
    )
    print(
        "\nE10c: mutant hunt (acceptor that forgets its ballot on "
        "recovery)"
    )
    hunt = mutant_hunt()
    for violation in hunt.violations:
        print(violation.report())
    caught = "CAUGHT" if hunt.violations else "MISSED"
    print(f"mutant verdict: {caught} ({hunt.runs} schedules)")


if __name__ == "__main__":
    main()
