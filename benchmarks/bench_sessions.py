"""Session-dedup seam overhead: exactly-once must ride along for free.

The acceptance criterion for the sessioned data plane is that embedding
per-client ``(seq, cached reply)`` dedup in every replicated fold costs
at most **1.2x** against the unsessioned pipelined baseline.  Two
measurements back that up:

* **end-to-end** — the identical pipelined burst (one cluster, eight
  multiplexed clients, binary codec) with the real
  :class:`~repro.smr.sessions.SessionedApplier` versus a raw-fold shim
  that applies commands exactly the way the pre-session pipeline did
  (``adt.transition`` on the untagged command, no table).  The ratio of
  the two throughputs is the session overhead the wire actually pays —
  dominated by network round trips, so it must stay near 1.0;
* **fold microbench** — the applier against the raw transition loop on
  a long in-memory decided log, isolating the per-command table cost
  (two dict probes and a record) from the data plane noise.

Gated: ``session_overhead_ok`` (the <= 1.2x acceptance bound, as a
boolean so it transfers across machines), every history linearizable,
and the overhead ratios against the committed baseline.

Run standalone:  python benchmarks/bench_sessions.py
"""

import asyncio
import time

from repro.core.fastcheck import check_linearizable
from repro.net.client import HistoryRecorder
from repro.net.cluster import LocalCluster
from repro.net.pipeline import PipelineClient, SlotPipeline
from repro.smr.sessions import SessionedApplier, untag_command
from repro.smr.universal import kv_store_adt

#: the acceptance bound: sessions may cost at most this much end to end
OVERHEAD_BOUND = 1.2

KEYS = tuple(f"key{i:02d}" for i in range(8))


class RawApplier:
    """The pre-session fold: transition directly, no dedup table."""

    def __init__(self, adt):
        self.adt = adt
        self.duplicates = 0

    def apply(self, state, command):
        state, reply = self.adt.transition(state, untag_command(command))
        return state, reply, True


async def _burst(n_clients, ops_per_client, sessioned):
    cluster = LocalCluster(n_servers=3, codec="binary")
    await cluster.start()
    transport = cluster.client_transport("clients")
    recorder = HistoryRecorder(clock=lambda: transport.now)
    pipeline = SlotPipeline(
        "bench", 3, transport, window=8, max_batch=16, quorum_timeout=0.2
    )
    if not sessioned:
        pipeline.applier = RawApplier(pipeline.adt)
    clients = [
        PipelineClient(f"c{i}", pipeline, recorder, op_timeout=10.0)
        for i in range(n_clients)
    ]

    async def drive(index, client):
        for op in range(ops_per_client):
            key = KEYS[(index + op) % len(KEYS)]
            if op % 3 == 2:
                await client.submit(("get", key))
            else:
                await client.submit(("put", key, op))

    start = time.perf_counter()
    await asyncio.gather(
        *(drive(i, c) for i, c in enumerate(clients))
    )
    elapsed = time.perf_counter() - start
    ok = check_linearizable(recorder.trace(), kv_store_adt()).ok
    await cluster.stop()
    return (n_clients * ops_per_client) / elapsed, ok


def run_bursts(n_clients, ops_per_client, repeats=2):
    """Best-of-``repeats`` throughput per configuration, interleaved so
    machine noise hits both arms alike."""
    best = {True: 0.0, False: 0.0}
    all_ok = True
    for _ in range(repeats):
        for sessioned in (True, False):
            ops_per_s, ok = asyncio.run(
                _burst(n_clients, ops_per_client, sessioned)
            )
            best[sessioned] = max(best[sessioned], ops_per_s)
            all_ok = all_ok and ok
    return best[True], best[False], all_ok


def fold_microbench(n_commands):
    """The seam vs the raw loop on an in-memory decided log."""
    adt = kv_store_adt()
    log = [
        ("put", KEYS[i % len(KEYS)], i, ("seq", (f"c{i % 8}", i // 8 + 1)))
        for i in range(n_commands)
    ]

    applier = SessionedApplier(adt)
    state = adt.initial_state
    start = time.perf_counter()
    for command in log:
        state, _, _ = applier.apply(state, command)
    sessioned_elapsed = time.perf_counter() - start

    state = adt.initial_state
    start = time.perf_counter()
    for command in log:
        state, _ = adt.transition(state, untag_command(command))
    raw_elapsed = time.perf_counter() - start
    return n_commands / sessioned_elapsed, n_commands / raw_elapsed


def harness_report(quick):
    """The harness entry: metrics + regression gates for ``sessions``."""
    ops_per_client = 40 if quick else 100
    n_clients = 8
    sessioned_tput, raw_tput, all_ok = run_bursts(n_clients, ops_per_client)
    overhead = raw_tput / sessioned_tput if sessioned_tput else float("inf")

    fold_commands = 5_000 if quick else 20_000
    sessioned_fold, raw_fold = fold_microbench(fold_commands)
    fold_overhead = raw_fold / sessioned_fold if sessioned_fold else 0.0

    metrics = {
        "e2e_ops": n_clients * ops_per_client,
        "sessioned_ops_per_s": sessioned_tput,
        "unsessioned_ops_per_s": raw_tput,
        "session_overhead": overhead,
        "session_overhead_ok": overhead <= OVERHEAD_BOUND,
        "fold_commands": fold_commands,
        "sessioned_fold_per_s": sessioned_fold,
        "raw_fold_per_s": raw_fold,
        "fold_overhead": fold_overhead,
        "histories_linearizable": all_ok,
    }
    checks = [
        {"metric": "session_overhead_ok", "mode": "bool"},
        {"metric": "histories_linearizable", "mode": "bool"},
        # the ratios are dimensionless and transfer across machines;
        # latency-shaped noise on shared runners gets the looser bound
        {"metric": "session_overhead", "mode": "lower_better",
         "tolerance": 1.25},
        {"metric": "fold_overhead", "mode": "lower_better",
         "tolerance": 2.0},
        {"metric": "sessioned_ops_per_s", "mode": "higher_better",
         "tolerance": 4.0},
    ]
    return {
        "name": "sessions",
        "quick": quick,
        "metrics": metrics,
        "checks": checks,
    }


def main():
    print("E14: exactly-once client sessions (retry storm + overhead)")
    from repro.faults import run_retry_storm

    results = run_retry_storm(
        n_schedules=3, base_seed=5, clients=4, ops_per_client=12,
        emit=lambda line: print(f"  {line}"),
    )
    assert all(r.ok for r in results), "a storm run broke exactly-once"
    folded = sum(r.duplicates_folded for r in results)
    print(f"  all linearizable; {folded} duplicate decree(s) folded")

    report = harness_report(quick=True)
    m = report["metrics"]
    print(
        f"  session overhead: {m['session_overhead']:.2f}x end-to-end "
        f"(bound {OVERHEAD_BOUND}x), {m['fold_overhead']:.2f}x in the "
        f"fold microbench"
    )
    assert m["session_overhead_ok"], "session overhead exceeded the bound"
    assert m["histories_linearizable"], "a bench history failed the checker"


if __name__ == "__main__":
    import json

    print(json.dumps(harness_report(quick=True), indent=2, sort_keys=True))
