"""Deep-lint latency: the interprocedural pass must stay tool-speed.

``python -m repro lint --deep`` runs in CI on every push, so its cost
is part of the edit-compile-test loop: the budget is **10 seconds**
wall clock over the full ``src/`` tree (call-graph construction plus
every CFG/fixpoint rule), enforced as a boolean gate so it transfers
across machines.  Two measurements:

* **shallow** — the per-module AST pass alone (the pre-engine
  baseline shape);
* **deep** — two-phase interprocedural mode: parse everything, build
  the project call graph with may-suspend summaries, then run the full
  rule set (RD08 races, path-sensitive RD02) per module.

The ratio ``deep_overhead`` isolates what the dataflow engine itself
costs on top of parsing and matching; the committed tree must also
lint *clean* in both modes (the self-hosting gate, duplicated here so
a perf run cannot pass on a tree the gate would reject).

Run standalone:  python benchmarks/bench_lint.py
"""

import os
import sys
import time

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:  # standalone runs: make repro importable
    sys.path.insert(0, SRC)

from repro.analysis import run_lint  # noqa: E402

#: the CI budget for the deep pass over src/, in seconds
DEEP_BUDGET_S = 10.0


def time_lint(deep, repeats):
    """Best-of-``repeats`` wall time and the last report."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = run_lint([SRC], deep=deep)
        best = min(best, time.perf_counter() - start)
    return best, report


def harness_report(quick):
    """The harness entry: metrics + regression gates for ``lint``."""
    repeats = 1 if quick else 3
    shallow_s, shallow = time_lint(deep=False, repeats=repeats)
    deep_s, deep = time_lint(deep=True, repeats=repeats)

    metrics = {
        "checked_files": deep.checked_files,
        "shallow_s": shallow_s,
        "deep_s": deep_s,
        "deep_overhead": deep_s / shallow_s if shallow_s else 0.0,
        "deep_budget_s": DEEP_BUDGET_S,
        "deep_within_budget": deep_s <= DEEP_BUDGET_S,
        "tree_clean": shallow.clean and deep.clean,
        "deep_findings": len(deep.findings),
    }
    checks = [
        {"metric": "deep_within_budget", "mode": "bool"},
        {"metric": "tree_clean", "mode": "bool"},
        # wall times vary across runners; the hard gate is the budget
        # bool above, the ratio check just catches silent blowups
        {"metric": "deep_s", "mode": "lower_better", "tolerance": 4.0},
    ]
    return {
        "name": "lint",
        "quick": quick,
        "metrics": metrics,
        "checks": checks,
    }


def main():
    print("deep-lint latency over src/ (budget: "
          f"{DEEP_BUDGET_S:.0f}s wall clock)")
    report = harness_report(quick=True)
    m = report["metrics"]
    print(
        f"  {m['checked_files']} files: shallow {m['shallow_s']:.2f}s, "
        f"deep {m['deep_s']:.2f}s ({m['deep_overhead']:.1f}x)"
    )
    assert m["tree_clean"], "the committed tree must deep-lint clean"
    assert m["deep_within_budget"], (
        f"deep lint took {m['deep_s']:.2f}s (budget {DEEP_BUDGET_S}s)"
    )
    print("  tree clean in both modes; within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
