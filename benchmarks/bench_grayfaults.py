"""E13 — fast-path ratio and recovery latency under gray failure.

The paper's speculative protocol assumes replicas are either up or
fail-stopped; gray failures — a slow-but-correct node, drifting timers,
skewed clocks, storage that tears or lies — sit outside that model.
This experiment measures how gracefully the stack degrades when they
happen anyway:

* **simulated degradation matrix** — the SMR target runs the same
  seeded workload healthy and under each directed gray shape
  (:class:`SlowNode`, :class:`TimerDrift`, :class:`ClockSkew`); every
  history must stay linearizable, and the cost shows up as latency and
  Backup switches, not as lost safety;
* **live fast-path ratio** — a real 3-replica TCP cluster runs
  closed-loop clients healthy, then under a gray burst (one slow node
  plus an asymmetric one-way bridge partition).  Quorum's fast path
  needs *unanimity*, so a single slow replica drags the ratio down —
  the gray failure taxes latency where a crash would have switched the
  protocol cleanly;
* **torn-tail recovery latency** — mid-run, one replica is killed, its
  WAL torn mid-record, and the restart timed: replay must tolerate the
  tear (serve the intact prefix) and the whole history must still
  linearize.

Wall-clock seconds are reported but never gated; the regression gates
are the booleans (every verdict linearizable, tear tolerated).

Run standalone:  python benchmarks/bench_grayfaults.py
"""

import asyncio
import os
import statistics
import tempfile
import time

from repro.core.fastcheck import check_linearizable
from repro.faults.campaign import SMRTarget
from repro.faults.nemesis import ClockSkew, FaultSchedule, SlowNode, TimerDrift
from repro.faults.netcampaign import (
    NetSchedule,
    NetSlowNode,
    RestartNode,
    WALTearTail,
    asymmetric_bridge,
    run_net_campaign,
)
from repro.net import LocalCluster, NetClient
from repro.net.client import HistoryRecorder
from repro.net.faultfs import tear_tail
from repro.smr.universal import UniversalFrontend, kv_store_adt

SILENT = lambda line: None  # noqa: E731

#: one directed schedule per gray shape; the window covers the bulk of
#: the workload (ops are injected in the first 40% of the horizon)
GRAY_SHAPES = {
    "healthy": (),
    "slow_node": (SlowNode(at=5.0, server=1, factor=6.0, duration=150.0),),
    "timer_drift": (
        TimerDrift(at=5.0, server=1, rate=3.0, duration=150.0),
    ),
    "clock_skew": (
        ClockSkew(at=5.0, server=2, offset=40.0, duration=150.0),
    ),
}


def sim_degradation(seeds):
    """Rows of (shape, ok_rate, committed, median_latency, switched)."""
    rows = []
    for shape, actions in GRAY_SHAPES.items():
        target = SMRTarget()
        ok = committed = switched = 0
        latencies = []
        for seed in seeds:
            result = target.run(
                FaultSchedule(seed=seed, actions=actions)
            )
            ok += 1 if result.ok and not result.inconclusive else 0
            committed += result.committed
            switched += result.switched
            latencies.extend(result.latencies)
        rows.append(
            (
                shape,
                ok / len(seeds),
                committed,
                statistics.median(latencies) if latencies else 0.0,
                switched,
            )
        )
    return rows


def _fast_ratio(run):
    total = run.fast + run.slow
    return run.fast / total if total else 0.0


def live_fast_path(ops_per_client=8, clients=3):
    """Fast-path ratio healthy vs under a gray burst, on real sockets."""
    healthy = NetSchedule(seed=20, actions=(), horizon=3.0)
    gray = NetSchedule(
        seed=20,
        actions=(
            # the hold exceeds the client's 0.15s quorum timeout once
            # paid both ways, so unanimity through the slow node fails
            # and slots fall back to the Backup path
            NetSlowNode(at=0.2, node=1, delay=0.1, duration=2.0),
            *asymmetric_bridge(at=0.6, duration=0.6),
        ),
        horizon=3.0,
    )
    report = run_net_campaign(
        schedules=[healthy, gray],
        clients=clients,
        ops_per_client=ops_per_client,
        emit=SILENT,
    )
    healthy_run, gray_run = report.runs
    return {
        "healthy_fast_ratio": _fast_ratio(healthy_run),
        "gray_fast_ratio": _fast_ratio(gray_run),
        "healthy_committed": healthy_run.committed,
        "gray_committed": gray_run.committed,
        "all_linearizable": report.all_linearizable,
    }


async def _torn_restart(kill_at=0.7, restart_at=1.2, deadline=2.4):
    """Kill node1 mid-run, tear its WAL tail, time the restart."""
    loop = asyncio.get_running_loop()
    with tempfile.TemporaryDirectory() as wal_root:
        cluster = LocalCluster(n_servers=3, wal_root=wal_root)
        await cluster.start()
        transport = cluster.client_transport("bench")
        recorder = HistoryRecorder(clock=lambda: transport.now)
        client = NetClient(
            "c0",
            3,
            transport,
            {},
            recorder,
            UniversalFrontend(kv_store_adt()),
            op_timeout=3.0,
        )
        committed = []
        start = loop.time()
        outcome = {}

        async def drive():
            i = 0
            while loop.time() - start < deadline:
                await client.submit(("put", f"k{i % 4}", i))
                committed.append(loop.time() - start)
                i += 1

        async def nemesis():
            await asyncio.sleep(kill_at)
            await cluster.kill(1)
            tear_tail(os.path.join(wal_root, "node1", "wal.log"), cut=3)
            await asyncio.sleep(restart_at - kill_at)
            t0 = time.perf_counter()
            node = await cluster.restart(1)
            outcome["restart_s"] = time.perf_counter() - t0
            outcome["torn_recovered"] = bool(node.wal.recovered.torn_tail)
            outcome["records_replayed"] = node.wal.recovered.records_replayed

        await asyncio.gather(drive(), nemesis())
        await cluster.stop()

    check = check_linearizable(recorder.trace(), kv_store_adt())
    outcome["committed"] = len(committed)
    outcome["linearizable"] = bool(check.ok)
    return outcome


def harness_report(quick):
    """The harness entry: metrics + regression gates for ``grayfaults``."""
    seeds = range(2) if quick else range(5)
    rows = sim_degradation(seeds)
    by_shape = {row[0]: row for row in rows}
    live = live_fast_path(ops_per_client=6 if quick else 10)
    torn = asyncio.run(_torn_restart())
    return {
        "name": "grayfaults",
        "metrics": {
            "sim_ok_rate": min(row[1] for row in rows),
            "sim_healthy_latency": by_shape["healthy"][3],
            "sim_slow_node_latency": by_shape["slow_node"][3],
            "sim_drift_latency": by_shape["timer_drift"][3],
            "sim_skew_latency": by_shape["clock_skew"][3],
            "live_healthy_fast_ratio": live["healthy_fast_ratio"],
            "live_gray_fast_ratio": live["gray_fast_ratio"],
            "live_all_linearizable": live["all_linearizable"],
            "torn_restart_s": torn["restart_s"],
            "torn_recovered": torn["torn_recovered"],
            "torn_linearizable": torn["linearizable"],
            "torn_committed": torn["committed"],
        },
        "checks": [
            {"metric": "live_all_linearizable", "mode": "bool"},
            {"metric": "torn_recovered", "mode": "bool"},
            {"metric": "torn_linearizable", "mode": "bool"},
            {"metric": "sim_ok_rate", "mode": "higher_better", "min": 1.0},
        ],
    }


def main():
    print("E13: simulated gray-failure degradation (SMR target, 5 seeds)")
    print(
        f"{'shape':>12} {'ok':>5} {'committed':>9} "
        f"{'median lat':>10} {'switched':>8}"
    )
    for shape, ok_rate, committed, latency, switched in sim_degradation(
        range(5)
    ):
        assert ok_rate == 1.0, f"{shape}: a history failed the checker"
        print(
            f"{shape:>12} {ok_rate:>5.0%} {committed:>9} "
            f"{latency:>10.1f} {switched:>8}"
        )
    print("  (every run linearizable; gray failures cost latency and")
    print("   Backup switches, never safety)")

    print("\nE13b: live fast-path ratio, healthy vs gray burst")
    live = live_fast_path()
    print(
        f"  healthy: fast-path {live['healthy_fast_ratio']:.0%} "
        f"({live['healthy_committed']} ops)"
    )
    print(
        f"  gray   : fast-path {live['gray_fast_ratio']:.0%} "
        f"({live['gray_committed']} ops) under slow node + one-way bridge"
    )
    assert live["all_linearizable"]
    print("  both histories linearizable")

    print("\nE13c: torn-tail WAL restart (kill @0.7s, tear, restart @1.2s)")
    torn = asyncio.run(_torn_restart())
    print(
        f"  restart took {torn['restart_s'] * 1000:.1f}ms, replayed "
        f"{torn['records_replayed']} records, torn tail "
        f"{'tolerated' if torn['torn_recovered'] else 'NOT DETECTED'}"
    )
    print(
        f"  committed={torn['committed']}, history="
        f"{'linearizable' if torn['linearizable'] else 'VIOLATION'}"
    )
    assert torn["torn_recovered"] and torn["linearizable"]

    print(
        "\npaper: gray failures fall outside the fail-stop model; the"
        "\nreproduction degrades to Backup latency and torn-prefix replay"
        "\nwhile every checked history stays linearizable"
    )


if __name__ == "__main__":
    main()
