"""F2 + F3 + E7 — the shared-memory algorithms and the register-only claim.

Regenerates:

* **F2 (Figure 2, RCons)** — behaviour census of the register-based phase
  over scheduling regimes: decisions vs switches, splitter outcomes;
* **F3 (Figure 3, CASCons)** — the CAS phase decides the first installed
  switch value for every caller;
* **E7** — the §2.5 motivation, "is it possible to devise an object that
  uses only registers in contention-free executions but always executes
  correctly?": a primitive-operation census (register ops vs CAS) as the
  interleaving adversary intensifies.  Expected shape: zero CAS in the
  sequential column, CAS appearing exactly in executions that switched,
  and agreement everywhere.

Run standalone:  python benchmarks/bench_shared_memory.py
"""

import pytest

from repro.sm import explore_composed, run_composed


def census(mode, seeds, n_clients=3):
    rows = {
        "mode": mode,
        "runs": 0,
        "fast": 0,
        "slow": 0,
        "reads": 0,
        "writes": 0,
        "cas": 0,
        "disagreements": 0,
    }
    for seed in seeds:
        proposals = [(f"c{i}", f"v{i}") for i in range(n_clients)]
        run = run_composed(proposals, mode=mode, seed=seed)
        rows["runs"] += 1
        reads, writes, cas = run.counts.snapshot()
        rows["reads"] += reads
        rows["writes"] += writes
        rows["cas"] += cas
        if len(run.decisions) != 1:
            rows["disagreements"] += 1
        for outcome in run.outcomes.values():
            rows[outcome.path] = rows.get(outcome.path, 0) + 1
    return rows


def table():
    return [
        census("sequential", [0]),
        census("round_robin", [0]),
        census("random", range(40)),
    ]


class TestE7Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return table()

    def test_sequential_uses_zero_cas(self, rows):
        sequential = rows[0]
        assert sequential["cas"] == 0
        assert sequential["slow"] == 0

    def test_contention_uses_cas(self, rows):
        contended = rows[2]
        assert contended["cas"] > 0
        assert contended["slow"] > 0

    def test_agreement_everywhere(self, rows):
        assert all(r["disagreements"] == 0 for r in rows)

    def test_cas_only_when_switching(self, rows):
        # Each slow client performs exactly one CAS.
        contended = rows[2]
        assert contended["cas"] == contended["slow"]


class TestF2RConsCensus:
    def test_exhaustive_two_client_census(self):
        total = 0
        winners = 0
        for run in explore_composed([("c1", "v1"), ("c2", "v2")]):
            total += 1
            fast = [o for o in run.outcomes.values() if o.path == "fast"]
            # At most one client can win the splitter outright; the other
            # either adopts its decision or switches.
            assert len(fast) <= 2
            if fast:
                winners += 1
        assert total > 5000
        assert 0 < winners < total


class TestF3CASCons:
    def test_first_cas_wins_in_every_interleaving(self):
        from repro.sm.cascons import cascons_switch_program
        from repro.sm.memory import SharedMemory
        from repro.sm.scheduler import InterleavingScheduler, explore_schedules

        def setup():
            memory = SharedMemory()
            outcomes = {}

            def program(c, v):
                outcomes[c] = yield from cascons_switch_program(v)

            setup.outcomes = outcomes
            return memory, {
                "c1": program("c1", "v1"),
                "c2": program("c2", "v2"),
            }

        for schedule, memory in explore_schedules(setup):
            decided = {v for _, v in setup.outcomes.values()}
            assert len(decided) == 1, schedule
            assert memory.counts.cas == 2


@pytest.mark.benchmark(group="shared-memory-e7")
def test_bench_sequential_run(benchmark):
    benchmark(
        run_composed,
        [("c1", "v1"), ("c2", "v2"), ("c3", "v3")],
        "sequential",
    )


@pytest.mark.benchmark(group="shared-memory-e7")
def test_bench_random_run(benchmark):
    benchmark(
        run_composed,
        [("c1", "v1"), ("c2", "v2"), ("c3", "v3")],
        "random",
        7,
    )


def main():
    print("E7: primitive-operation census, RCons+CASCons (3 clients)")
    print(
        f"{'regime':<12} {'runs':>5} {'fast':>6} {'slow':>6} "
        f"{'reads':>7} {'writes':>7} {'CAS':>6} {'disagree':>9}"
    )
    for r in table():
        print(
            f"{r['mode']:<12} {r['runs']:>5} {r['fast']:>6} {r['slow']:>6} "
            f"{r['reads']:>7} {r['writes']:>7} {r['cas']:>6} "
            f"{r['disagreements']:>9}"
        )
    print(
        "\npaper: contention-free executions use only registers; "
        "CAS appears exactly on the switch path"
    )


if __name__ == "__main__":
    main()
