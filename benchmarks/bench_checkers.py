"""E3 — Theorem 1 at scale, plus checker performance (ablation).

Two artifacts:

* an **agreement census**: both complete linearizability checkers (the
  paper's new definition and the classical one) run over large random
  trace families; the table reports how many traces each accepts — the
  columns must be identical (Theorem 1);
* a **performance ablation** of the two checker designs (master-history
  DFS vs Wing-Gong reordering search) as trace length grows — the design
  choice called out in DESIGN.md.

The census also runs the P-compositional fast path
(:mod:`repro.core.fastcheck`); its column must match the complete
checkers on every family — including the multi-object product family,
where it actually decomposes.

Run standalone:  python benchmarks/bench_checkers.py
"""

import random
import sys
import os

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))

from helpers import random_wellformed_trace  # noqa: E402

from repro.core.adt import (  # noqa: E402
    consensus_adt,
    counter_adt,
    deq,
    enq,
    product_adt,
    propose,
    queue_adt,
    reg_read,
    reg_write,
    register_adt,
    tag_object,
)
from repro.core.classical import is_linearizable_classical  # noqa: E402
from repro.core.fastcheck import is_linearizable_fast  # noqa: E402
from repro.core.linearizability import is_linearizable  # noqa: E402

FAMILIES = [
    ("consensus", consensus_adt(), [propose("a"), propose("b")]),
    ("register", register_adt(), [reg_read(), reg_write(1), reg_write(2)]),
    ("queue", queue_adt(), [enq(1), enq(2), deq()]),
    (
        "product",
        product_adt({"reg": register_adt(), "cnt": counter_adt()}),
        [
            tag_object("reg", reg_read()),
            tag_object("reg", reg_write(1)),
            tag_object("cnt", ("inc", 1)),
            tag_object("cnt", ("cread",)),
        ],
    ),
]


def census_row(name, adt, inputs, n_traces=120, n_steps=8, seed=0):
    rng = random.Random(seed)
    traces = [
        random_wellformed_trace(rng, adt, inputs, n_clients=3, n_steps=n_steps)
        for _ in range(n_traces)
    ]
    new_accepts = sum(1 for t in traces if is_linearizable(t, adt))
    classical_accepts = sum(
        1 for t in traces if is_linearizable_classical(t, adt)
    )
    fast_accepts = sum(1 for t in traces if is_linearizable_fast(t, adt))
    return {
        "family": name,
        "traces": n_traces,
        "new": new_accepts,
        "classical": classical_accepts,
        "fast": fast_accepts,
    }


def census():
    return [census_row(*family) for family in FAMILIES]


def make_traces(n_steps, count=30, seed=7):
    rng = random.Random(seed)
    adt = consensus_adt()
    inputs = [propose("a"), propose("b"), propose("c")]
    return adt, [
        random_wellformed_trace(rng, adt, inputs, n_clients=3, n_steps=n_steps)
        for _ in range(count)
    ]


class TestTheorem1Census:
    @pytest.fixture(scope="class")
    def rows(self):
        return census()

    def test_checkers_agree_exactly(self, rows):
        for row in rows:
            assert row["new"] == row["classical"], row

    def test_fast_path_agrees(self, rows):
        for row in rows:
            assert row["fast"] == row["new"], row

    def test_families_are_nontrivial(self, rows):
        # Each family contains both accepted and rejected traces, so the
        # agreement is not vacuous.
        for row in rows:
            assert 0 < row["new"] < row["traces"], row


@pytest.mark.benchmark(group="checker-e3")
@pytest.mark.parametrize("n_steps", [6, 10, 14])
def test_bench_new_definition_checker(benchmark, n_steps):
    adt, traces = make_traces(n_steps)
    benchmark(lambda: [is_linearizable(t, adt) for t in traces])


@pytest.mark.benchmark(group="checker-e3")
@pytest.mark.parametrize("n_steps", [6, 10, 14])
def test_bench_classical_checker(benchmark, n_steps):
    adt, traces = make_traces(n_steps)
    benchmark(lambda: [is_linearizable_classical(t, adt) for t in traces])


def main():
    print("E3: Theorem 1 agreement census (accepted / total)")
    print(
        f"{'family':<12} {'new def':>10} {'classical':>10} {'fast':>8} "
        f"{'total':>7}"
    )
    for row in census():
        print(
            f"{row['family']:<12} {row['new']:>10} {row['classical']:>10} "
            f"{row['fast']:>8} {row['traces']:>7}"
        )
    print("\npaper: the two definitions are equivalent (Theorem 1)")

    import time

    print("\nchecker scaling ablation (30 consensus traces per point)")
    print(f"{'steps':>6} {'new def (s)':>12} {'classical (s)':>14}")
    for n_steps in (6, 10, 14, 18):
        adt, traces = make_traces(n_steps)
        t0 = time.time()
        for t in traces:
            is_linearizable(t, adt)
        new_time = time.time() - t0
        t0 = time.time()
        for t in traces:
            is_linearizable_classical(t, adt)
        classical_time = time.time() - t0
        print(f"{n_steps:>6} {new_time:>12.3f} {classical_time:>14.3f}")


if __name__ == "__main__":
    main()
