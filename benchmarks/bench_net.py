"""E11 — the 2-vs-3 message-delay claim over real TCP sockets (paper §2.1).

E1 measures the claim in virtual time, where a message delay is a unit
by construction.  This experiment re-measures it on the asyncio
networked runtime (`repro.net`): the same protocol code, but messages
are length-prefixed JSON frames on localhost TCP and latency is
wall-clock.

Phase latencies are isolated per consensus slot, steady state:

* **Quorum fast path** — propose → unanimous accept: 2 message delays,
  i.e. one client↔server round trip;
* **Backup (Paxos) path** — request → accept → accepted with the
  coordinator pre-prepared: 3 message delays, one and a half round
  trips (plus one hop being server→server).

On localhost the delay unit is tens of microseconds, so the measured
ratio is noisier than virtual time's exact 2/3 — but the ordering
(Quorum < Paxos) must survive the real stack, and the end-to-end
section shows the same effect on full SMR operations: killing a replica
forces every slot through Backup and the op latency floor jumps by the
Quorum timeout plus the extra delay.

Run standalone:  python benchmarks/bench_net.py
"""

import asyncio
import statistics

from repro.mp.backup import BackupClient
from repro.mp.quorum import QuorumClient
from repro.net import LocalCluster
from repro.net.loadgen import run_loadgen

SAMPLES = 30
N_SERVERS = 3


async def _quorum_samples(cluster, transport, n_samples):
    """Fast-path decision latency, one fresh uncontended slot each."""
    # Touch every slot first (materializes the roles and warms the
    # connection pool) so the timed window covers only the protocol
    # round trip — symmetric with the Backup pre-touch below.
    for i in range(n_samples):
        for j in range(N_SERVERS):
            transport.send(
                ("qcli", ("warm", i)),
                ("ctl", 0, j),
                ("register-learner", i, ("qcli", ("warm", i))),
            )
    await asyncio.sleep(0.3)
    latencies = []
    for i in range(n_samples):
        slot = i
        future = transport.loop.create_future()
        client = QuorumClient(
            ("qcli", ("bench", i)),
            servers=[("qs", slot, j) for j in range(N_SERVERS)],
            on_decide=lambda v: future.done() or future.set_result(v),
            on_switch=lambda v: future.done() or future.set_result(None),
            timeout=1.0,
        )
        transport.register(client)
        start = transport.now
        client.propose(("cmd", i))
        value = await asyncio.wait_for(future, 5.0)
        latencies.append(transport.now - start)
        assert value == ("cmd", i), "fast path should decide unopposed"
        transport.unregister(client.pid)
    return latencies


async def _backup_samples(cluster, transport, n_samples, slot_base):
    """Backup-path decision latency, pre-prepared coordinator."""
    # Touch every slot first so node 0's coordinator finishes phase 1
    # before the timed request — the steady state of the paper's claim.
    for i in range(n_samples):
        slot = slot_base + i
        for j in range(N_SERVERS):
            transport.send(
                ("bcli", ("bench", slot)),
                ("ctl", 0, j),
                ("register-learner", slot, ("bcli", ("bench", slot))),
            )
    await asyncio.sleep(0.3)
    latencies = []
    for i in range(n_samples):
        slot = slot_base + i
        future = transport.loop.create_future()
        client = BackupClient(
            ("bcli", ("bench", slot)),
            coordinators=[("coord", slot, j) for j in range(N_SERVERS)],
            n_acceptors=N_SERVERS,
            on_decide=lambda v: future.done() or future.set_result(v),
        )
        transport.register(client)
        start = transport.now
        client.switch_to_backup(("cmd", i))
        value = await asyncio.wait_for(future, 5.0)
        latencies.append(transport.now - start)
        assert value == ("cmd", i)
        transport.unregister(client.pid)
    return latencies


async def phase_latencies():
    cluster = LocalCluster(n_servers=N_SERVERS)
    await cluster.start()
    transport = cluster.client_transport("bench")
    try:
        quorum = await _quorum_samples(cluster, transport, SAMPLES)
        backup = await _backup_samples(
            cluster, transport, SAMPLES, slot_base=1000
        )
    finally:
        await cluster.stop()
    return quorum, backup


def _row(name, values):
    ms = sorted(v * 1000 for v in values)
    return (
        f"{name:>14} {statistics.median(ms):>9.2f} "
        f"{statistics.mean(ms):>9.2f} {ms[0]:>9.2f} {ms[-1]:>9.2f}"
    )


def main():
    print("E11: decision latency over real TCP sockets (ms, wall-clock)")
    quorum, backup = asyncio.run(phase_latencies())
    print(f"{'phase':>14} {'p50':>9} {'mean':>9} {'min':>9} {'max':>9}")
    print(_row("Quorum (2d)", quorum))
    print(_row("Backup (3d)", backup))
    ratio = statistics.median(backup) / statistics.median(quorum)
    print(f"\nmedian Backup/Quorum ratio: {ratio:.2f} (paper: 3/2 = 1.50)")

    print("\nE11b: end-to-end SMR ops, healthy vs one replica killed")
    healthy = run_loadgen(
        replicas=3, clients=4, ops=60, seed=11, emit=lambda line: None
    )
    degraded = run_loadgen(
        replicas=3,
        clients=4,
        ops=40,
        seed=11,
        kill=2,
        kill_after=0.2,
        emit=lambda line: None,
    )
    for label, report in (("healthy", healthy), ("killed", degraded)):
        print(
            f"  {label:>8}: fast={report.fast} slow={report.slow} "
            f"p50={report.percentile(0.5) * 1000:.1f}ms "
            f"throughput={report.throughput:.1f} op/s "
            f"history={report.verdict}"
        )
    assert healthy.linearizable and degraded.linearizable
    print(
        "\npaper: the fast path needs 2 message delays; once a replica is"
        "\ndown, unanimity is impossible and every slot pays Backup's 3"
    )


if __name__ == "__main__":
    main()
