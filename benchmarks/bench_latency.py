"""E1 — the headline latency claim (paper §2.1).

"Quorum manages to decide on the value in only 2 message delays, whenever
there is neither contention nor faults. ... Paxos, which still has a
minimum latency of 3 message delays."

The table reports decision latency in *message delays* (virtual time on
the unit-delay network) for Quorum, Paxos (steady-state, pre-prepared
coordinator), cold-start Paxos, and the composed Quorum+Backup, across
server-set sizes — fault-free and contention-free.  Expected shape:
Quorum and the composition sit at 2, Paxos at 3, independently of the
number of servers.

Run standalone:  python benchmarks/bench_latency.py
"""

import pytest

from repro.mp import (
    ComposedConsensus,
    PaxosOnly,
    QuorumOnly,
    ThreePhaseConsensus,
)

SERVER_COUNTS = (3, 5, 7, 9)


def quorum_latency(n_servers: int) -> float:
    system = QuorumOnly(n_servers=n_servers, seed=0)
    outcome = system.propose("c", "v", at=0.0)
    system.run()
    assert outcome.path == "fast"
    return outcome.latency


def paxos_latency(n_servers: int, pre_prepare: bool = True) -> float:
    system = PaxosOnly(n_servers=n_servers, seed=0, pre_prepare=pre_prepare)
    outcome = system.propose("c", "v", at=5.0)
    system.run()
    assert outcome.decided_value == "v"
    return outcome.latency


def composed_latency(n_servers: int) -> float:
    system = ComposedConsensus(n_servers=n_servers, seed=0)
    outcome = system.propose("c", "v", at=0.0)
    system.run()
    assert outcome.path == "fast"
    return outcome.latency


def three_phase_latency(n_servers: int) -> float:
    system = ThreePhaseConsensus(n_servers=n_servers, sub_servers=2, seed=0)
    outcome = system.propose("c", "v", at=0.0)
    system.run()
    assert outcome.path == "phase1"
    return outcome.latency


def table_rows():
    rows = []
    for n in SERVER_COUNTS:
        rows.append(
            {
                "servers": n,
                "quorum": quorum_latency(n),
                "paxos": paxos_latency(n),
                "paxos_cold": paxos_latency(n, pre_prepare=False),
                "composed": composed_latency(n),
                "three_phase": three_phase_latency(max(n, 2)),
            }
        )
    return rows


class TestShape:
    """The paper's claims as assertions on the regenerated table."""

    @pytest.fixture(scope="class")
    def rows(self):
        return table_rows()

    def test_quorum_two_delays(self, rows):
        assert all(r["quorum"] == 2.0 for r in rows)

    def test_paxos_three_delays(self, rows):
        assert all(r["paxos"] == 3.0 for r in rows)

    def test_composition_matches_fast_path(self, rows):
        assert all(r["composed"] == r["quorum"] for r in rows)

    def test_quorum_beats_paxos(self, rows):
        assert all(r["quorum"] < r["paxos"] for r in rows)

    def test_cold_paxos_costs_two_more(self, rows):
        assert all(r["paxos_cold"] == r["paxos"] + 2.0 for r in rows)

    def test_latency_independent_of_cluster_size(self, rows):
        assert len({r["quorum"] for r in rows}) == 1
        assert len({r["paxos"] for r in rows}) == 1

    def test_three_phase_fast_path_also_two_delays(self, rows):
        # Adding a cheaper front phase keeps the latency at 2 delays
        # while cutting fast-path message count (see test_multiphase).
        assert all(r["three_phase"] == 2.0 for r in rows)


@pytest.mark.benchmark(group="latency-e1")
def test_bench_quorum_run(benchmark):
    benchmark(quorum_latency, 3)


@pytest.mark.benchmark(group="latency-e1")
def test_bench_paxos_run(benchmark):
    benchmark(paxos_latency, 3)


@pytest.mark.benchmark(group="latency-e1")
def test_bench_composed_run(benchmark):
    benchmark(composed_latency, 3)


def main():
    print("E1: decision latency (message delays), fault/contention-free")
    print(
        f"{'servers':>8} {'Quorum':>8} {'Paxos':>8} {'Paxos(cold)':>12} "
        f"{'Quorum+Backup':>14} {'3-phase':>8}"
    )
    for r in table_rows():
        print(
            f"{r['servers']:>8} {r['quorum']:>8.1f} {r['paxos']:>8.1f} "
            f"{r['paxos_cold']:>12.1f} {r['composed']:>14.1f} "
            f"{r['three_phase']:>8.1f}"
        )
    print("\npaper: Quorum = 2 delays, Paxos minimum = 3 delays")


if __name__ == "__main__":
    main()
