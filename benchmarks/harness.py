"""Benchmark regression harness: machine-readable numbers, checked in CI.

Runs a fixed set of benchmarks and writes one ``BENCH_<name>.json`` per
benchmark, each carrying its metrics plus a declaration of which metrics
are regression-checked and how.  Absolute wall-clock numbers are
reported but never gated on — they depend on the machine.  The gated
metrics are dimensionless ratios (compositional-vs-monolithic speedup,
cached-vs-uncached step ratio, calibration-normalized search cost) and
booleans (verdict agreement, parallel determinism), which transfer
across machines.

Benchmarks:

* ``pcomp`` — P-compositional vs monolithic checking on traces over a
  3-object system (register + counter + set product).  Reports median
  times, the speedup ratio, and whether every verdict agreed.
* ``search`` — the optimized monolithic search on a fixed consensus
  trace family, normalized by a pure-Python calibration loop so the
  number is comparable across machines.
* ``campaign_scaling`` — one nemesis campaign at ``--jobs 1`` vs
  ``--jobs 4``; gates on byte-identical per-seed verdicts (the speedup
  is reported, not gated: it is a property of the machine's core count).
* ``adt_hot_path`` — the ``lru_cache``-d ``ADT.step`` against the
  validating ``ADT.transition`` on the checker's hot loop shape.
* ``recovery`` — WAL replay cost vs snapshot compaction, torn-tail
  tolerance, and the live kill/restart throughput dip (E12; gates on
  the fold-equivalence/tolerance/verdict booleans and the compaction
  speedup, never on wall-clock).
* ``grayfaults`` — simulated and live degradation under gray failures
  (slow node, timer drift, clock skew, torn-tail WAL restart); gates
  on every-history-linearizable and tear-tolerated booleans (E13).
* ``throughput`` — the high-throughput data plane (slot pipelining +
  batching + binary codec + sharding + group commit) against the seed
  one-op-per-round client; gates on the dimensionless ``speedup``
  (floor 10x) and all-histories-linearizable, reports uniform
  ops/s + p50/p99 latency per configuration.
* ``sessions`` — the session-dedup seam (exactly-once client
  sessions) against the raw unsessioned fold, end to end on the
  pipelined data plane and in a fold microbench; gates on the
  ``<= 1.2x`` end-to-end overhead acceptance bound (as a boolean) and
  all-histories-linearizable.
* ``monitor`` — the streaming linearizability monitor: monitor-on vs
  monitor-off on the same pipelined burst (gates on the slowdown
  ratio and the live verdict) and a 50k-op synthetic concurrent feed
  whose peak retained-event gauge must stay under a fixed
  O(concurrent window) bound (gated boolean — the GC invariant).

Throughput-shaped benchmarks report a **uniform metric surface** via
:func:`throughput_metrics` — ``ops_per_s``, ``latency_p50_ms``,
``latency_p99_ms`` — so dashboards and regression checks read the same
keys everywhere.

Usage::

    python benchmarks/harness.py --quick --out bench-out
    python benchmarks/harness.py --check benchmarks/baseline --out bench-out
    python -m repro harness --quick

``--check DIR`` compares the fresh numbers against the committed
baseline: a gated ratio may not regress by more than the tolerance
(global default 2x; a check may carry its own ``"tolerance"`` — latency
percentiles get a looser one, they are noisy on shared CI runners),
booleans must match, ``min`` floors are absolute.  Exit status 1 on any
regression.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time

from repro.core.actions import Invocation, Response
from repro.core.adt import (
    counter_adt,
    product_adt,
    register_adt,
    set_adt,
    tag_object,
)
from repro.core.fastcheck import COMPOSITIONAL, check_linearizable
from repro.core.linearizability import linearize
from repro.core.traces import Trace

#: default regression tolerance for gated ratio metrics; a check dict
#: may override it with its own ``"tolerance"`` key
TOLERANCE = 2.0


def percentile(samples, q):
    """The q-th percentile (0..100) by linear interpolation.

    Tiny and dependency-free on purpose: every throughput benchmark and
    the loadgen must agree on what "p99" means.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


def throughput_metrics(latencies_s, duration_s, prefix=""):
    """The uniform ops/s + latency-percentile metric surface.

    ``latencies_s`` are per-op latencies in seconds; ``duration_s`` the
    wall-clock of the run that committed them.  Returns the three keys
    every throughput-shaped benchmark reports (optionally prefixed, for
    side-by-side configurations in one report).
    """
    committed = len(latencies_s)
    return {
        f"{prefix}ops_per_s": (
            committed / duration_s if duration_s else 0.0
        ),
        f"{prefix}latency_p50_ms": percentile(latencies_s, 50) * 1e3,
        f"{prefix}latency_p99_ms": percentile(latencies_s, 99) * 1e3,
    }


# ---------------------------------------------------------------------------
# workload builders
# ---------------------------------------------------------------------------


def three_object_adt():
    """The >=3-object system of the acceptance criterion."""
    return product_adt(
        {
            "reg": register_adt(),
            "cnt": counter_adt(),
            "set": set_adt(),
        }
    )


def three_object_inputs():
    from repro.core.adt import (
        counter_read,
        inc,
        reg_read,
        reg_write,
        set_add,
        set_contains,
    )

    return [
        tag_object("reg", reg_write(1)),
        tag_object("reg", reg_write(2)),
        tag_object("reg", reg_read()),
        tag_object("cnt", inc()),
        tag_object("cnt", counter_read()),
        tag_object("set", set_add("x")),
        tag_object("set", set_contains("x")),
    ]


def random_product_trace(rng, adt, inputs, n_clients, n_steps):
    """A random linearizable trace (atomic at response time) with real
    concurrency: many clients, interleaved invocations/responses."""
    clients = [f"c{i}" for i in range(n_clients)]
    open_input = {c: None for c in clients}
    state = adt.initial_state
    actions = []
    for _ in range(n_steps):
        client = rng.choice(clients)
        if open_input[client] is None:
            payload = rng.choice(inputs)
            actions.append(Invocation(client, 1, payload))
            open_input[client] = payload
        else:
            payload = open_input[client]
            state, output = adt.transition(state, payload)
            actions.append(Response(client, 1, payload, output))
            open_input[client] = None
    return Trace(actions)


def rounds_trace(rng, adt, inputs, n_clients, n_rounds, corrupt=False):
    """A maximally concurrent trace: every round, all clients invoke,
    then all respond (atomic at response time, so honestly linearizable).

    The wide concurrency window is what separates the checkers: the
    monolithic search ranges over committed subsets of *all* pending
    operations, the compositional one only over same-object subsets.
    ``corrupt=True`` rewrites the last read-class response to an
    impossible output — proving *non*-linearizability is the exhaustive
    case where the window size is the whole story.
    """
    clients = [f"c{i}" for i in range(n_clients)]
    state = adt.initial_state
    actions = []
    pending = {}
    for _ in range(n_rounds):
        order = clients[:]
        rng.shuffle(order)
        for client in order:
            payload = rng.choice(inputs)
            pending[client] = payload
            actions.append(Invocation(client, 1, payload))
        order = clients[:]
        rng.shuffle(order)
        for client in order:
            payload = pending.pop(client)
            state, output = adt.transition(state, payload)
            actions.append(Response(client, 1, payload, output))
    if corrupt:
        from repro.core.adt import counter_read, reg_read

        impossible = {
            tag_object("cnt", counter_read()): ("cnt", ("count", 999)),
            tag_object("reg", reg_read()): ("reg", ("value", 777)),
        }
        for i in range(len(actions) - 1, -1, -1):
            action = actions[i]
            if (
                isinstance(action, Response)
                and action.input in impossible
            ):
                actions[i] = Response(
                    action.client,
                    action.phase,
                    action.input,
                    impossible[action.input],
                )
                break
    return Trace(actions)


def consensus_trace_family(count, n_clients, n_steps, seed=2024):
    from repro.core.adt import consensus_adt, propose

    adt = consensus_adt()
    inputs = [propose(v) for v in ("a", "b", "c")]
    rng = random.Random(seed)
    return adt, [
        random_product_trace(rng, adt, inputs, n_clients, n_steps)
        for _ in range(count)
    ]


def _median_seconds(fn, repeats):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def calibration_seconds():
    """A fixed pure-Python workload; ~the machine's interpreter speed."""

    def work():
        total = 0
        for i in range(200_000):
            total += i % 7
        return total

    return _median_seconds(work, 5)


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------


def bench_pcomp(quick):
    """P-compositional vs monolithic on 3-object traces.

    The family mixes honestly linearizable traces (both checkers find a
    witness; agreement is checked on positives) with corrupted ones
    (one impossible read output, so both must prove non-linearizability
    — the exhaustive case where decomposition pays exponentially).  The
    reported ``speedup`` is the median of the per-trace ratios.
    """
    adt = three_object_adt()
    inputs = three_object_inputs()
    rng = random.Random(7)
    n_clients, n_rounds = (6, 2) if quick else (6, 3)
    corrupted = 3 if quick else 5
    honest = 2 if quick else 3
    traces = [
        rounds_trace(rng, adt, inputs, n_clients, n_rounds, corrupt=True)
        for _ in range(corrupted)
    ] + [
        rounds_trace(rng, adt, inputs, n_clients, n_rounds)
        for _ in range(honest)
    ]
    repeats = 3 if quick else 5

    speedups = []
    agreement = True
    compositional = True
    sizes = []
    mono_medians = []
    comp_medians = []
    for trace in traces:
        sizes.append(len(trace.actions))
        mono = linearize(trace, adt)
        report = check_linearizable(trace, adt)
        agreement = agreement and (mono.ok == report.ok)
        compositional = compositional and (
            report.strategy == COMPOSITIONAL
        )
        mono_s = _median_seconds(lambda: linearize(trace, adt), repeats)
        comp_s = _median_seconds(
            lambda: check_linearizable(trace, adt), repeats
        )
        mono_medians.append(mono_s)
        comp_medians.append(comp_s)
        speedups.append(mono_s / comp_s if comp_s else 0.0)
    return {
        "name": "pcomp",
        "metrics": {
            "trace_count": len(traces),
            "trace_actions": sizes,
            "objects": 3,
            "median_monolithic_s": statistics.median(mono_medians),
            "median_compositional_s": statistics.median(comp_medians),
            "speedup": statistics.median(speedups),
            "agreement": agreement,
            "all_compositional": compositional,
        },
        "checks": [
            {"metric": "speedup", "mode": "higher_better", "min": 3.0},
            {"metric": "agreement", "mode": "bool"},
            {"metric": "all_compositional", "mode": "bool"},
        ],
    }


def bench_search(quick):
    """The optimized monolithic search, calibration-normalized."""
    count = 6 if quick else 12
    adt, traces = consensus_trace_family(
        count, n_clients=5, n_steps=22 if quick else 26
    )
    repeats = 3 if quick else 5

    def run_all():
        for trace in traces:
            linearize(trace, adt)

    median = _median_seconds(run_all, repeats)
    calib = calibration_seconds()
    return {
        "name": "search",
        "metrics": {
            "trace_count": count,
            "median_s": median,
            "calibration_s": calib,
            "normalized_cost": median / calib if calib else 0.0,
        },
        "checks": [
            {"metric": "normalized_cost", "mode": "lower_better"},
        ],
    }


def bench_campaign_scaling(quick, jobs=4):
    """Nemesis campaign at jobs=1 vs jobs=N: identical verdicts, wall."""
    from repro.faults.campaign import run_campaign

    n_schedules = 4 if quick else 14

    def campaign(n_jobs):
        lines = []
        t0 = time.perf_counter()
        report = run_campaign(
            n_schedules=n_schedules,
            base_seed=100,
            targets=("composed",),
            verbose=True,
            emit=lines.append,
            jobs=n_jobs,
        )
        return time.perf_counter() - t0, lines, report

    serial_s, serial_lines, serial_report = campaign(1)
    parallel_s, parallel_lines, parallel_report = campaign(jobs)
    return {
        "name": "campaign_scaling",
        "metrics": {
            "runs": n_schedules,
            "jobs": jobs,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else 0.0,
            "verdicts_identical": serial_lines == parallel_lines,
            "violations": len(serial_report.violations),
            "inconclusive": serial_report.inconclusive,
        },
        "checks": [
            {"metric": "verdicts_identical", "mode": "bool"},
            {"metric": "violations", "mode": "bool"},
        ],
    }


def bench_adt_hot_path(quick):
    """lru_cache'd ADT.step vs validating ADT.transition."""
    adt = three_object_adt()
    inputs = three_object_inputs()
    iterations = 20_000 if quick else 60_000
    repeats = 3 if quick else 5

    def drive(step):
        state = adt.initial_state
        for i in range(iterations):
            state, _ = step(state, inputs[i % len(inputs)])

    adt.step.cache_clear()
    uncached = _median_seconds(lambda: drive(adt.transition), repeats)
    cached = _median_seconds(lambda: drive(adt.step), repeats)
    return {
        "name": "adt_hot_path",
        "metrics": {
            "iterations": iterations,
            "uncached_s": uncached,
            "cached_s": cached,
            "cache_speedup": uncached / cached if cached else 0.0,
        },
        "checks": [
            {"metric": "cache_speedup", "mode": "higher_better"},
        ],
    }


def _delegated(module_name):
    """Load a standalone benchmark module and return its harness entry."""
    import importlib.util

    path = os.path.join(os.path.dirname(__file__), f"{module_name}.py")
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.harness_report


def bench_recovery(quick):
    """WAL replay/compaction/restart costs (delegates to bench_recovery.py)."""
    return _delegated("bench_recovery")(quick)


def bench_grayfaults(quick):
    """Gray-failure degradation (delegates to bench_grayfaults.py)."""
    return _delegated("bench_grayfaults")(quick)


def bench_throughput(quick):
    """Data-plane throughput vs seed (delegates to bench_throughput.py)."""
    return _delegated("bench_throughput")(quick)


def bench_monitor(quick):
    """Live-monitor overhead + GC bound (delegates to bench_monitor.py)."""
    return _delegated("bench_monitor")(quick)


def bench_sessions(quick):
    """Session-dedup seam overhead (delegates to bench_sessions.py)."""
    return _delegated("bench_sessions")(quick)


def bench_lint(quick):
    """Deep-lint latency over src/ (delegates to bench_lint.py)."""
    return _delegated("bench_lint")(quick)


BENCHES = {
    "pcomp": bench_pcomp,
    "search": bench_search,
    "campaign_scaling": bench_campaign_scaling,
    "adt_hot_path": bench_adt_hot_path,
    "recovery": bench_recovery,
    "grayfaults": bench_grayfaults,
    "throughput": bench_throughput,
    "monitor": bench_monitor,
    "sessions": bench_sessions,
    "lint": bench_lint,
}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def write_reports(reports, out_dir):
    os.makedirs(out_dir, exist_ok=True)
    for report in reports:
        path = os.path.join(out_dir, f"BENCH_{report['name']}.json")
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


def check_regressions(reports, baseline_dir):
    """Compare gated metrics against the committed baseline.

    Ratio metrics may not regress by more than the check's own
    ``"tolerance"`` (default :data:`TOLERANCE`); booleans must match;
    ``min`` floors are absolute.  Returns the list of failure messages.
    """
    failures = []
    for report in reports:
        name = report["name"]
        path = os.path.join(baseline_dir, f"BENCH_{name}.json")
        if not os.path.exists(path):
            print(f"note: no baseline for {name} ({path}); skipping")
            baseline = None
        else:
            with open(path) as handle:
                baseline = json.load(handle)
        for check in report.get("checks", []):
            metric = check["metric"]
            mode = check["mode"]
            tolerance = check.get("tolerance", TOLERANCE)
            current = report["metrics"].get(metric)
            floor = check.get("min")
            if floor is not None and not (
                isinstance(current, (int, float)) and current >= floor
            ):
                failures.append(
                    f"{name}.{metric} = {current!r} below floor {floor}"
                )
            if baseline is None:
                continue
            base = baseline["metrics"].get(metric)
            if base is None:
                continue
            if mode == "bool":
                if bool(current) != bool(base):
                    failures.append(
                        f"{name}.{metric}: {current!r} != baseline {base!r}"
                    )
            elif mode == "higher_better":
                if current < base / tolerance:
                    failures.append(
                        f"{name}.{metric} regressed: {current:.3g} < "
                        f"baseline {base:.3g} / {tolerance}"
                    )
            elif mode == "lower_better":
                if current > base * tolerance:
                    failures.append(
                        f"{name}.{metric} regressed: {current:.3g} > "
                        f"baseline {base:.3g} * {tolerance}"
                    )
    return failures


def summarize(report):
    metrics = report["metrics"]
    keys = sorted(metrics)
    body = ", ".join(
        f"{key}={metrics[key]:.4g}"
        if isinstance(metrics[key], float)
        else f"{key}={metrics[key]!r}"
        for key in keys
    )
    print(f"[{report['name']}] {body}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke)"
    )
    parser.add_argument(
        "--full", action="store_true", help="full workloads (default)"
    )
    parser.add_argument(
        "--out", default="bench-out", help="directory for BENCH_*.json"
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="DIR",
        help="baseline directory to compare against (fail on regression)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker count for the campaign-scaling benchmark",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated benchmark names (default: all)",
    )
    args = parser.parse_args(argv)
    quick = args.quick and not args.full

    names = list(BENCHES)
    if args.only:
        names = [n for n in args.only.split(",") if n]
        unknown = [n for n in names if n not in BENCHES]
        if unknown:
            print(f"unknown benchmarks: {unknown}; have {list(BENCHES)}")
            return 1

    reports = []
    for name in names:
        if name == "campaign_scaling":
            report = BENCHES[name](quick, jobs=args.jobs)
        else:
            report = BENCHES[name](quick)
        report["quick"] = quick
        summarize(report)
        reports.append(report)
    write_reports(reports, args.out)

    if args.check:
        failures = check_regressions(reports, args.check)
        if failures:
            print("\nREGRESSIONS:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("\nno regressions against baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
