"""E2 — graceful degradation under contention and faults (paper §2.1/2.4).

Two series:

* **contention sweep** — fraction of clients taking the slow path and
  mean latency as the number of concurrent proposers grows (random
  per-message delays let servers see proposals in different orders);
  expected shape: the fast-path fraction collapses as contention rises,
  latency degrades smoothly toward (and never below) the Backup cost —
  "an adversary can easily weaken the system by always making it abort
  the fast path";
* **crash series** — latency with 0 or 1 crashed servers (out of 3) and
  safety with 2 (no decision, no disagreement: Backup needs a majority).

Run standalone:  python benchmarks/bench_degradation.py
"""

import statistics

import pytest

from repro.mp import ComposedConsensus


def jitter(rng):
    return rng.uniform(0.5, 1.5)


def contention_point(n_clients: int, seeds=range(8)):
    """Aggregate fast-path fraction and mean latency at one load level."""
    fast = 0
    total = 0
    latencies = []
    for seed in seeds:
        system = ComposedConsensus(
            n_servers=3, seed=seed, delay=jitter, expected_clients=16
        )
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=0.0)
            for i in range(n_clients)
        ]
        system.run()
        decisions = {o.decided_value for o in outcomes}
        assert len(decisions) == 1, (seed, decisions)
        for o in outcomes:
            total += 1
            latencies.append(o.latency)
            if o.path == "fast":
                fast += 1
    return {
        "clients": n_clients,
        "fast_fraction": fast / total,
        "mean_latency": statistics.mean(latencies),
        "max_latency": max(latencies),
    }


def contention_series(levels=(1, 2, 4, 8)):
    return [contention_point(n) for n in levels]


def crash_point(crashes: int):
    system = ComposedConsensus(n_servers=3, seed=1)
    for i in range(crashes):
        system.crash_server(i, at=0.0)
    outcome = system.propose("c", "v", at=1.0)
    system.run(until=300.0)
    return {
        "crashes": crashes,
        "decided": outcome.decided_value is not None,
        "path": outcome.path,
        "latency": outcome.latency,
    }


def crash_series():
    return [crash_point(k) for k in (0, 1, 2)]


def timeout_ablation(timeouts=(2.0, 4.0, 8.0, 16.0)):
    """Design-choice ablation: the Quorum timer trades fast-path safety
    margin against crash-recovery latency.  Short timers switch early,
    lowering crash latency but risking spurious slow paths under jittery
    delays; long timers the reverse."""
    rows = []
    for timeout in timeouts:
        crash = ComposedConsensus(
            n_servers=3, seed=1, quorum_timeout=timeout
        )
        crash.crash_server(2, at=0.0)
        o_crash = crash.propose("c", "v", at=1.0)
        crash.run(until=400.0)

        spurious = 0
        for seed in range(10):
            jittery = ComposedConsensus(
                n_servers=3,
                seed=seed,
                delay=lambda rng: rng.uniform(0.5, 1.5),
                quorum_timeout=timeout,
            )
            o = jittery.propose("c", "v", at=0.0)
            jittery.run(until=400.0)
            if o.path == "slow":
                spurious += 1
        rows.append(
            {
                "timeout": timeout,
                "crash_latency": o_crash.latency,
                "spurious_slow": spurious,
            }
        )
    return rows


class TestContentionShape:
    @pytest.fixture(scope="class")
    def series(self):
        return contention_series()

    def test_uncontended_is_all_fast(self, series):
        assert series[0]["fast_fraction"] == 1.0
        assert series[0]["mean_latency"] <= 3.0

    def test_fast_fraction_collapses_under_contention(self, series):
        assert series[-1]["fast_fraction"] < 0.5

    def test_latency_degrades_monotonically_in_shape(self, series):
        # The mean latency at the highest load strictly exceeds the
        # uncontended latency (the adversary can force the slow path).
        assert series[-1]["mean_latency"] > series[0]["mean_latency"]

    def test_slow_path_still_bounded(self, series):
        assert all(p["max_latency"] < 60.0 for p in series)


class TestCrashShape:
    @pytest.fixture(scope="class")
    def series(self):
        return crash_series()

    def test_fault_free_fast(self, series):
        assert series[0] == {
            "crashes": 0,
            "decided": True,
            "path": "fast",
            "latency": 2.0,
        }

    def test_single_crash_slow_but_live(self, series):
        assert series[1]["decided"]
        assert series[1]["path"] == "slow"
        assert series[1]["latency"] > 2.0

    def test_majority_crash_safe_but_not_live(self, series):
        assert not series[2]["decided"]


class TestTimeoutAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return timeout_ablation()

    def test_crash_latency_tracks_timeout(self, rows):
        latencies = [r["crash_latency"] for r in rows]
        assert latencies == sorted(latencies)
        assert latencies[0] < latencies[-1]

    def test_uncontended_jitter_rarely_spurious(self, rows):
        # With a timeout comfortably above the max RTT (3.0), the fast
        # path never misfires.
        generous = [r for r in rows if r["timeout"] >= 4.0]
        assert all(r["spurious_slow"] == 0 for r in generous)


@pytest.mark.benchmark(group="degradation-e2")
def test_bench_contended_round(benchmark):
    benchmark(contention_point, 4, range(2))


@pytest.mark.benchmark(group="degradation-e2")
def test_bench_crash_round(benchmark):
    benchmark(crash_point, 1)


def main():
    print("E2a: contention sweep (3 servers, random delays)")
    print(f"{'clients':>8} {'fast%':>8} {'mean lat':>10} {'max lat':>9}")
    for p in contention_series():
        print(
            f"{p['clients']:>8} {100 * p['fast_fraction']:>7.0f}% "
            f"{p['mean_latency']:>10.2f} {p['max_latency']:>9.2f}"
        )
    print("\nE2c: Quorum-timeout ablation")
    print(f"{'timeout':>8} {'crash latency':>14} {'spurious slow/10':>17}")
    for r in timeout_ablation():
        print(
            f"{r['timeout']:>8.1f} {r['crash_latency']:>14.1f} "
            f"{r['spurious_slow']:>17}"
        )
    print("\nE2b: crash series (3 servers)")
    print(f"{'crashes':>8} {'decided':>8} {'path':>6} {'latency':>9}")
    for p in crash_series():
        lat = f"{p['latency']:.1f}" if p["latency"] is not None else "-"
        print(
            f"{p['crashes']:>8} {str(p['decided']):>8} {p['path']:>6} "
            f"{lat:>9}"
        )


if __name__ == "__main__":
    main()
