"""`LocalCluster`: an in-process n-replica deployment on localhost TCP.

Each replica is a :class:`~repro.net.node.ReplicaNode` with its own
:class:`~repro.net.transport.AsyncTransport` and listener on an
ephemeral port; all of them (and any client transports handed out by
:meth:`client_transport`) share one :class:`AddressBook`, which is the
cluster's entire static configuration.

``kill(i)`` closes a node's transport mid-run — listener gone,
connections severed, address withdrawn — which is how the loadgen and
the resilience tests exercise the Backup path over real sockets: with
one of three replicas dead, Quorum can never again collect accepts from
*all* servers, so every affected slot decides through Paxos (majority
2/3 still alive).
"""

from __future__ import annotations

from typing import List, Optional

from ..faults.netfaults import TransportFaults
from .node import COORDINATOR_RETRY_DELAY, ReplicaNode
from .transport import AddressBook, AsyncTransport


class LocalCluster:
    """n replica nodes in this process, one ephemeral TCP port each."""

    def __init__(
        self,
        n_servers: int = 3,
        faults: Optional[TransportFaults] = None,
        retry_delay: float = COORDINATOR_RETRY_DELAY,
        host: str = "127.0.0.1",
        port_base: Optional[int] = None,
    ) -> None:
        self.n_servers = n_servers
        self.book = AddressBook()
        self.faults = faults
        self.nodes: List[ReplicaNode] = [
            ReplicaNode(
                i,
                n_servers,
                self.book,
                faults=faults,
                retry_delay=retry_delay,
                host=host,
                port=0 if port_base is None else port_base + i,
            )
            for i in range(n_servers)
        ]
        self._client_transports: List[AsyncTransport] = []

    async def start(self) -> None:
        """Bind every node and publish the cluster in the address book."""
        for node in self.nodes:
            await node.start()

    def client_transport(self, name: str = "client") -> AsyncTransport:
        """A client-side transport wired to this cluster's address book.

        Clients share one transport per process: n pooled connections
        instead of n per client, and learned reply routes serve every
        client pid on it.  The transport is closed by :meth:`stop`.
        """
        transport = AsyncTransport(name, self.book, faults=self.faults)
        self._client_transports.append(transport)
        return transport

    async def kill(self, index: int) -> None:
        """Kill replica ``index`` (crash semantics, no clean handover)."""
        await self.nodes[index].stop()

    async def stop(self) -> None:
        """Tear the whole deployment down (idempotent)."""
        for transport in self._client_transports:
            await transport.close()
        for node in self.nodes:
            await node.stop()

    def alive(self) -> List[int]:
        """Indices of the nodes still serving."""
        return [
            node.index for node in self.nodes if not node.transport.closed
        ]
