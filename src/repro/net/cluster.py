"""`LocalCluster`: an in-process n-replica deployment on localhost TCP.

Each replica is a :class:`~repro.net.node.ReplicaNode` with its own
:class:`~repro.net.transport.AsyncTransport` and listener on an
ephemeral port; all of them (and any client transports handed out by
:meth:`client_transport`) share one :class:`AddressBook`, which is the
cluster's entire static configuration.

``kill(i)`` closes a node's transport mid-run — listener gone,
connections severed, address withdrawn — which is how the loadgen and
the resilience tests exercise the Backup path over real sockets: with
one of three replicas dead, Quorum can never again collect accepts from
*all* servers, so every affected slot decides through Paxos (majority
2/3 still alive).

With ``wal_root`` set each node persists its durable state to a
:class:`~repro.net.wal.NodeWAL` under ``wal_root/node{i}``, and
``restart(i)`` relaunches a killed node *from that directory*: a fresh
``ReplicaNode`` replays the WAL, rebuilds its per-slot roles with
recovered acceptor triples, sticky Quorum acceptances and decided
values, and rebinds the listener — peers reconnect via the address
book on their next send.  Node indices listed in ``amnesiac`` get no
WAL and restart blank, the deliberate durability bug the net nemesis
campaign must catch (:mod:`repro.faults.netcampaign`).  ``wal_fs``
substitutes a :class:`~repro.net.faultfs.FaultFS` under selected
nodes' WALs — the storage-fault campaigns inject ``ENOSPC`` and torn
writes through it.  A restart whose WAL replay finds provable
corruption propagates :exc:`~repro.net.wal.WALCorruptionError`: the
node fail-stops (stays dead) rather than serve from a corrupt fold.

:class:`Supervisor` automates the relaunch: a watch task polls for dead
nodes and calls ``restart`` on each after ``restart_delay`` — unless
the index is held via :meth:`Supervisor.hold`, which is how chaos
schedules keep a node down for a controlled window.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.netfaults import TransportFaults
from .codec import Codec, get_codec
from .faultfs import FaultFS
from .node import COORDINATOR_RETRY_DELAY, ReplicaNode
from .transport import AddressBook, AsyncTransport
from .wal import NodeWAL, WALCorruptionError


class LocalCluster:
    """n replica nodes in this process, one ephemeral TCP port each."""

    def __init__(
        self,
        n_servers: int = 3,
        faults: Optional[TransportFaults] = None,
        retry_delay: float = COORDINATOR_RETRY_DELAY,
        host: str = "127.0.0.1",
        port_base: Optional[int] = None,
        wal_root: Optional[str] = None,
        amnesiac: Sequence[int] = (),
        wal_fsync: bool = True,
        wal_fs: Optional[Dict[int, FaultFS]] = None,
        codec: Optional[str] = None,
        group_commit: bool = False,
    ) -> None:
        self.n_servers = n_servers
        self.book = AddressBook()
        self.faults = faults
        self.retry_delay = retry_delay
        self.host = host
        self.port_base = port_base
        self.wal_root = wal_root
        self.amnesiac = frozenset(amnesiac)
        self.wal_fsync = wal_fsync
        self.wal_fs = wal_fs or {}
        self.codec_name = codec
        self.codec: Optional[Codec] = (
            get_codec(codec) if codec is not None else None
        )
        self.group_commit = group_commit
        self.stopped = False
        self.nodes: List[ReplicaNode] = [
            self._make_node(i) for i in range(n_servers)
        ]
        self._client_transports: List[AsyncTransport] = []

    def _make_node(self, index: int) -> ReplicaNode:
        """Build a node, opening (and replaying) its WAL if configured."""
        wal = None
        if self.wal_root is not None and index not in self.amnesiac:
            wal = NodeWAL(
                os.path.join(self.wal_root, f"node{index}"),
                fsync=self.wal_fsync,
                fs=self.wal_fs.get(index),
                group_commit=self.group_commit,
            )
        return ReplicaNode(
            index,
            self.n_servers,
            self.book,
            faults=self.faults,
            retry_delay=self.retry_delay,
            host=self.host,
            port=0 if self.port_base is None else self.port_base + index,
            wal=wal,
            codec=self.codec,
        )

    async def start(self) -> None:
        """Bind every node and publish the cluster in the address book."""
        for node in self.nodes:
            await node.start()

    def client_transport(self, name: str = "client") -> AsyncTransport:
        """A client-side transport wired to this cluster's address book.

        Clients share one transport per process: n pooled connections
        instead of n per client, and learned reply routes serve every
        client pid on it.  The transport is closed by :meth:`stop`.
        """
        transport = AsyncTransport(
            name, self.book, faults=self.faults, codec=self.codec
        )
        self._client_transports.append(transport)
        return transport

    async def kill(self, index: int) -> None:
        """Kill replica ``index`` (crash semantics, no clean handover)."""
        await self.nodes[index].stop()

    async def restart(self, index: int) -> ReplicaNode:
        """Relaunch a killed replica from its WAL directory.

        A fresh :class:`ReplicaNode` replays the node's WAL (if the
        cluster has one) and rebuilds every recovered slot's roles
        before the new listener accepts a single frame; an amnesiac
        node comes back blank.  Peers and clients reconnect through the
        shared address book — the transport's per-peer reconnect
        cooldown retries the lookup on the next send.
        """
        old = self.nodes[index]
        if not old.transport.closed:
            raise RuntimeError(f"node{index} is still alive; kill it first")
        node = self._make_node(index)
        self.nodes[index] = node
        await node.start()
        return node

    async def stop(self) -> None:
        """Tear the whole deployment down (idempotent)."""
        self.stopped = True
        for transport in self._client_transports:
            await transport.close()
        for node in self.nodes:
            await node.stop()

    def alive(self) -> List[int]:
        """Indices of the nodes still serving."""
        return [
            node.index for node in self.nodes if not node.transport.closed
        ]


def shard_of(key: object, n_shards: int) -> int:
    """The shard index serving ``key`` — stable across processes.

    Uses crc32 over ``repr(key)`` rather than Python's ``hash`` (which
    is salted per process for strings): clients, the loadgen and the
    checker must all agree on the routing, forever.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % n_shards


class ShardedCluster:
    """N independent replica groups, routed by the partition key.

    Each shard is a full :class:`LocalCluster` — its own address book,
    nodes, WAL directories and consensus state — and serves a disjoint
    subset of keys chosen by :func:`shard_of`.  The routing key is the
    *same* key :class:`~repro.core.adt.PartitionSpec` partitions traces
    by, which is what makes verification compositional: every command
    for a key executes on exactly one shard, so each shard's recorded
    history is a complete history over its key subset, P-compositional
    checking applies shard-locally, and the whole deployment is
    linearizable iff every shard's history is
    (Horn & Kroening's locality argument, see PAPERS.md).
    """

    def __init__(
        self,
        n_shards: int = 2,
        n_servers: int = 3,
        wal_root: Optional[str] = None,
        **cluster_kwargs,
    ) -> None:
        self.n_shards = n_shards
        self.shards: List[LocalCluster] = [
            LocalCluster(
                n_servers=n_servers,
                wal_root=(
                    os.path.join(wal_root, f"shard{s}")
                    if wal_root is not None
                    else None
                ),
                **cluster_kwargs,
            )
            for s in range(n_shards)
        ]

    async def start(self) -> None:
        for shard in self.shards:
            await shard.start()

    async def stop(self) -> None:
        for shard in self.shards:
            await shard.stop()

    def shard_for_key(self, key: object) -> LocalCluster:
        """The replica group serving ``key``."""
        return self.shards[shard_of(key, self.n_shards)]

    def client_transports(self, name: str = "client") -> List[AsyncTransport]:
        """One client transport per shard, in shard order."""
        return [
            shard.client_transport(f"{name}-s{s}")
            for s, shard in enumerate(self.shards)
        ]


class Supervisor:
    """Detects dead nodes and relaunches them from their WAL directories.

    The watch task polls ``cluster.nodes`` every ``poll_interval``
    seconds; a node found dead (and not held) for at least
    ``restart_delay`` is restarted via :meth:`LocalCluster.restart`.
    ``hold(i)``/``release(i)`` exempt an index — chaos schedules hold a
    node before killing it so the down window stays *theirs*, then
    release it (or restart it themselves).  ``restarted`` accumulates
    ``(monotonic_time, index)`` pairs for assertions and reports.
    """

    def __init__(
        self,
        cluster: LocalCluster,
        poll_interval: float = 0.05,
        restart_delay: float = 0.0,
    ) -> None:
        self.cluster = cluster
        self.poll_interval = poll_interval
        self.restart_delay = restart_delay
        self.held: set = set()
        self.restarted: List[Tuple[float, int]] = []
        #: indices whose restart hit provable WAL corruption; the
        #: supervisor holds them (fail-stop) instead of retrying forever
        self.failstopped: List[int] = []
        self._down_since: dict = {}
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        """Start the watch task on the running loop."""
        self._task = asyncio.get_running_loop().create_task(self._watch())

    def hold(self, index: int) -> None:
        """Exempt ``index`` from supervision (keep it down)."""
        self.held.add(index)

    def release(self, index: int) -> None:
        """Resume supervising ``index``."""
        self.held.discard(index)
        self._down_since.pop(index, None)

    async def stop(self) -> None:
        """Cancel the watch task (idempotent)."""
        if self._task is None:
            return
        self._task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._task
        self._task = None

    async def _watch(self) -> None:
        loop = asyncio.get_running_loop()
        while not self.cluster.stopped:
            await asyncio.sleep(self.poll_interval)
            now = loop.time()
            for node in list(self.cluster.nodes):
                index = node.index
                if not node.transport.closed:
                    self._down_since.pop(index, None)
                    continue
                if index in self.held or self.cluster.stopped:
                    continue
                since = self._down_since.setdefault(index, now)
                if now - since < self.restart_delay:
                    continue
                self._down_since.pop(index, None)
                try:
                    await self.cluster.restart(index)
                except WALCorruptionError:
                    self.failstopped.append(index)
                    self.held.add(index)
                    continue
                self.restarted.append((now, index))
