"""`repro.net` — the asyncio TCP substrate for the speculative stack.

The second implementation of the substrate port defined in
:mod:`repro.net.port` (the first is the discrete-event simulator,
:mod:`repro.mp.sim`).  The protocol roles — Quorum servers/clients,
Paxos acceptors/coordinators, the Backup phase — run here *unchanged at
the algorithm level*: they see the same ``send`` / ``set_timer`` /
``on_message`` surface, but messages travel as length-prefixed JSON
frames over real localhost TCP sockets and timers are wall-clock
``loop.call_later`` timers.

Modules:

* :mod:`repro.net.codec` — the length-prefixed wire codecs: tagged
  JSON (the default) and a struct-packed binary format, both
  tuple-preserving and selectable per cluster, decoded uniformly via a
  magic-byte dispatch;
* :mod:`repro.net.pipeline` — :class:`SlotPipeline` and
  :class:`PipelineClient`, the high-throughput data plane: request
  batching into decree batches, a window of in-flight slots,
  multiplexed logical clients, incremental response derivation;
* :mod:`repro.net.transport` — :class:`AsyncTransport`, the port
  implementation: pid routing, connection pooling, reply routes,
  transport-level fault injection, :class:`~repro.mp.sim.NetworkStats`;
* :mod:`repro.net.node` — :class:`ReplicaNode`, one server's roles
  (lazily instantiated per SMR slot) behind a TCP listener;
* :mod:`repro.net.cluster` — :class:`LocalCluster`, an in-process
  n-replica launcher with clean shutdown and mid-run kill;
* :mod:`repro.net.client` — :class:`NetClient`, the client library
  (slot probing, Quorum fast path, Backup switch, safe retry of the
  same ``(client, seq)`` op under :class:`~repro.mp.backoff.BackoffPolicy`,
  coordinator failover, hedging) and the wire-level
  :class:`HistoryRecorder`;
* :mod:`repro.net.overload` — the typed :exc:`Overloaded` rejection
  and the :class:`CircuitBreaker` behind admission control;
* :mod:`repro.net.loadgen` — the closed-loop multi-client load
  generator: latency/throughput accounting and the end-of-run
  :func:`~repro.core.fastcheck.check_linearizable` verdict;
* :mod:`repro.net.wal` — the durable substrate: an append-only,
  checksummed, fsync'd :class:`WriteAheadLog` with snapshot compaction,
  folded per node into a :class:`NodeWAL` so a killed replica restarts
  (:meth:`LocalCluster.restart`, or automatically via
  :class:`Supervisor`) with its acceptor triples, sticky Quorum
  acceptances and decided log intact.
"""

from .client import (
    HistoryRecorder,
    NetClient,
    OperationTimeout,
    RequestTooLarge,
    RetriesExhausted,
)
from .cluster import LocalCluster, ShardedCluster, Supervisor, shard_of
from .codec import (
    BINARY_CODEC,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    JSON_CODEC,
    MAX_FRAME,
    decode_payload,
    encode_frame,
    encode_payload,
    get_codec,
)
from .loadgen import LoadReport, run_loadgen
from .node import ReplicaNode
from .overload import CircuitBreaker, Overloaded
from .pipeline import (
    DecreeAbandoned,
    PayloadTooLarge,
    PipelineClient,
    SlotPipeline,
)
from .transport import AddressBook, AsyncTransport
from .wal import NodeWAL, RecoveredState, WriteAheadLog

__all__ = [
    "AddressBook",
    "AsyncTransport",
    "BINARY_CODEC",
    "CircuitBreaker",
    "DecreeAbandoned",
    "FrameDecoder",
    "FrameError",
    "FrameTooLarge",
    "HistoryRecorder",
    "JSON_CODEC",
    "LoadReport",
    "LocalCluster",
    "MAX_FRAME",
    "NetClient",
    "NodeWAL",
    "OperationTimeout",
    "Overloaded",
    "PayloadTooLarge",
    "PipelineClient",
    "RecoveredState",
    "ReplicaNode",
    "RequestTooLarge",
    "RetriesExhausted",
    "ShardedCluster",
    "SlotPipeline",
    "Supervisor",
    "WriteAheadLog",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "get_codec",
    "run_loadgen",
    "shard_of",
]
