"""`repro.net` — the asyncio TCP substrate for the speculative stack.

The second implementation of the substrate port defined in
:mod:`repro.net.port` (the first is the discrete-event simulator,
:mod:`repro.mp.sim`).  The protocol roles — Quorum servers/clients,
Paxos acceptors/coordinators, the Backup phase — run here *unchanged at
the algorithm level*: they see the same ``send`` / ``set_timer`` /
``on_message`` surface, but messages travel as length-prefixed JSON
frames over real localhost TCP sockets and timers are wall-clock
``loop.call_later`` timers.

Modules:

* :mod:`repro.net.codec` — the length-prefixed JSON wire codec
  (tuple-preserving, so protocol messages round-trip exactly);
* :mod:`repro.net.transport` — :class:`AsyncTransport`, the port
  implementation: pid routing, connection pooling, reply routes,
  transport-level fault injection, :class:`~repro.mp.sim.NetworkStats`;
* :mod:`repro.net.node` — :class:`ReplicaNode`, one server's roles
  (lazily instantiated per SMR slot) behind a TCP listener;
* :mod:`repro.net.cluster` — :class:`LocalCluster`, an in-process
  n-replica launcher with clean shutdown and mid-run kill;
* :mod:`repro.net.client` — :class:`NetClient`, the client library
  (slot probing, Quorum fast path, Backup switch, retries via
  :class:`~repro.mp.backoff.BackoffPolicy`) and the wire-level
  :class:`HistoryRecorder`;
* :mod:`repro.net.loadgen` — the closed-loop multi-client load
  generator: latency/throughput accounting and the end-of-run
  :func:`~repro.core.fastcheck.check_linearizable` verdict;
* :mod:`repro.net.wal` — the durable substrate: an append-only,
  checksummed, fsync'd :class:`WriteAheadLog` with snapshot compaction,
  folded per node into a :class:`NodeWAL` so a killed replica restarts
  (:meth:`LocalCluster.restart`, or automatically via
  :class:`Supervisor`) with its acceptor triples, sticky Quorum
  acceptances and decided log intact.
"""

from .client import HistoryRecorder, NetClient, OperationTimeout
from .cluster import LocalCluster, Supervisor
from .codec import (
    FrameDecoder,
    FrameError,
    MAX_FRAME,
    decode_payload,
    encode_frame,
    encode_payload,
)
from .loadgen import LoadReport, run_loadgen
from .node import ReplicaNode
from .transport import AddressBook, AsyncTransport
from .wal import NodeWAL, RecoveredState, WriteAheadLog

__all__ = [
    "AddressBook",
    "AsyncTransport",
    "FrameDecoder",
    "FrameError",
    "HistoryRecorder",
    "LoadReport",
    "LocalCluster",
    "MAX_FRAME",
    "NetClient",
    "NodeWAL",
    "OperationTimeout",
    "RecoveredState",
    "ReplicaNode",
    "Supervisor",
    "WriteAheadLog",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "run_loadgen",
]
