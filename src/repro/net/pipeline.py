"""`SlotPipeline`: the high-throughput replication data plane.

:class:`~repro.net.client.NetClient` replicates one op per consensus
round and probes slots one at a time — correct, and exactly the paper's
client model, but it caps throughput at one op per protocol round trip.
This module rebuilds the client side for volume while leaving the
server roles and the consensus protocols untouched:

* **batching** — queued client ops are coalesced into a single decree
  value ``("batch", (op, ...))`` (:func:`repro.smr.universal.make_batch`),
  so one Quorum/Backup round decides many operations;
* **slot pipelining** — up to ``window`` consecutive slots are kept in
  flight at once instead of probing the next slot only after the
  previous one settled;
* **connection multiplexing** — every logical client shares the one
  transport (one socket per server node); ops are correlated back to
  their callers by their unique ``("seq", (client, seq))`` tags through
  the pipeline's waiter map, the moral equivalent of correlation ids on
  a multiplexed request/response socket;
* **incremental responses** — decided slots are folded into a running
  ADT state through the session-dedup seam
  (:class:`~repro.smr.sessions.SessionedApplier`, O(1) amortized per
  op) instead of re-deriving each response from the whole log prefix.

Safety rests on the same arguments as the probing client, with the
session rule closing the retry gap:

* *exactly-once application* — a retried or hedged op may ride two
  distinct decrees and decide at two slots; the
  :class:`~repro.smr.sessions.SessionedApplier` applies the first
  occurrence in log order and answers every later occurrence with the
  cached reply, so re-proposing a possibly-decided value is *safe* —
  the property speculative linearizability's abort-and-relaunch needs;
* *prefix completeness* — responses are derived only from the applied
  contiguous prefix; a slot is applied only once every lower slot is
  decided, so the derived state reflects exactly the decrees that
  precede it in the log.

Real-time order is preserved: an op invoked after another's response
enters the queue after the first committed, so it lands in a decree at
a strictly higher slot.

Overload degrades honestly instead of buffering without bound: the
intake queue is capped at ``max_queue`` and an op that would overflow
it — or that arrives while the pipeline's circuit breaker is open
after repeated decree give-ups — is rejected with the typed
:exc:`~repro.net.overload.Overloaded` *before* its invocation is
recorded (shed load leaves no trace in the history).

Oversized work never tears a connection (the typed
:exc:`~repro.net.codec.FrameTooLarge` discipline): a batch whose frame
would exceed ``MAX_FRAME`` is split in half and re-tried, and a single
op that cannot fit a frame by itself fails with the per-op
:exc:`PayloadTooLarge` *before* its invocation is recorded.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from ..analysis.sanitizer import atomic_section
from ..core.adt import ADT
from ..mp.backoff import BackoffPolicy
from ..mp.backup import BackupClient
from ..mp.quorum import QuorumClient
from ..smr.sessions import SessionedApplier
from ..smr.universal import batch_commands, kv_store_adt, make_batch
from .client import (
    DEFAULT_BACKOFF,
    DEFAULT_QUORUM_TIMEOUT,
    DEFAULT_RETRY_BACKOFF,
    HistoryRecorder,
    OpResult,
    RetriesExhausted,
)
from .codec import JSON_CODEC, MAX_FRAME, FrameTooLarge
from .overload import CircuitBreaker, Overloaded
from .transport import AsyncTransport

#: default number of decrees kept in flight
DEFAULT_WINDOW = 8

#: default max ops coalesced into one decree
DEFAULT_MAX_BATCH = 16

#: default admission bound on queued (not yet proposed) ops
DEFAULT_MAX_QUEUE = 1024

#: headroom between a size-checked frame and MAX_FRAME — covers the
#: envelope-shape differences between the probe and the server-side
#: frames (phase-2 broadcasts, WAL records) that carry the same value
FRAME_SLACK = 4096


class PayloadTooLarge(Exception):
    """A single operation cannot fit one wire frame even unbatched.

    Raised to the submitting caller *before* its invocation is recorded
    or any byte leaves the process — a per-op error, never a torn
    connection and never a poisoned client.
    """


class DecreeAbandoned(Exception):
    """A decree exhausted its Backup retry budget at its slot.

    Since the session seam made re-proposal safe (a second decree of
    the same op folds once), the pipeline no longer fails waiters with
    this: an abandoned slot is *reclaimed* — returned to the claimable
    pool so the apply prefix can never wedge behind a permanent hole —
    and its ops rejoin the queue for a fresh decree.  The type stays in
    the module API for callers that still catch it.
    """


class _Entry:
    """One queued op: its tagged command, the caller's future, and the
    decree-level metrics accumulated on its way to a commit."""

    __slots__ = ("tagged", "future", "attempts", "switched")

    def __init__(self, tagged: Tuple, future: asyncio.Future) -> None:
        self.tagged = tagged
        self.future = future
        self.attempts = 0
        self.switched = 0


def _probe_frame(value: Hashable) -> Tuple:
    """A representative wire envelope for size-checking ``value``."""
    return (("qcli", ("probe", 0, 0)), ("qs", 0, 0), ("q-propose", value))


def _swallow(future: asyncio.Future) -> None:
    # late failure of an abandoned attempt (e.g. DecreeAbandoned after
    # its waiter was superseded): retrieve it so asyncio never logs
    # "exception was never retrieved"
    if not future.cancelled():
        future.exception()


class SlotPipeline:
    """A windowed, batching proposer shared by many logical clients.

    One pipeline drives one replica group (one cluster / shard).  Ops
    enter via :meth:`enqueue`; the pump drains the queue into decree
    batches, keeps up to ``window`` slots in flight, and resolves each
    op's future with its derived response once the op's slot joins the
    applied contiguous prefix.  ``dedup=False`` disables the session
    seam — the mutant knob the retry-storm canary uses to prove the
    checker catches double-apply.
    """

    def __init__(
        self,
        name: str,
        n_servers: int,
        transport: AsyncTransport,
        adt: Optional[ADT] = None,
        window: int = DEFAULT_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        quorum_timeout: float = DEFAULT_QUORUM_TIMEOUT,
        backoff: Optional[BackoffPolicy] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        dedup: bool = True,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.name = name
        self.n_servers = n_servers
        self.transport = transport
        self.adt = adt if adt is not None else kv_store_adt()
        self.window = window
        self.max_batch = max_batch
        self.quorum_timeout = quorum_timeout
        # own copy: policy objects are never shared between proposers
        self.backoff = replace(backoff) if backoff else replace(DEFAULT_BACKOFF)
        self.max_queue = max_queue
        #: the session-dedup seam every decided command folds through
        self.applier = SessionedApplier(self.adt, enabled=dedup)
        #: breaker over this replica group: decree give-ups open it,
        #: settles close it; while open, admission sheds
        self.breaker = breaker or CircuitBreaker(
            clock=lambda: self.transport.now
        )
        #: slot → decided value (shared decided-log cache; safe by
        #: Quorum unanimity, same argument as NetClient.log)
        self.log: Dict[int, Hashable] = {}
        self.queue: Deque[_Entry] = deque()
        #: slot → the entries riding the decree in flight there
        self.in_flight: Dict[int, List[_Entry]] = {}
        #: tagged command → entry, the multiplexing correlation map.
        #: A retry/hedge re-enqueue of the same tagged op *supersedes*
        #: the older entry here; resolution is keyed by the tag, so the
        #: live waiter is answered whichever copy of the decree decides
        #: first.
        self._waiters: Dict[Tuple, _Entry] = {}
        self._next_slot = 0
        #: abandoned slots returned to the claimable pool (min-heap):
        #: a decree give-up must not leave a permanently-undecided hole
        #: that head-of-line-blocks the apply prefix forever
        self._free_slots: List[int] = []
        self._applied_upto = 0
        self._state = self.adt.initial_state
        #: decrees proposed / ops they carried (observability)
        self.decrees = 0
        self.batched_ops = 0
        self.splits = 0
        #: ops rejected up front by admission control
        self.shed = 0
        #: abandoned slots re-claimed for a fresh decree (observability)
        self.reclaimed = 0
        self._pump_scheduled = False

    @property
    def duplicates(self) -> int:
        """Duplicate decree occurrences the session seam suppressed."""
        return self.applier.duplicates

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------

    def fits(self, value: Hashable) -> bool:
        """Whether ``value`` fits one frame in every encoding it rides.

        Checked against the *JSON* codec even when the wire runs binary:
        the WAL logs decree values as JSON records under the same 1 MiB
        bound, so the larger encoding is the binding one.
        """
        try:
            wire = self.transport.codec.encode_frame(_probe_frame(value))
            journal = JSON_CODEC.encode_frame(_probe_frame(value))
        except FrameTooLarge:
            return False
        return max(len(wire), len(journal)) + FRAME_SLACK <= MAX_FRAME

    def ensure_fits(self, tagged: Tuple) -> None:
        """Raise :exc:`PayloadTooLarge` unless ``tagged`` can frame alone.

        Callers run this *before* recording the invocation: an
        unframeable op must fail per-op with the history and the client
        untouched, and nothing of it may ever be queued or sent.
        """
        if not self.fits(make_batch((tagged,))):
            raise PayloadTooLarge(
                f"operation {tagged[:-1]!r} cannot fit one wire frame "
                f"(MAX_FRAME={MAX_FRAME})"
            )

    def admit(self) -> None:
        """Admission control: raise :exc:`Overloaded` instead of queueing.

        Called by submitting clients *before* recording the invocation
        (shed load leaves no history).  Retry and hedge re-enqueues of
        an already-admitted op bypass this — shedding a retry would
        turn backpressure into a fate-unknown failure.
        """
        if not self.breaker.allow():
            self.shed += 1
            raise Overloaded(
                f"pipeline {self.name!r}: circuit open after "
                f"{self.breaker.trips} trip(s) on this replica group"
            )
        if len(self.queue) >= self.max_queue:
            self.shed += 1
            raise Overloaded(
                f"pipeline {self.name!r}: admission queue full "
                f"({self.max_queue} ops waiting)"
            )

    def enqueue(self, tagged: Tuple) -> asyncio.Future:
        """Queue one tagged op; the future resolves with its response.

        Raises :exc:`PayloadTooLarge` if the op cannot fit a frame even
        as a batch of one (nothing is queued or sent in that case).
        Re-enqueueing the same tagged op (a retry or hedge) is safe:
        the new entry supersedes the old in the waiter map, a still
        queued older copy is dropped by the pump, and duplicate decrees
        fold once through the session seam.
        """
        self.ensure_fits(tagged)
        future: asyncio.Future = self.transport.loop.create_future()
        entry = _Entry(tagged, future)
        self.queue.append(entry)
        self._waiters[tagged] = entry
        # defer the pump one loop tick: every op enqueued in this tick
        # (all the concurrent clients' submits) coalesces into the same
        # decree batch instead of going out one decree per op
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.transport.loop.call_soon(self._scheduled_pump)
        return future

    # ------------------------------------------------------------------
    # the pump
    # ------------------------------------------------------------------

    def _claim_slot(self) -> int:
        # The claim is an atomic section: read of _next_slot and the
        # write-back must not be separated by a suspension, or two
        # proposers claim the same slot (the runtime sanitizer enforces
        # this under REPRO_SANITIZE=1; statically it is RD08's job).
        with atomic_section(self, "slot-claim"):
            # reclaimed (abandoned) slots first: the lowest undecided
            # slot gates the apply prefix, so filling holes beats
            # extending the log.  A pooled slot may have been decided
            # meanwhile by someone else's decree — skip those.
            while self._free_slots:
                slot = heapq.heappop(self._free_slots)
                if slot not in self.log and slot not in self.in_flight:
                    return slot
            slot = self._next_slot
            while slot in self.log:
                slot += 1
            self._next_slot = slot + 1
            return slot

    def _scheduled_pump(self) -> None:
        self._pump_scheduled = False
        self._pump()

    def _pump(self) -> None:
        while len(self.in_flight) < self.window and self.queue:
            group: List[_Entry] = []
            while self.queue and len(group) < self.max_batch:
                entry = self.queue.popleft()
                if self._waiters.get(entry.tagged) is not entry:
                    # superseded by a retry/hedge re-enqueue of the
                    # same op: the newer entry will carry it
                    continue
                group.append(entry)
            if not group:
                continue
            value = make_batch(tuple(entry.tagged for entry in group))
            while len(group) > 1 and not self.fits(value):
                # split-and-retry: halve until the batch frames; the
                # cut tail rejoins the queue head.  Terminates because
                # a singleton always fits (the enqueue pre-check).
                self.splits += 1
                half = (len(group) + 1) // 2
                self.queue.extendleft(reversed(group[half:]))
                group = group[:half]
                value = make_batch(tuple(entry.tagged for entry in group))
            self.decrees += 1
            self.batched_ops += len(group)
            for entry in group:
                entry.attempts += 1
            self._propose(self._claim_slot(), value, group)
        # no queued work to ride a reclaimed slot: fill the hole with
        # an empty decree anyway, or ops already decided *above* it
        # would wait on the gap forever
        while (
            self._free_slots
            and not self.queue
            and len(self.in_flight) < self.window
        ):
            slot = heapq.heappop(self._free_slots)
            if slot in self.log or slot in self.in_flight:
                continue
            self.decrees += 1
            self._propose(slot, make_batch(()), [])

    def _propose(
        self, slot: int, value: Hashable, group: List[_Entry]
    ) -> None:
        self.in_flight[slot] = group
        sub = (self.name, slot)
        op_pids: List[Hashable] = []
        settled = [False]

        def settle(winner: Hashable) -> None:
            if settled[0]:
                return
            settled[0] = True
            self.breaker.record_success()
            for pid in op_pids:
                self.transport.unregister(pid)
            if slot not in self.log:
                self.log[slot] = winner
            group_ = self.in_flight.pop(slot, [])
            if self.log[slot] != value:
                # lost the slot: the winner is someone else's decree;
                # our ops rejoin at the head (their invocations are the
                # oldest) and the pump reproposes at a fresh slot
                self.queue.extendleft(reversed(group_))
            self._apply_ready()
            self._pump()

        def on_switch(switch_value: Hashable) -> None:
            if settled[0]:
                return
            for entry in group:
                entry.switched += 1
            backup = BackupClient(
                ("bcli", sub),
                coordinators=[
                    ("coord", slot, j) for j in range(self.n_servers)
                ],
                n_acceptors=self.n_servers,
                on_decide=settle,
                backoff=self.backoff,
                on_give_up=on_give_up,
            )
            self.transport.register(backup)
            op_pids.append(backup.pid)
            for j in range(self.n_servers):
                self.transport.send(
                    backup.pid,
                    ("ctl", 0, j),
                    ("register-learner", slot, backup.pid),
                )
            backup.switch_to_backup(switch_value)

        def on_give_up() -> None:
            # The slot is unreachable within the retry budget.  The
            # decree may still decide there later — but under the
            # session seam re-proposing the same ops is safe
            # (duplicates fold once), and an undecided hole below
            # ``_applied_upto``'s frontier would block every response
            # behind it forever.  So: reclaim the slot for a fresh
            # decree and send the still-waited-on ops back through the
            # pump.  Feed the breaker: enough give-ups in a row and
            # admission starts shedding.
            if settled[0]:
                return
            settled[0] = True
            self.breaker.record_failure()
            self.reclaimed += 1
            for pid in op_pids:
                self.transport.unregister(pid)
            abandoned = self.in_flight.pop(slot, [])
            heapq.heappush(self._free_slots, slot)
            live = [
                entry
                for entry in abandoned
                if self._waiters.get(entry.tagged) is entry
                and not entry.future.done()
            ]
            # oldest invocations rejoin at the head; superseded or
            # given-up ops are simply dropped (a retry copy or nobody
            # is waiting)
            self.queue.extendleft(reversed(live))
            self._pump()

        quorum = QuorumClient(
            ("qcli", sub),
            servers=[("qs", slot, j) for j in range(self.n_servers)],
            on_decide=settle,
            on_switch=on_switch,
            timeout=self.quorum_timeout,
        )
        self.transport.register(quorum)
        op_pids.append(quorum.pid)
        quorum.propose(value)

    # ------------------------------------------------------------------
    # applying the decided prefix
    # ------------------------------------------------------------------

    def _apply_ready(self) -> None:
        """Fold newly contiguous decided slots into the running state
        through the session seam, resolving the futures of ops this
        pipeline owns.  A duplicate occurrence (retried/hedged op whose
        earlier decree also decided) leaves the state unchanged and
        answers its waiter — if one is still live — with the cached
        reply its first occurrence produced."""
        while self._applied_upto in self.log:
            value = self.log[self._applied_upto]
            for command in batch_commands(value):
                self._state, output, _fresh = self.applier.apply(
                    self._state, command
                )
                entry = self._waiters.pop(command, None)
                if entry is not None and not entry.future.done():
                    entry.future.set_result(
                        (output, self._applied_upto,
                         entry.attempts, entry.switched)
                    )
            self._applied_upto += 1


class PipelineClient:
    """One sequential logical client multiplexed onto a pipeline.

    The closed-loop contract and recording discipline are identical to
    :class:`~repro.net.client.NetClient` — invoke before any effect is
    possible, respond only with a derived response — and so is the
    retry story: an attempt that times out or whose decree is abandoned
    is *safely re-submitted* with the same ``(client, seq)`` tag
    (duplicates fold once through the pipeline's session seam), paced
    by a per-client ``retry_backoff`` copy, with an optional hedged
    duplicate enqueue after ``hedge_after`` seconds.  All attempts are
    one invocation; only when the total ``op_timeout`` deadline or the
    retry budget is spent does the op fail with
    :exc:`~repro.net.client.RetriesExhausted`, leaving the invocation
    pending and the identity poisoned.
    """

    def __init__(
        self,
        name: str,
        pipeline: SlotPipeline,
        recorder: HistoryRecorder,
        op_timeout: float = 5.0,
        attempt_timeout: Optional[float] = None,
        hedge_after: Optional[float] = None,
        retry_backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.name = name
        self.pipeline = pipeline
        self.recorder = recorder
        self.op_timeout = op_timeout
        self.attempt_timeout = (
            attempt_timeout
            if attempt_timeout is not None
            else max(op_timeout / 4.0, 2.0 * pipeline.quorum_timeout)
        )
        self.hedge_after = hedge_after
        # own copy, never the module template (satellite of the same
        # rule NetClient follows: policy state must not couple clients)
        self.retry_backoff = (
            replace(retry_backoff)
            if retry_backoff
            else replace(DEFAULT_RETRY_BACKOFF)
        )
        self.poisoned = False
        self.results: List[OpResult] = []
        #: attempt-level re-submissions / hedged duplicate enqueues
        self.retries = 0
        self.hedges = 0
        self._seq = 0
        self._incarnation = 0

    def successor(self) -> "PipelineClient":
        """A fresh identity continuing this client's workload (see
        :meth:`NetClient.successor` for the Jepsen rationale)."""
        root = self.name.split("@", 1)[0]
        heir = PipelineClient(
            f"{root}@{self._incarnation + 1}",
            self.pipeline,
            self.recorder,
            op_timeout=self.op_timeout,
            attempt_timeout=self.attempt_timeout,
            hedge_after=self.hedge_after,
            retry_backoff=self.retry_backoff,
        )
        heir._incarnation = self._incarnation + 1
        return heir

    def _retire(self, futures: List[asyncio.Future]) -> None:
        # fate unknown: the op may still decide and take effect, so the
        # invocation stays pending and the identity is done.  Abandoned
        # attempt futures may still fail later — swallow those.
        self.poisoned = True
        for f in futures:
            f.add_done_callback(_swallow)

    async def submit(self, command: Tuple) -> Hashable:
        """Replicate one KV command; return its derived response.

        Raises :exc:`PayloadTooLarge` for an unframeable op and
        :exc:`~repro.net.overload.Overloaded` when admission sheds it —
        both per-op, pre-invocation, non-poisoning — and
        :exc:`~repro.net.client.RetriesExhausted` when every attempt
        within the deadline failed (op left pending, client poisoned).
        """
        if self.poisoned:
            raise RuntimeError(
                f"client {self.name!r} is poisoned by an op whose fate "
                f"is unknown (retries exhausted)"
            )
        self._seq += 1
        tagged = command + (("seq", (self.name, self._seq)),)
        # oversize and admission pre-checks first (per-op failures with
        # the history and the client untouched), then record the
        # invocation, then hand the op to the pipeline.  The invocation
        # MUST be recorded before the op is queued anywhere: once
        # enqueued it can decide and take effect even if this task dies
        # — a submitter cancelled mid-flight must leave a *pending*
        # invocation in the history, never an effect with no invocation.
        self.pipeline.ensure_fits(tagged)
        self.pipeline.admit()
        start = self.pipeline.transport.now
        deadline = start + self.op_timeout
        self.recorder.invoke(self.name, command)
        futures: List[asyncio.Future] = [self.pipeline.enqueue(tagged)]
        attempt_started = start
        hedged = False
        round_no = 0
        outcome = None
        while outcome is None:
            # a future may have resolved while we slept in backoff or
            # enqueued a new attempt: harvest before waiting again
            for f in futures:
                if f.done() and not f.cancelled() and f.exception() is None:
                    outcome = f.result()
                    break
            if outcome is not None:
                break
            now = self.pipeline.transport.now
            if now >= deadline:
                self._retire(futures)
                raise RetriesExhausted(
                    f"{self.name}: {command!r} still undecided after "
                    f"{self.op_timeout}s across {round_no + 1} attempt(s)"
                ) from None
            wake = min(attempt_started + self.attempt_timeout, deadline)
            if self.hedge_after is not None and not hedged:
                wake = min(wake, attempt_started + self.hedge_after)
            pending = [f for f in futures if not f.done()]
            if pending:
                done, _ = await asyncio.wait(
                    pending,
                    timeout=max(wake - now, 0.0),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for f in done:
                    if f.exception() is None:
                        outcome = f.result()
                        break
                if outcome is not None:
                    break
            now = self.pipeline.transport.now
            all_failed = all(
                f.done() and f.exception() is not None for f in futures
            )
            if (
                not all_failed
                and self.hedge_after is not None
                and not hedged
                and now >= attempt_started + self.hedge_after
            ):
                # the attempt looks slow: launch one duplicate enqueue;
                # whichever decree decides first answers, the other
                # folds as a duplicate
                hedged = True
                self.hedges += 1
                futures.append(self.pipeline.enqueue(tagged))
                continue
            if all_failed or now >= attempt_started + self.attempt_timeout:
                # attempt over (timed out, or every in-flight copy was
                # abandoned): re-submit the same tagged op if budget
                # and deadline allow
                if self.retry_backoff.exhausted(round_no):
                    self._retire(futures)
                    raise RetriesExhausted(
                        f"{self.name}: {command!r} still undecided after "
                        f"{round_no + 1} attempt(s); retry budget spent"
                    ) from None
                round_no += 1
                self.retries += 1
                pause = min(
                    self.retry_backoff.delay(
                        round_no, key=(self.name, self._seq)
                    ),
                    max(deadline - now, 0.0),
                )
                if pause > 0:
                    await asyncio.sleep(pause)
                attempt_started = self.pipeline.transport.now
                futures.append(self.pipeline.enqueue(tagged))
        for f in futures:
            f.add_done_callback(_swallow)
        output, slot, attempts, switched = outcome
        self.recorder.respond(self.name, command, output)
        self.results.append(
            OpResult(
                client=self.name,
                command=command,
                response=output,
                slot=slot,
                latency=self.pipeline.transport.now - start,
                attempts=attempts,
                switched_slots=switched,
            )
        )
        return output
