"""`SlotPipeline`: the high-throughput replication data plane.

:class:`~repro.net.client.NetClient` replicates one op per consensus
round and probes slots one at a time — correct, and exactly the paper's
client model, but it caps throughput at one op per protocol round trip.
This module rebuilds the client side for volume while leaving the
server roles and the consensus protocols untouched:

* **batching** — queued client ops are coalesced into a single decree
  value ``("batch", (op, ...))`` (:func:`repro.smr.universal.make_batch`),
  so one Quorum/Backup round decides many operations;
* **slot pipelining** — up to ``window`` consecutive slots are kept in
  flight at once instead of probing the next slot only after the
  previous one settled;
* **connection multiplexing** — every logical client shares the one
  transport (one socket per server node); ops are correlated back to
  their callers by their unique ``("seq", (client, seq))`` tags through
  the pipeline's waiter map, the moral equivalent of correlation ids on
  a multiplexed request/response socket;
* **incremental responses** — decided slots are applied to a running
  ADT state with ``adt.transition`` (O(1) amortized per op) instead of
  re-deriving each response from the whole log prefix (O(n) per op,
  O(n²) per run — the other half of the seed throughput ceiling).

Safety rests on the same two arguments as the probing client:

* *no value decides twice* — a batch is proposed at exactly one slot at
  a time, and is re-enqueued only after its slot demonstrably decided a
  different winner (Quorum unanimity makes a learned decision final);
  distinct batches are distinct values because each carries its ops'
  unique per-client tags;
* *prefix completeness* — responses are derived only from the applied
  contiguous prefix; a slot is applied only once every lower slot is
  decided, so the derived state reflects exactly the decrees that
  precede it in the log.

Real-time order is preserved: an op invoked after another's response
enters the queue after the first committed, so it lands in a decree at
a strictly higher slot.

Oversized work never tears a connection (the typed
:exc:`~repro.net.codec.FrameTooLarge` discipline): a batch whose frame
would exceed ``MAX_FRAME`` is split in half and re-tried, and a single
op that cannot fit a frame by itself fails with the per-op
:exc:`PayloadTooLarge` *before* its invocation is recorded.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from ..core.adt import ADT
from ..mp.backoff import BackoffPolicy
from ..mp.backup import BackupClient
from ..mp.quorum import QuorumClient
from ..smr.universal import batch_commands, kv_store_adt, make_batch
from .client import (
    DEFAULT_BACKOFF,
    DEFAULT_QUORUM_TIMEOUT,
    HistoryRecorder,
    OperationTimeout,
    OpResult,
)
from .codec import JSON_CODEC, MAX_FRAME, FrameTooLarge
from .transport import AsyncTransport

#: default number of decrees kept in flight
DEFAULT_WINDOW = 8

#: default max ops coalesced into one decree
DEFAULT_MAX_BATCH = 16

#: headroom between a size-checked frame and MAX_FRAME — covers the
#: envelope-shape differences between the probe and the server-side
#: frames (phase-2 broadcasts, WAL records) that carry the same value
FRAME_SLACK = 4096


class PayloadTooLarge(Exception):
    """A single operation cannot fit one wire frame even unbatched.

    Raised to the submitting caller *before* its invocation is recorded
    or any byte leaves the process — a per-op error, never a torn
    connection and never a poisoned client.
    """


class DecreeAbandoned(Exception):
    """The decree carrying this op exhausted its Backup retry budget.

    The op's fate is unknown (it may still decide later), so it must be
    treated exactly like a timeout: invocation left pending, client
    poisoned.
    """


class _Entry:
    """One queued op: its tagged command, the caller's future, and the
    decree-level metrics accumulated on its way to a commit."""

    __slots__ = ("tagged", "future", "attempts", "switched")

    def __init__(self, tagged: Tuple, future: asyncio.Future) -> None:
        self.tagged = tagged
        self.future = future
        self.attempts = 0
        self.switched = 0


def _probe_frame(value: Hashable) -> Tuple:
    """A representative wire envelope for size-checking ``value``."""
    return (("qcli", ("probe", 0, 0)), ("qs", 0, 0), ("q-propose", value))


class SlotPipeline:
    """A windowed, batching proposer shared by many logical clients.

    One pipeline drives one replica group (one cluster / shard).  Ops
    enter via :meth:`enqueue`; the pump drains the queue into decree
    batches, keeps up to ``window`` slots in flight, and resolves each
    op's future with its derived response once the op's slot joins the
    applied contiguous prefix.
    """

    def __init__(
        self,
        name: str,
        n_servers: int,
        transport: AsyncTransport,
        adt: Optional[ADT] = None,
        window: int = DEFAULT_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        quorum_timeout: float = DEFAULT_QUORUM_TIMEOUT,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.name = name
        self.n_servers = n_servers
        self.transport = transport
        self.adt = adt if adt is not None else kv_store_adt()
        self.window = window
        self.max_batch = max_batch
        self.quorum_timeout = quorum_timeout
        self.backoff = backoff or DEFAULT_BACKOFF
        #: slot → decided value (shared decided-log cache; safe by
        #: Quorum unanimity, same argument as NetClient.log)
        self.log: Dict[int, Hashable] = {}
        self.queue: Deque[_Entry] = deque()
        #: slot → the entries riding the decree in flight there
        self.in_flight: Dict[int, List[_Entry]] = {}
        #: tagged command → entry, the multiplexing correlation map
        self._waiters: Dict[Tuple, _Entry] = {}
        self._next_slot = 0
        self._applied_upto = 0
        self._state = self.adt.initial_state
        #: decrees proposed / ops they carried (observability)
        self.decrees = 0
        self.batched_ops = 0
        self.splits = 0
        self._pump_scheduled = False

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------

    def fits(self, value: Hashable) -> bool:
        """Whether ``value`` fits one frame in every encoding it rides.

        Checked against the *JSON* codec even when the wire runs binary:
        the WAL logs decree values as JSON records under the same 1 MiB
        bound, so the larger encoding is the binding one.
        """
        try:
            wire = self.transport.codec.encode_frame(_probe_frame(value))
            journal = JSON_CODEC.encode_frame(_probe_frame(value))
        except FrameTooLarge:
            return False
        return max(len(wire), len(journal)) + FRAME_SLACK <= MAX_FRAME

    def ensure_fits(self, tagged: Tuple) -> None:
        """Raise :exc:`PayloadTooLarge` unless ``tagged`` can frame alone.

        Callers run this *before* recording the invocation: an
        unframeable op must fail per-op with the history and the client
        untouched, and nothing of it may ever be queued or sent.
        """
        if not self.fits(make_batch((tagged,))):
            raise PayloadTooLarge(
                f"operation {tagged[:-1]!r} cannot fit one wire frame "
                f"(MAX_FRAME={MAX_FRAME})"
            )

    def enqueue(self, tagged: Tuple) -> asyncio.Future:
        """Queue one tagged op; the future resolves with its response.

        Raises :exc:`PayloadTooLarge` if the op cannot fit a frame even
        as a batch of one (nothing is queued or sent in that case).
        """
        self.ensure_fits(tagged)
        future: asyncio.Future = self.transport.loop.create_future()
        entry = _Entry(tagged, future)
        self.queue.append(entry)
        self._waiters[tagged] = entry
        # defer the pump one loop tick: every op enqueued in this tick
        # (all the concurrent clients' submits) coalesces into the same
        # decree batch instead of going out one decree per op
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.transport.loop.call_soon(self._scheduled_pump)
        return future

    # ------------------------------------------------------------------
    # the pump
    # ------------------------------------------------------------------

    def _claim_slot(self) -> int:
        slot = self._next_slot
        while slot in self.log:
            slot += 1
        self._next_slot = slot + 1
        return slot

    def _scheduled_pump(self) -> None:
        self._pump_scheduled = False
        self._pump()

    def _pump(self) -> None:
        while len(self.in_flight) < self.window and self.queue:
            group = [
                self.queue.popleft()
                for _ in range(min(self.max_batch, len(self.queue)))
            ]
            value = make_batch(tuple(entry.tagged for entry in group))
            while len(group) > 1 and not self.fits(value):
                # split-and-retry: halve until the batch frames; the
                # cut tail rejoins the queue head.  Terminates because
                # a singleton always fits (the enqueue pre-check).
                self.splits += 1
                half = (len(group) + 1) // 2
                self.queue.extendleft(reversed(group[half:]))
                group = group[:half]
                value = make_batch(tuple(entry.tagged for entry in group))
            self.decrees += 1
            self.batched_ops += len(group)
            for entry in group:
                entry.attempts += 1
            self._propose(self._claim_slot(), value, group)

    def _propose(
        self, slot: int, value: Hashable, group: List[_Entry]
    ) -> None:
        self.in_flight[slot] = group
        sub = (self.name, slot)
        op_pids: List[Hashable] = []
        settled = [False]

        def settle(winner: Hashable) -> None:
            if settled[0]:
                return
            settled[0] = True
            for pid in op_pids:
                self.transport.unregister(pid)
            if slot not in self.log:
                self.log[slot] = winner
            group_ = self.in_flight.pop(slot, [])
            if self.log[slot] != value:
                # lost the slot: the winner is someone else's decree;
                # our ops rejoin at the head (their invocations are the
                # oldest) and the pump reproposes at a fresh slot
                self.queue.extendleft(reversed(group_))
            self._apply_ready()
            self._pump()

        def on_switch(switch_value: Hashable) -> None:
            if settled[0]:
                return
            for entry in group:
                entry.switched += 1
            backup = BackupClient(
                ("bcli", sub),
                coordinators=[
                    ("coord", slot, j) for j in range(self.n_servers)
                ],
                n_acceptors=self.n_servers,
                on_decide=settle,
                backoff=self.backoff,
                on_give_up=on_give_up,
            )
            self.transport.register(backup)
            op_pids.append(backup.pid)
            for j in range(self.n_servers):
                self.transport.send(
                    backup.pid,
                    ("ctl", 0, j),
                    ("register-learner", slot, backup.pid),
                )
            backup.switch_to_backup(switch_value)

        def on_give_up() -> None:
            # The slot is unreachable within the retry budget.  The
            # decree may or may not decide later, so its ops must NOT
            # be re-proposed (that could decide the value twice);
            # their fate is unknown — fail them like timeouts.
            if settled[0]:
                return
            settled[0] = True
            for pid in op_pids:
                self.transport.unregister(pid)
            abandoned = self.in_flight.pop(slot, [])
            for entry in abandoned:
                self._waiters.pop(entry.tagged, None)
                if not entry.future.done():
                    entry.future.set_exception(
                        DecreeAbandoned(
                            f"decree at slot {slot} gave up after "
                            "exhausting Backup retries"
                        )
                    )
            self._pump()

        quorum = QuorumClient(
            ("qcli", sub),
            servers=[("qs", slot, j) for j in range(self.n_servers)],
            on_decide=settle,
            on_switch=on_switch,
            timeout=self.quorum_timeout,
        )
        self.transport.register(quorum)
        op_pids.append(quorum.pid)
        quorum.propose(value)

    # ------------------------------------------------------------------
    # applying the decided prefix
    # ------------------------------------------------------------------

    @staticmethod
    def _untag(command: Tuple) -> Tuple:
        return command[:-1]

    def _apply_ready(self) -> None:
        """Fold newly contiguous decided slots into the running state,
        resolving the futures of ops this pipeline owns."""
        while self._applied_upto in self.log:
            value = self.log[self._applied_upto]
            for command in batch_commands(value):
                self._state, output = self.adt.transition(
                    self._state, self._untag(command)
                )
                entry = self._waiters.pop(command, None)
                if entry is not None and not entry.future.done():
                    entry.future.set_result(
                        (output, self._applied_upto,
                         entry.attempts, entry.switched)
                    )
            self._applied_upto += 1


class PipelineClient:
    """One sequential logical client multiplexed onto a pipeline.

    The closed-loop contract and recording discipline are identical to
    :class:`~repro.net.client.NetClient` — invoke before any effect is
    possible, respond only with a derived response, leave timed-out ops
    pending and poison the identity — but ops commit through the shared
    :class:`SlotPipeline` instead of a private slot probe.
    """

    def __init__(
        self,
        name: str,
        pipeline: SlotPipeline,
        recorder: HistoryRecorder,
        op_timeout: float = 5.0,
    ) -> None:
        self.name = name
        self.pipeline = pipeline
        self.recorder = recorder
        self.op_timeout = op_timeout
        self.poisoned = False
        self.results: List[OpResult] = []
        self._seq = 0
        self._incarnation = 0

    def successor(self) -> "PipelineClient":
        """A fresh identity continuing this client's workload (see
        :meth:`NetClient.successor` for the Jepsen rationale)."""
        root = self.name.split("@", 1)[0]
        heir = PipelineClient(
            f"{root}@{self._incarnation + 1}",
            self.pipeline,
            self.recorder,
            op_timeout=self.op_timeout,
        )
        heir._incarnation = self._incarnation + 1
        return heir

    async def submit(self, command: Tuple) -> Hashable:
        """Replicate one KV command; return its derived response.

        Raises :exc:`PayloadTooLarge` for an unframeable op (per-op,
        pre-invocation, non-poisoning) and :exc:`OperationTimeout` when
        the op's fate is unknown (op left pending, client poisoned).
        """
        if self.poisoned:
            raise RuntimeError(
                f"client {self.name!r} is poisoned by a timed-out op"
            )
        self._seq += 1
        tagged = command + (("seq", (self.name, self._seq)),)
        # oversize pre-check first (per-op failure with the history and
        # the client untouched), then record the invocation, then hand
        # the op to the pipeline.  The invocation MUST be recorded
        # before the op is queued anywhere: once enqueued it can decide
        # and take effect even if this task dies — a submitter
        # cancelled mid-flight must leave a *pending* invocation in the
        # history, never an effect with no invocation.
        self.pipeline.ensure_fits(tagged)
        start = self.pipeline.transport.now
        self.recorder.invoke(self.name, command)
        future = self.pipeline.enqueue(tagged)
        try:
            output, slot, attempts, switched = await asyncio.wait_for(
                future, self.op_timeout
            )
        except (asyncio.TimeoutError, DecreeAbandoned):
            self.poisoned = True
            raise OperationTimeout(
                f"{self.name}: {command!r} still undecided after "
                f"{self.op_timeout}s"
            ) from None
        self.recorder.respond(self.name, command, output)
        self.results.append(
            OpResult(
                client=self.name,
                command=command,
                response=output,
                slot=slot,
                latency=self.pipeline.transport.now - start,
                attempts=attempts,
                switched_slots=switched,
            )
        )
        return output
