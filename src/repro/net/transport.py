"""`AsyncTransport`: the substrate port over real asyncio TCP sockets.

One transport instance is one *endpoint* — a replica node or a client
process — hosting any number of protocol roles (pids).  Identical
protocol code runs against it and against the simulator because both
implement the port of :mod:`repro.net.port`:

* ``send(src, dst, message)`` resolves ``dst`` to an endpoint, encodes
  the envelope ``(src, dst, message)`` with the length-prefixed JSON
  codec and writes it to a pooled TCP connection (opened on demand);
* ``call_later`` is ``loop.call_later`` behind a cancellable handle;
* ``now`` is the event-loop wall clock.

Routing has two sources:

1. the static :class:`AddressBook` — server role pids
   ``("qs"|"acc"|"coord", slot, i)`` live on endpoint ``node{i}``;
2. learned *reply routes* — when a frame from pid ``p`` arrives over a
   connection, answers to ``p`` go back over that same connection.
   Clients therefore need no listening socket: they dial the nodes, and
   every server→client message (q-accepts, Paxos ``accepted``
   announcements to registered learners, decisions) rides the client's
   own connections, exactly like a request/response socket protocol
   with server push.

Delivery between two roles hosted on the *same* endpoint still
round-trips through the codec (encode → decode, no socket): colocated
roles keep in-process latency, but every message the system ever emits
is proven wire-encodable.

Faults are injected before a frame reaches a socket via
:class:`repro.faults.netfaults.TransportFaults`; counters — aggregate
and per-link at endpoint granularity — land in the same
:class:`~repro.mp.sim.NetworkStats` shape the simulator reports.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..faults.netfaults import TransportFaults
from ..mp.sim import NetworkStats
from .codec import JSON_CODEC, Codec, FrameDecoder, FrameError

logger = logging.getLogger(__name__)

#: roles hosted by replica nodes; pid shape ("role", slot, node_index).
#: "ctl" is the node's control role (learner registration), one per node.
SERVER_ROLES = frozenset({"qs", "acc", "coord", "ctl"})

#: time an unreachable endpoint stays blacklisted before a reconnect
#: attempt (seconds); sends during the cooldown are counted as lost
RECONNECT_COOLDOWN = 0.25


def endpoint_of_pid(pid: Hashable) -> Optional[str]:
    """The static endpoint of a server-role pid, or None for client pids.

    Server roles are addressed structurally — ``("acc", 7, 2)`` lives on
    ``node2`` whichever process asks — so any endpoint can reach any
    replica without prior contact.  Client-side pids have no static home;
    they are reached through learned reply routes only.
    """
    if (
        isinstance(pid, tuple)
        and len(pid) == 3
        and pid[0] in SERVER_ROLES
        and isinstance(pid[2], int)
    ):
        return f"node{pid[2]}"
    return None


class AddressBook:
    """Endpoint name → ``(host, port)`` — the cluster's static topology."""

    def __init__(self) -> None:
        self._addresses: Dict[str, Tuple[str, int]] = {}

    def add(self, endpoint: str, host: str, port: int) -> None:
        """Publish ``endpoint`` at ``host:port``."""
        self._addresses[endpoint] = (host, port)

    def remove(self, endpoint: str) -> None:
        """Withdraw an endpoint (e.g. a killed node)."""
        self._addresses.pop(endpoint, None)

    def lookup(self, endpoint: str) -> Optional[Tuple[str, int]]:
        """The address of ``endpoint``, or None if unpublished."""
        return self._addresses.get(endpoint)

    def endpoints(self) -> Tuple[str, ...]:
        """All published endpoint names, sorted."""
        return tuple(sorted(self._addresses))


class _TimerHandle:
    """Port timer handle wrapping ``loop.call_later``."""

    __slots__ = ("_handle", "cancelled", "fired")

    def __init__(self, loop: asyncio.AbstractEventLoop, delay: float, callback):
        self.cancelled = False
        self.fired = False

        def fire() -> None:
            if not self.cancelled:
                self.fired = True
                callback()

        self._handle = loop.call_later(max(0.0, delay), fire)

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class _Peer:
    """One outbound connection to a remote endpoint, opened lazily."""

    def __init__(self) -> None:
        self.writer: Optional[asyncio.StreamWriter] = None
        self.queue: List[bytes] = []
        self.task: Optional[asyncio.Task] = None
        self.dead_until: float = 0.0


class AsyncTransport:
    """The asyncio TCP implementation of the substrate port."""

    def __init__(
        self,
        endpoint: str,
        book: AddressBook,
        faults: Optional[TransportFaults] = None,
        codec: Optional[Codec] = None,
    ) -> None:
        self.endpoint = endpoint
        self.book = book
        self.faults = faults
        #: outbound wire format; inbound frames self-describe, so peers
        #: on different codecs interoperate during a rollout
        self.codec: Codec = codec if codec is not None else JSON_CODEC
        try:
            self.loop = asyncio.get_running_loop()
        except RuntimeError:
            self.loop = asyncio.get_event_loop()
        self.processes: Dict[Hashable, Any] = {}
        self.stats = NetworkStats()
        self.closed = False
        #: called for frames whose dst pid is not registered here —
        #: replica nodes use it for lazy slot creation and control frames
        self.miss_handler: Optional[
            Callable[[Hashable, Hashable, Any], None]
        ] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._peers: Dict[str, _Peer] = {}
        self._routes: Dict[Hashable, asyncio.StreamWriter] = {}
        self._route_labels: Dict[Hashable, str] = {}
        self._reader_tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    # the substrate port
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """The wall clock of the event loop."""
        return self.loop.time()

    def call_later(self, delay: float, callback) -> _TimerHandle:
        """Schedule ``callback`` after ``delay`` seconds of real time."""
        return _TimerHandle(self.loop, delay, callback)

    def timer_scale(self, pid: Hashable) -> float:
        """Port conformance: the TCP runtime's timers tick honestly
        (time gray failures are a simulator-side injection; the real
        stack's gray failure is the slow-node frame hold)."""
        return 1.0

    def local_now(self, pid: Hashable) -> float:
        """Port conformance: no skew — every role reads the loop clock."""
        return self.now

    def register(self, process) -> Any:
        """Host a protocol role on this endpoint."""
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        process.attach(self)
        return process

    def unregister(self, pid: Hashable) -> None:
        """Drop a finished role; late frames to it count as dropped."""
        self.processes.pop(pid, None)

    def _route_of(self, dst: Hashable) -> Optional[asyncio.StreamWriter]:
        writer = self._routes.get(dst)
        if writer is not None and writer.is_closing():
            del self._routes[dst]
            return None
        return writer

    def send(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Route one protocol message (fire-and-forget, may be lost).

        Resolution order: a pid hosted here delivers locally (through the
        codec, skipping the socket); a pid with a learned reply route uses
        that connection; a server-role pid resolves statically to its
        node endpoint; anything else — a remote client pid whose
        connection is gone — is undeliverable and counts as lost.
        """
        if self.closed:
            return
        self.stats.sent += 1
        route = None if dst in self.processes else self._route_of(dst)
        if route is not None:
            dst_ep = self._route_labels.get(dst, "peer")
        else:
            dst_ep = endpoint_of_pid(dst) or self.endpoint
        if dst in self.processes:
            dst_ep = self.endpoint
        link = self.stats.link(self.endpoint, dst_ep)
        link.sent += 1
        if self.faults is not None:
            verdict = self.faults.verdict(self.endpoint, dst_ep)
            if verdict == "cut":
                self.stats.partitioned += 1
                link.partitioned += 1
                return
            if verdict == "lost":
                self.stats.lost += 1
                link.lost += 1
                return
            if self.faults.should_duplicate(self.endpoint, dst_ep):
                # At-least-once delivery gone wrong: forward a second
                # copy of the frame next tick (a retransmit after a
                # lost ack).  Receivers must tolerate it — duplicate
                # decrees fold once through the session-dedup seam.
                self.loop.call_soon(
                    self._forward, src, dst, dst_ep, message
                )
            hold = self.faults.frame_delay(self.endpoint, dst_ep)
            if hold > 0.0:
                # Slow-node gray failure: the frame exists but dawdles.
                # Routes are re-resolved at fire time, so a connection
                # that dies during the hold degrades to loss, exactly
                # as a buffered packet to a dead host would.
                self.loop.call_later(
                    hold, self._forward, src, dst, dst_ep, message
                )
                return
        self._forward(src, dst, dst_ep, message)

    def _forward(self, src: Hashable, dst: Hashable, dst_ep: str, message: Any) -> None:
        """Encode and route one fault-cleared frame (possibly deferred
        by a slow-node hold; see :meth:`send` for resolution order)."""
        if self.closed:
            return
        link = self.stats.link(self.endpoint, dst_ep)
        try:
            frame = self.codec.encode_frame((src, dst, message))
        except FrameError:
            logger.exception("unencodable message from %r to %r", src, dst)
            raise
        if dst in self.processes:
            # Colocated roles: codec round-trip, no socket.
            self.loop.call_soon(self._deliver_frame, frame)
            return
        route = self._route_of(dst)
        if route is not None:
            self._write(route, frame, link)
            return
        if endpoint_of_pid(dst) is None:
            # A remote client pid with no live reply route: on a real
            # network there is nowhere to send this — the peer hung up.
            self.stats.lost += 1
            link.lost += 1
            return
        self._send_to_endpoint(dst_ep, frame, link)

    # ------------------------------------------------------------------
    # outbound plumbing
    # ------------------------------------------------------------------

    def _write(self, writer: asyncio.StreamWriter, frame: bytes, link) -> None:
        try:
            writer.write(frame)
        except (ConnectionError, RuntimeError):
            self.stats.lost += 1
            link.lost += 1

    def _send_to_endpoint(self, dst_ep: str, frame: bytes, link) -> None:
        peer = self._peers.get(dst_ep)
        if peer is None:
            peer = self._peers[dst_ep] = _Peer()
        if peer.writer is not None:
            if peer.writer.is_closing():
                peer.writer = None
                peer.dead_until = self.now + RECONNECT_COOLDOWN
            else:
                self._write(peer.writer, frame, link)
                return
        if peer.task is None or peer.task.done():
            if self.now < peer.dead_until:
                # Known-dead endpoint inside the cooldown: the frame is
                # lost exactly as a packet to a dead host would be.
                self.stats.lost += 1
                link.lost += 1
                return
            peer.task = self.loop.create_task(self._connect(dst_ep, peer))
        peer.queue.append(frame)

    async def _connect(self, dst_ep: str, peer: _Peer) -> None:
        address = self.book.lookup(dst_ep)
        if address is None:
            self._drop_queue(dst_ep, peer)
            return
        try:
            reader, writer = await asyncio.open_connection(*address)
        except OSError:
            peer.dead_until = self.now + RECONNECT_COOLDOWN
            self._drop_queue(dst_ep, peer)
            return
        peer.writer = writer
        pending, peer.queue = peer.queue, []
        link = self.stats.link(self.endpoint, dst_ep)
        for frame in pending:
            self._write(writer, frame, link)
        # Answers may come back over this same connection (the remote
        # endpoint learns reply routes from our src pids).
        self._reader_tasks.append(
            self.loop.create_task(self._read_loop(reader, writer))
        )

    def _drop_queue(self, dst_ep: str, peer: _Peer) -> None:
        link = self.stats.link(self.endpoint, dst_ep)
        for _ in peer.queue:
            self.stats.lost += 1
            link.lost += 1
        peer.queue = []

    # ------------------------------------------------------------------
    # inbound plumbing
    # ------------------------------------------------------------------

    async def start_server(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen for inbound connections; returns the bound address."""
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await self._read_loop(reader, writer)

    async def _read_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        try:
            while not self.closed:
                data = await reader.read(65536)
                if not data:
                    return
                for envelope in decoder.feed(data):
                    self._dispatch(envelope, writer)
        except (ConnectionError, FrameError, asyncio.CancelledError):
            return
        finally:
            self._forget_routes(writer)
            self._forget_peer(writer)

    def _forget_routes(self, writer: asyncio.StreamWriter) -> None:
        stale = [pid for pid, w in self._routes.items() if w is writer]
        for pid in stale:
            del self._routes[pid]
            self._route_labels.pop(pid, None)

    def _forget_peer(self, writer: asyncio.StreamWriter) -> None:
        """Drop a pooled connection whose remote end hung up.

        TCP half-close makes this necessary: a killed node's FIN ends our
        read loop, but the write side of the socket still looks open, so
        without this hook later sends would pour frames into the dead
        connection instead of re-dialing — and a *restarted* node (new
        port in the address book) would stay unreachable until the stale
        writer finally errored.  EOF carries no cooldown; if the endpoint
        is really gone the next dial fails and sets one.
        """
        if not writer.is_closing():
            writer.close()
        for peer in self._peers.values():
            if peer.writer is writer:
                peer.writer = None

    def _dispatch(self, envelope: Any, writer: asyncio.StreamWriter) -> None:
        if not (isinstance(envelope, tuple) and len(envelope) == 3):
            raise FrameError(f"bad envelope: {envelope!r}")
        src, dst, message = envelope
        # Learn the reply route: answers to `src` ride this connection.
        if self._routes.get(src) is not writer:
            self._routes[src] = writer
            peer = writer.get_extra_info("peername")
            self._route_labels[src] = (
                f"{peer[0]}:{peer[1]}" if peer else "peer"
            )
        self._deliver(src, dst, message)

    def _deliver_frame(self, frame: bytes) -> None:
        if self.closed:
            return
        decoder = FrameDecoder()
        for src, dst, message in decoder.feed(frame):
            self._deliver(src, dst, message)

    def _deliver(self, src: Hashable, dst: Hashable, message: Any) -> None:
        process = self.processes.get(dst)
        if process is None:
            if self.miss_handler is not None:
                self.miss_handler(src, dst, message)
            else:
                self.stats.dropped_crashed += 1
            return
        if getattr(process, "crashed", False):
            self.stats.dropped_crashed += 1
            return
        self.stats.delivered += 1
        process.on_message(src, message)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Stop serving, sever every connection, kill pending tasks.

        After ``close`` the endpoint behaves like a crashed host: frames
        addressed to it are lost, and its own ``send`` is a no-op.
        """
        if self.closed:
            return
        self.closed = True
        if self._server is not None:
            self._server.close()
        for task in self._reader_tasks:
            task.cancel()
        for peer in self._peers.values():
            if peer.task is not None:
                peer.task.cancel()
            if peer.writer is not None and not peer.writer.is_closing():
                peer.writer.close()
        self._routes.clear()
        self._route_labels.clear()
        self.book.remove(self.endpoint)
        await asyncio.sleep(0)
