"""The wire codec: length-prefixed JSON frames, tuple-preserving.

Protocol messages are plain Python values — tuples of strings, ints,
floats, ``None`` and nested tuples (pids like ``("acc", 3, 1)``, KV
commands like ``("put", "x", 1, ("seq", ("c0", 4)))``).  JSON alone
cannot carry them: it collapses tuples into lists, and protocol
payloads must round-trip *exactly* (pids are dict keys; sticky Quorum
values are compared with ``==``; the history checker hashes inputs).

The payload encoding therefore tags containers:

========  =======================================
tuple     ``{"t": [items...]}``
list      ``{"l": [items...]}``
dict      ``{"d": [[key, value], ...]}``
scalar    itself (str / int / float / bool / None)
========  =======================================

``decode_payload(encode_payload(x)) == x`` for every value built from
those shapes — the property test in ``tests/test_net_codec.py`` checks
it over randomized payloads and over every concrete message family the
protocols emit.

Framing is a 4-byte big-endian length prefix followed by the UTF-8 JSON
body.  :data:`MAX_FRAME` bounds the body on both sides: the encoder
refuses to emit an oversized frame and the decoder refuses to buffer
one announced by a corrupt or hostile peer (otherwise a single bogus
length prefix could balloon memory).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, List

#: Maximum frame body size in bytes (1 MiB); both sides enforce it.
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")


class FrameError(ValueError):
    """A frame violated the wire protocol (size, JSON, or tagging)."""


def encode_payload(value: Any) -> Any:
    """Rewrite ``value`` into the tagged JSON-safe shape."""
    if isinstance(value, tuple):
        return {"t": [encode_payload(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_payload(v) for v in value]}
    if isinstance(value, dict):
        return {
            "d": [
                [encode_payload(k), encode_payload(v)]
                for k, v in value.items()
            ]
        }
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise FrameError(f"payload not wire-encodable: {value!r}")


def decode_payload(value: Any) -> Any:
    """Invert :func:`encode_payload`."""
    if isinstance(value, dict):
        if len(value) != 1:
            raise FrameError(f"bad container tag: {value!r}")
        tag, items = next(iter(value.items()))
        if tag == "t":
            return tuple(decode_payload(v) for v in items)
        if tag == "l":
            return [decode_payload(v) for v in items]
        if tag == "d":
            return {
                decode_payload(k): decode_payload(v) for k, v in items
            }
        raise FrameError(f"unknown container tag {tag!r}")
    return value


def encode_frame(value: Any) -> bytes:
    """One wire frame: length prefix + compact JSON of the tagged value."""
    body = json.dumps(
        encode_payload(value), separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    if len(body) > MAX_FRAME:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser: feed byte chunks, iterate messages.

    TCP gives a byte stream, not frames — a read may split a frame or
    glue several.  The decoder buffers across ``feed`` calls and yields
    each completed frame's decoded payload.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[Any]:
        """Consume ``data``; yield every message completed by it."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise FrameError(
                    f"peer announced a {length}-byte frame "
                    f"(MAX_FRAME={MAX_FRAME})"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_LEN.size:end])
            del self._buffer[:end]
            try:
                raw = json.loads(body)
            except json.JSONDecodeError as exc:
                raise FrameError(f"frame body is not JSON: {exc}") from exc
            yield decode_payload(raw)

    def feed_all(self, data: bytes) -> List[Any]:
        """Eager convenience wrapper around :meth:`feed`."""
        return list(self.feed(data))
