"""The wire codec: length-prefixed frames, tuple-preserving.

Protocol messages are plain Python values — tuples of strings, ints,
floats, ``None`` and nested tuples (pids like ``("acc", 3, 1)``, KV
commands like ``("put", "x", 1, ("seq", ("c0", 4)))``).  JSON alone
cannot carry them: it collapses tuples into lists, and protocol
payloads must round-trip *exactly* (pids are dict keys; sticky Quorum
values are compared with ``==``; the history checker hashes inputs).

Two codecs implement the same contract and are selectable per cluster:

* the **JSON codec** (the seed format, and the fallback) tags
  containers so tuples survive the trip:

  ========  =======================================
  tuple     ``{"t": [items...]}``
  list      ``{"l": [items...]}``
  dict      ``{"d": [[key, value], ...]}``
  scalar    itself (str / int / float / bool / None)
  ========  =======================================

* the **binary codec** struct-packs the same value space with one tag
  byte per value (``N``/``T``/``F``/``i``/``I``/``f``/``s``/
  ``t``/``l``/``d``) — no quoting, no base-10 round trips, roughly
  2-3x smaller and cheaper to encode on the replication hot path.
  Binary bodies open with :data:`BINARY_MAGIC`, a byte no JSON body
  can start with, so a single :class:`FrameDecoder` handles either
  format on the wire and mixed configurations degrade gracefully.

``decode(encode(x)) == x`` for every value built from those shapes,
*and* the two codecs agree value-for-value — the parity property tests
in ``tests/test_net_codec.py`` check both over randomized payloads and
over every concrete message family the protocols emit.

Framing is a 4-byte big-endian length prefix followed by the body.
:data:`MAX_FRAME` bounds the body on both sides: the encoder refuses to
emit an oversized frame (the typed :exc:`FrameTooLarge`, which the
batching coordinator catches to split a decree batch) and the decoder
refuses to buffer one announced by a corrupt or hostile peer (otherwise
a single bogus length prefix could balloon memory).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, List, Union

#: Maximum frame body size in bytes (1 MiB); both sides enforce it.
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")

#: first byte of every binary-codec body; JSON bodies are ASCII, so the
#: decoder dispatches on it without out-of-band configuration
BINARY_MAGIC = 0xB1


class FrameError(ValueError):
    """A frame violated the wire protocol (size, encoding, or tagging)."""


class FrameTooLarge(FrameError):
    """An encoded frame body would exceed :data:`MAX_FRAME`.

    Typed separately so the batching coordinator can split an oversized
    decree batch and retry, and so a client can surface a single
    too-large operation as a per-op error — never a torn connection.
    """


def encode_payload(value: Any) -> Any:
    """Rewrite ``value`` into the tagged JSON-safe shape."""
    if isinstance(value, tuple):
        return {"t": [encode_payload(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_payload(v) for v in value]}
    if isinstance(value, dict):
        return {
            "d": [
                [encode_payload(k), encode_payload(v)]
                for k, v in value.items()
            ]
        }
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise FrameError(f"payload not wire-encodable: {value!r}")


def decode_payload(value: Any) -> Any:
    """Invert :func:`encode_payload`."""
    if isinstance(value, dict):
        if len(value) != 1:
            raise FrameError(f"bad container tag: {value!r}")
        tag, items = next(iter(value.items()))
        if tag == "t":
            return tuple(decode_payload(v) for v in items)
        if tag == "l":
            return [decode_payload(v) for v in items]
        if tag == "d":
            return {
                decode_payload(k): decode_payload(v) for k, v in items
            }
        raise FrameError(f"unknown container tag {tag!r}")
    return value


_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _binary_encode(value: Any, out: bytearray) -> None:
    # bool first: bool subclasses int and must not pack as one
    if value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif value is None:
        out += b"N"
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out += b"i"
            out += _I64.pack(value)
        else:
            # arbitrary-precision escape hatch: decimal digits as bytes
            digits = str(value).encode("ascii")
            out += b"I"
            out += _U32.pack(len(digits))
            out += digits
    elif isinstance(value, float):
        out += b"f"
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s"
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, tuple):
        out += b"t"
        out += _U32.pack(len(value))
        for item in value:
            _binary_encode(item, out)
    elif isinstance(value, list):
        out += b"l"
        out += _U32.pack(len(value))
        for item in value:
            _binary_encode(item, out)
    elif isinstance(value, dict):
        out += b"d"
        out += _U32.pack(len(value))
        for key, val in value.items():
            _binary_encode(key, out)
            _binary_encode(val, out)
    else:
        raise FrameError(f"payload not wire-encodable: {value!r}")


class _BinaryReader:
    __slots__ = ("_body", "_pos")

    def __init__(self, body: bytes) -> None:
        self._body = body
        self._pos = 0

    def _take(self, n: int) -> bytes:
        end = self._pos + n
        if end > len(self._body):
            raise FrameError("binary frame body truncated")
        chunk = self._body[self._pos:end]
        self._pos = end
        return chunk

    def read_value(self) -> Any:
        tag = self._take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return _I64.unpack(self._take(_I64.size))[0]
        if tag == b"I":
            (size,) = _U32.unpack(self._take(_U32.size))
            return int(self._take(size).decode("ascii"))
        if tag == b"f":
            return _F64.unpack(self._take(_F64.size))[0]
        if tag == b"s":
            (size,) = _U32.unpack(self._take(_U32.size))
            return self._take(size).decode("utf-8")
        if tag == b"t":
            (count,) = _U32.unpack(self._take(_U32.size))
            return tuple(self.read_value() for _ in range(count))
        if tag == b"l":
            (count,) = _U32.unpack(self._take(_U32.size))
            return [self.read_value() for _ in range(count)]
        if tag == b"d":
            (count,) = _U32.unpack(self._take(_U32.size))
            return {self.read_value(): self.read_value() for _ in range(count)}
        raise FrameError(f"unknown binary tag {tag!r}")

    def finish(self) -> None:
        if self._pos != len(self._body):
            raise FrameError(
                f"binary frame has {len(self._body) - self._pos} "
                "trailing bytes"
            )


def _decode_body(body: bytes) -> Any:
    """Decode one frame body, dispatching on the magic byte."""
    if body[:1] == bytes([BINARY_MAGIC]):
        reader = _BinaryReader(body[1:])
        value = reader.read_value()
        reader.finish()
        return value
    try:
        raw = json.loads(body)
    except json.JSONDecodeError as exc:
        raise FrameError(f"frame body is not JSON: {exc}") from exc
    return decode_payload(raw)


def _frame(body: Union[bytes, bytearray]) -> bytes:
    if len(body) > MAX_FRAME:
        raise FrameTooLarge(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _LEN.pack(len(body)) + bytes(body)


class JsonCodec:
    """The seed wire format: compact tagged JSON bodies."""

    name = "json"

    def encode_frame(self, value: Any) -> bytes:
        body = json.dumps(
            encode_payload(value), separators=(",", ":"), ensure_ascii=True
        ).encode("ascii")
        return _frame(body)


class BinaryCodec:
    """Struct-packed bodies, one tag byte per value, magic-prefixed."""

    name = "binary"

    def encode_frame(self, value: Any) -> bytes:
        body = bytearray([BINARY_MAGIC])
        _binary_encode(value, body)
        return _frame(body)


JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()

_CODECS = {"json": JSON_CODEC, "binary": BINARY_CODEC}


def get_codec(name: str) -> Union[JsonCodec, BinaryCodec]:
    """Look up a codec by cluster-config name (``json`` / ``binary``)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise FrameError(f"unknown codec {name!r}") from None


def encode_frame(value: Any) -> bytes:
    """One wire frame in the default (JSON) format.

    Module-level convenience kept for the seed call sites; transports
    that negotiate a codec call ``codec.encode_frame`` instead.
    """
    return JSON_CODEC.encode_frame(value)


class FrameDecoder:
    """Incremental frame parser: feed byte chunks, iterate messages.

    TCP gives a byte stream, not frames — a read may split a frame or
    glue several.  The decoder buffers across ``feed`` calls and yields
    each completed frame's decoded payload.  Each body self-describes
    its format (binary bodies start with :data:`BINARY_MAGIC`), so one
    decoder accepts frames from peers on either codec.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[Any]:
        """Consume ``data``; yield every message completed by it."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise FrameError(
                    f"peer announced a {length}-byte frame "
                    f"(MAX_FRAME={MAX_FRAME})"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_LEN.size:end])
            del self._buffer[:end]
            yield _decode_body(body)

    def feed_all(self, data: bytes) -> List[Any]:
        """Eager convenience wrapper around :meth:`feed`."""
        return list(self.feed(data))


Codec = Union[JsonCodec, BinaryCodec]

__all__ = [
    "BINARY_CODEC",
    "BINARY_MAGIC",
    "BinaryCodec",
    "Codec",
    "FrameDecoder",
    "FrameError",
    "FrameTooLarge",
    "JSON_CODEC",
    "JsonCodec",
    "MAX_FRAME",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "get_codec",
]
