"""The closed-loop load generator for the networked deployment.

``run_loadgen`` boots a :class:`~repro.net.cluster.LocalCluster`, runs
``clients`` sequential closed-loop clients (each issues its next KV
command only after the previous one committed — the paper's client
model), and at the end feeds the wire-level recorded history through
:func:`repro.core.fastcheck.check_linearizable`.  The run's verdict is
therefore not "it didn't crash" but the actual correctness property the
paper proves: the history observed over real sockets is linearizable
with respect to the KV ADT.

Op streams are derived from a seed (per-client ``random.Random`` seeded
with a string, which CPython hashes deterministically), so two runs
issue identical command sequences; wall-clock interleaving stays real,
which is the point of the exercise.

``kill`` optionally crashes one replica after a fraction of the ops has
committed — the resilience demonstration: with one of three replicas
dead Quorum unanimity is impossible, every subsequent slot decides
through the Backup path, and the history must *still* check out.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.fastcheck import check_linearizable
from ..monitor import MonitorReport, MonitorTap, StreamingMonitor, compose_verdicts
from ..smr.universal import UniversalFrontend, kv_store_adt
from .client import HistoryRecorder, NetClient, OperationTimeout
from .cluster import LocalCluster, ShardedCluster, shard_of
from .overload import Overloaded
from .pipeline import PipelineClient, SlotPipeline

#: keys the generated workload touches; small enough to create real
#: slot contention, large enough for the P-compositional checker to
#: have parts to split
DEFAULT_KEYS = ("alpha", "beta", "gamma", "delta", "epsilon")

#: per-event search budget for the online monitor — generous for the
#: loadgen's concurrency, but bounded so a pathological window degrades
#: the verdict to "unknown" instead of stalling the data plane
MONITOR_NODE_LIMIT = 200_000

#: cap on surviving frontier configurations per key (same degradation).
#: Speculation is combinatorial in the *open window*: k concurrent
#: writers on one key can transiently hold a promise set per
#: linearization order, so the cap must dominate the closed-loop
#: client count's worst case (16 clients on one hot key blows 4096)
#: while still bounding a truly pathological frontier.
MONITOR_CONFIG_LIMIT = 65_536


@dataclass
class LoadReport:
    """What a loadgen run did, and whether its history is linearizable."""

    replicas: int
    clients: int
    ops_requested: int
    committed: int
    pending: int
    fast: int
    slow: int
    duration: float
    latencies: List[float] = field(default_factory=list)
    verdict: str = "unknown"
    strategy: str = ""
    reason: Optional[str] = None
    killed: Optional[int] = None
    successors: int = 0
    #: retry/hedge/overload accounting (exactly-once client sessions):
    #: attempts re-submitted under the same op identity, duplicate
    #: hedge enqueues, and ops shed pre-invocation by admission control
    retries: int = 0
    hedges: int = 0
    shed: int = 0
    endpoint_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: data-plane configuration (defaults describe the seed path)
    shards: int = 1
    pipelined: bool = False
    window: Optional[int] = None
    batch: Optional[int] = None
    codec: Optional[str] = None
    #: per-shard linearizability verdicts, shard order (pipelined runs)
    shard_verdicts: List[str] = field(default_factory=list)
    #: decrees proposed / ops they carried, summed over shards
    decrees: int = 0
    batched_ops: int = 0
    #: online streaming monitor (see repro.monitor), when enabled
    monitored: bool = False
    monitor_verdict: Optional[str] = None
    monitor_reason: Optional[str] = None
    monitor_events: int = 0
    monitor_peak_retained: int = 0
    monitor_gc_drops: int = 0
    monitor_shard_verdicts: List[str] = field(default_factory=list)
    monitor_witness: Optional[Dict[str, Any]] = None

    @property
    def linearizable(self) -> bool:
        return self.verdict == "linearizable"

    @property
    def throughput(self) -> float:
        """Committed operations per wall-clock second."""
        return self.committed / self.duration if self.duration else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The q-quantile (0..1) of commit latency, None with no data."""
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> str:
        """Human-readable multi-line account of the run."""
        lines = [
            f"loadgen: {self.replicas} replicas, {self.clients} clients, "
            f"{self.committed}/{self.ops_requested} ops committed "
            f"({self.pending} pending) in {self.duration:.2f}s "
            f"({self.throughput:.1f} op/s)",
            f"  paths: fast={self.fast} slow={self.slow}",
        ]
        p50, p95 = self.percentile(0.50), self.percentile(0.95)
        if p50 is not None:
            lines.append(
                f"  latency: p50={p50 * 1000:.1f}ms p95={p95 * 1000:.1f}ms"
            )
        if self.killed is not None:
            lines.append(f"  killed: node{self.killed} mid-run")
        if self.successors:
            lines.append(
                f"  timeouts: {self.successors} op(s) left pending; "
                f"load continued under successor client ids"
            )
        if self.retries or self.hedges or self.shed:
            lines.append(
                f"  sessions: {self.retries} retried attempt(s), "
                f"{self.hedges} hedge(s), {self.shed} op(s) shed "
                f"pre-invocation"
            )
        if self.pipelined:
            avg = self.batched_ops / self.decrees if self.decrees else 0.0
            lines.append(
                f"  data plane: {self.shards} shard(s), window={self.window} "
                f"batch<={self.batch} codec={self.codec or 'json'}; "
                f"{self.decrees} decrees, {avg:.1f} ops/decree"
            )
        if self.monitored:
            monitor_line = (
                f"  monitor: {self.monitor_verdict} (live) -- "
                f"{self.monitor_events} events, peak retained "
                f"{self.monitor_peak_retained}, gc'd {self.monitor_gc_drops}"
            )
            if self.monitor_reason:
                monitor_line += f"; {self.monitor_reason}"
            if self.monitor_shard_verdicts:
                monitor_line += (
                    f" [shards: {', '.join(self.monitor_shard_verdicts)}]"
                )
            lines.append(monitor_line)
        verdict = f"  history: {self.verdict}"
        if self.strategy:
            verdict += f" ({self.strategy})"
        if self.reason:
            verdict += f" -- {self.reason}"
        if self.shard_verdicts:
            verdict += f" [shards: {', '.join(self.shard_verdicts)}]"
        lines.append(verdict)
        return "\n".join(lines)

    def to_jsonable(self) -> Dict[str, Any]:
        """The report as a JSON-artifact-friendly dict."""
        return {
            "replicas": self.replicas,
            "clients": self.clients,
            "ops_requested": self.ops_requested,
            "committed": self.committed,
            "pending": self.pending,
            "fast": self.fast,
            "slow": self.slow,
            "duration": self.duration,
            "throughput": self.throughput,
            "latency_p50": self.percentile(0.50),
            "latency_p95": self.percentile(0.95),
            "verdict": self.verdict,
            "strategy": self.strategy,
            "reason": self.reason,
            "latency_p99": self.percentile(0.99),
            "killed": self.killed,
            "successors": self.successors,
            "retries": self.retries,
            "hedges": self.hedges,
            "shed": self.shed,
            "endpoint_stats": self.endpoint_stats,
            "shards": self.shards,
            "pipelined": self.pipelined,
            "window": self.window,
            "batch": self.batch,
            "codec": self.codec,
            "shard_verdicts": self.shard_verdicts,
            "decrees": self.decrees,
            "batched_ops": self.batched_ops,
            "monitored": self.monitored,
            "monitor_verdict": self.monitor_verdict,
            "monitor_reason": self.monitor_reason,
            "monitor_events": self.monitor_events,
            "monitor_peak_retained": self.monitor_peak_retained,
            "monitor_gc_drops": self.monitor_gc_drops,
            "monitor_shard_verdicts": self.monitor_shard_verdicts,
            "monitor_witness": self.monitor_witness,
        }


def _command_stream(rng: random.Random, keys: Tuple[str, ...]):
    """An endless seeded stream of KV commands (put-heavy mix)."""
    counter = 0
    while True:
        key = rng.choice(keys)
        roll = rng.random()
        if roll < 0.50:
            counter += 1
            yield ("put", key, counter)
        elif roll < 0.85:
            yield ("get", key)
        else:
            yield ("delete", key)


async def _run(
    replicas: int,
    clients: int,
    ops: int,
    seed: int,
    kill: Optional[int],
    kill_after: float,
    op_timeout: float,
    quorum_timeout: float,
    keys: Tuple[str, ...],
    wal_root: Optional[str],
    monitor: bool,
    emit,
) -> Tuple[LoadReport, HistoryRecorder]:
    cluster = LocalCluster(n_servers=replicas, wal_root=wal_root)
    await cluster.start()
    transport = cluster.client_transport("clients")
    tap: Optional[MonitorTap] = None
    if monitor:
        tap = MonitorTap(
            StreamingMonitor(
                kv_store_adt(),
                node_limit=MONITOR_NODE_LIMIT,
                config_limit=MONITOR_CONFIG_LIMIT,
            )
        )
    recorder = HistoryRecorder(clock=lambda: transport.now, tap=tap)
    frontend = UniversalFrontend(kv_store_adt())
    shared_log: Dict[int, Any] = {}
    committed = [0]
    successors = [0]
    killed = [False]
    kill_threshold = max(1, int(ops * kill_after)) if kill is not None else None

    net_clients = [
        NetClient(
            f"c{i}",
            replicas,
            transport,
            shared_log,
            recorder,
            frontend,
            quorum_timeout=quorum_timeout,
            op_timeout=op_timeout,
        )
        for i in range(clients)
    ]
    #: every client incarnation that ran, successors included
    all_clients = list(net_clients)

    per_client = [ops // clients] * clients
    for i in range(ops % clients):
        per_client[i] += 1

    async def drive(index: int) -> None:
        client = net_clients[index]
        stream = _command_stream(
            random.Random(f"loadgen:{seed}:{index}"), keys
        )
        for _ in range(per_client[index]):
            if tap is not None and tap.violated:
                # fail fast: a violated prefix never becomes
                # linearizable again, so further load is wasted work
                return
            command = next(stream)
            try:
                await client.submit(command)
            except OperationTimeout:
                # The op stays pending and this client id is poisoned;
                # keep the load flowing under a fresh id (Jepsen-style)
                # instead of stalling for the rest of the run.
                successors[0] += 1
                emit(
                    f"  {client.name}: op timed out, left pending; "
                    f"continuing as successor"
                )
                client = client.successor()
                all_clients.append(client)
                continue
            committed[0] += 1
            if (
                kill_threshold is not None
                and not killed[0]
                and committed[0] >= kill_threshold
            ):
                killed[0] = True
                emit(f"  killing node{kill} after {committed[0]} commits")
                await cluster.kill(kill)

    start = transport.now
    await asyncio.gather(*(drive(i) for i in range(clients)))
    duration = transport.now - start

    monitor_report: Optional[MonitorReport] = None
    if tap is not None:
        monitor_report = await tap.close()
        if monitor_report.verdict == "violation":
            emit(f"  {monitor_report.summary()}")

    endpoint_stats = {}
    for node in cluster.nodes:
        s = node.transport.stats
        endpoint_stats[node.endpoint] = {
            "sent": s.sent,
            "delivered": s.delivered,
            "lost": s.lost,
        }
    s = transport.stats
    endpoint_stats[transport.endpoint] = {
        "sent": s.sent,
        "delivered": s.delivered,
        "lost": s.lost,
    }
    await cluster.stop()

    trace = recorder.trace()
    check = check_linearizable(trace, kv_store_adt())
    if check.unknown:
        verdict, reason = "unknown", check.result.reason
    elif check.ok:
        verdict, reason = "linearizable", None
    else:
        verdict, reason = "violation", check.result.reason

    results = [r for c in all_clients for r in c.results]
    report = LoadReport(
        replicas=replicas,
        clients=clients,
        ops_requested=ops,
        committed=committed[0],
        pending=len(recorder.pending_clients()),
        fast=sum(1 for r in results if r.path == "fast"),
        slow=sum(1 for r in results if r.path == "slow"),
        duration=duration,
        latencies=[r.latency for r in results],
        verdict=verdict,
        strategy=check.strategy,
        reason=reason,
        killed=kill if killed[0] else None,
        successors=successors[0],
        retries=sum(c.retries for c in all_clients),
        hedges=sum(c.hedges for c in all_clients),
        endpoint_stats=endpoint_stats,
    )
    if monitor_report is not None:
        report.monitored = True
        report.monitor_verdict = monitor_report.verdict
        report.monitor_reason = monitor_report.reason
        report.monitor_events = monitor_report.events
        report.monitor_peak_retained = monitor_report.peak_retained
        report.monitor_gc_drops = monitor_report.gc_drops
        report.monitor_witness = monitor_report.witness
    return report, recorder


async def _run_pipelined(
    replicas: int,
    clients: int,
    ops: int,
    seed: int,
    kill: Optional[int],
    kill_after: float,
    op_timeout: float,
    quorum_timeout: float,
    keys: Tuple[str, ...],
    wal_root: Optional[str],
    shards: int,
    window: int,
    batch: int,
    codec: Optional[str],
    group_commit: bool,
    check: bool,
    monitor: bool,
    emit,
) -> Tuple[LoadReport, List[HistoryRecorder]]:
    """The high-volume data plane: sharded clusters, one batching
    :class:`SlotPipeline` per shard, logical clients routed by key.

    Commands route to ``shard_of(key, shards)`` — the same key the KV
    ADT's :class:`~repro.core.adt.PartitionSpec` partitions traces by —
    so each shard records a complete history over a disjoint key set
    and is checked independently; the run's verdict is the conjunction
    (P-compositionality shard-locally, composition across shards).
    """
    sharded = ShardedCluster(
        n_shards=shards,
        n_servers=replicas,
        wal_root=wal_root,
        codec=codec,
        group_commit=group_commit,
    )
    await sharded.start()
    transports = sharded.client_transports("clients")
    taps: List[Optional[MonitorTap]] = [
        MonitorTap(
            StreamingMonitor(
                kv_store_adt(),
                node_limit=MONITOR_NODE_LIMIT,
                config_limit=MONITOR_CONFIG_LIMIT,
            )
        )
        if monitor
        else None
        for _ in range(shards)
    ]
    recorders = [
        HistoryRecorder(
            clock=(lambda t: (lambda: t.now))(transport), tap=taps[s]
        )
        for s, transport in enumerate(transports)
    ]
    pipelines = [
        SlotPipeline(
            f"shard{s}",
            replicas,
            transports[s],
            window=window,
            max_batch=batch,
            quorum_timeout=quorum_timeout,
        )
        for s in range(shards)
    ]
    committed = [0]
    successors = [0]
    killed = [False]
    kill_threshold = max(1, int(ops * kill_after)) if kill is not None else None
    all_clients: List[PipelineClient] = []

    def make_routed(index: int) -> Dict[int, PipelineClient]:
        routed = {}
        for s in range(shards):
            client = PipelineClient(
                f"c{index}",
                pipelines[s],
                recorders[s],
                op_timeout=op_timeout,
            )
            routed[s] = client
            all_clients.append(client)
        return routed

    per_client = [ops // clients] * clients
    for i in range(ops % clients):
        per_client[i] += 1

    async def drive(index: int) -> None:
        routed = make_routed(index)
        stream = _command_stream(
            random.Random(f"loadgen:{seed}:{index}"), keys
        )
        for _ in range(per_client[index]):
            if monitor and any(
                tap is not None and tap.violated for tap in taps
            ):
                # fail fast (prefix closure: the verdict cannot recover)
                return
            command = next(stream)
            target = shard_of(command[1], shards)
            try:
                await routed[target].submit(command)
            except Overloaded:
                # shed pre-invocation: no history entry, the identity
                # is NOT poisoned — drop the op and keep the load going
                # (the pipeline's own counter carries the tally)
                continue
            except OperationTimeout:
                # fate-unknown: the identity is poisoned everywhere (a
                # sequential client must not continue), successors keep
                # the load flowing under fresh ids (Jepsen-style)
                successors[0] += 1
                emit(
                    f"  c{index}: op timed out on shard{target}, left "
                    f"pending; continuing as successor"
                )
                routed = {
                    s: client.successor() for s, client in routed.items()
                }
                all_clients.extend(routed.values())
                continue
            committed[0] += 1
            if (
                kill_threshold is not None
                and not killed[0]
                and committed[0] >= kill_threshold
            ):
                # kill the same node index in every shard: each replica
                # group loses one of its replicas, the Backup path takes
                # over shard-wide
                killed[0] = True
                emit(
                    f"  killing node{kill} in all {shards} shard(s) "
                    f"after {committed[0]} commits"
                )
                for shard in sharded.shards:
                    await shard.kill(kill)

    start = transports[0].now
    await asyncio.gather(*(drive(i) for i in range(clients)))
    duration = transports[0].now - start

    monitor_reports: List[MonitorReport] = []
    if monitor:
        for tap in taps:
            assert tap is not None
            monitor_reports.append(await tap.close())
        for item in monitor_reports:
            if item.verdict == "violation":
                emit(f"  {item.summary()}")

    endpoint_stats = {}
    for s, shard in enumerate(sharded.shards):
        for node in shard.nodes:
            st = node.transport.stats
            endpoint_stats[f"shard{s}/{node.endpoint}"] = {
                "sent": st.sent,
                "delivered": st.delivered,
                "lost": st.lost,
            }
    await sharded.stop()

    shard_verdicts: List[str] = []
    verdict, strategy, reason = "skipped", "", None
    if check:
        verdict, strategy, reason = "linearizable", "", None
        for s, recorder in enumerate(recorders):
            result = check_linearizable(recorder.trace(), kv_store_adt())
            if result.unknown:
                shard_verdicts.append("unknown")
                if verdict == "linearizable":
                    verdict, reason = "unknown", result.result.reason
            elif result.ok:
                shard_verdicts.append("linearizable")
            else:
                shard_verdicts.append("violation")
                verdict, reason = "violation", result.result.reason
            strategy = strategy or result.strategy

    results = [r for c in all_clients for r in c.results]
    report = LoadReport(
        replicas=replicas,
        clients=clients,
        ops_requested=ops,
        committed=committed[0],
        pending=sum(len(r.pending_clients()) for r in recorders),
        fast=sum(1 for r in results if r.path == "fast"),
        slow=sum(1 for r in results if r.path == "slow"),
        duration=duration,
        latencies=[r.latency for r in results],
        verdict=verdict,
        strategy=strategy,
        reason=reason,
        killed=kill if killed[0] else None,
        successors=successors[0],
        retries=sum(c.retries for c in all_clients),
        hedges=sum(c.hedges for c in all_clients),
        shed=sum(p.shed for p in pipelines),
        endpoint_stats=endpoint_stats,
        shards=shards,
        pipelined=True,
        window=window,
        batch=batch,
        codec=codec,
        shard_verdicts=shard_verdicts,
        decrees=sum(p.decrees for p in pipelines),
        batched_ops=sum(p.batched_ops for p in pipelines),
    )
    if monitor_reports:
        composed, composed_reason = compose_verdicts(monitor_reports)
        report.monitored = True
        report.monitor_verdict = composed
        report.monitor_reason = composed_reason
        report.monitor_events = sum(r.events for r in monitor_reports)
        report.monitor_peak_retained = max(
            r.peak_retained for r in monitor_reports
        )
        report.monitor_gc_drops = sum(r.gc_drops for r in monitor_reports)
        report.monitor_shard_verdicts = [
            r.verdict for r in monitor_reports
        ]
        for item in monitor_reports:
            if item.witness is not None:
                report.monitor_witness = item.witness
                break
    return report, recorders


def run_loadgen(
    replicas: int = 3,
    clients: int = 8,
    ops: int = 200,
    seed: int = 0,
    kill: Optional[int] = None,
    kill_after: float = 0.25,
    op_timeout: float = 5.0,
    quorum_timeout: float = 0.15,
    keys: Tuple[str, ...] = DEFAULT_KEYS,
    wal_root: Optional[str] = None,
    artifact: Optional[str] = None,
    shards: int = 1,
    pipeline: bool = False,
    window: int = 8,
    batch: int = 16,
    codec: Optional[str] = None,
    group_commit: bool = False,
    check: bool = True,
    monitor: bool = False,
    emit=print,
) -> LoadReport:
    """Run a full closed-loop load against a fresh localhost cluster.

    Returns the :class:`LoadReport`; with ``artifact`` set, also writes a
    JSON file carrying the run configuration, the report and the raw
    wire-level history (the CI smoke job uploads it).  With ``wal_root``
    set the replicas persist their durable state under that directory
    (see :class:`~repro.net.wal.NodeWAL`).

    ``pipeline=True`` (implied by ``shards > 1``) switches to the
    high-throughput data plane — per-shard batching
    :class:`~repro.net.pipeline.SlotPipeline` proposers with ``window``
    in-flight decrees and up to ``batch`` ops per decree, optional
    ``codec="binary"`` frames and WAL ``group_commit`` — with every
    shard's history checked independently (``check=False`` skips the
    verdict for pure benchmarking).

    ``monitor=True`` additionally streams every recorded event through
    an online :class:`~repro.monitor.StreamingMonitor` (one per shard,
    composed verdict) *while the run is in flight*: clients stop
    issuing load the moment the live verdict flips to violation, and
    the report carries the monitor's verdict, its retained-event peak
    (the GC bound) and the shrunken witness.  The post-hoc check still
    runs (unless ``check=False``) — the property test guarantees the
    two verdicts agree, so ``monitor`` without ``check`` is the
    bounded-memory configuration for unbounded runs.
    """
    if shards > 1:
        pipeline = True
    if pipeline:
        report, recorders = asyncio.run(
            _run_pipelined(
                replicas=replicas,
                clients=clients,
                ops=ops,
                seed=seed,
                kill=kill,
                kill_after=kill_after,
                op_timeout=op_timeout,
                quorum_timeout=quorum_timeout,
                keys=keys,
                wal_root=wal_root,
                shards=shards,
                window=window,
                batch=batch,
                codec=codec,
                group_commit=group_commit,
                check=check,
                monitor=monitor,
                emit=emit,
            )
        )
        history: Any = [r.to_jsonable() for r in recorders]
    else:
        report, recorder = asyncio.run(
            _run(
                replicas=replicas,
                clients=clients,
                ops=ops,
                seed=seed,
                kill=kill,
                kill_after=kill_after,
                op_timeout=op_timeout,
                quorum_timeout=quorum_timeout,
                keys=keys,
                wal_root=wal_root,
                monitor=monitor,
                emit=emit,
            )
        )
        history = recorder.to_jsonable()
    if artifact:
        payload = {
            "config": {
                "replicas": replicas,
                "clients": clients,
                "ops": ops,
                "seed": seed,
                "kill": kill,
                "kill_after": kill_after,
                "wal_root": wal_root,
                "shards": shards,
                "pipeline": pipeline,
                "window": window if pipeline else None,
                "batch": batch if pipeline else None,
                "codec": codec,
                "group_commit": group_commit,
                "monitor": monitor,
            },
            "report": report.to_jsonable(),
            "history": history,
        }
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=repr)
        emit(f"  artifact written to {artifact}")
    return report
