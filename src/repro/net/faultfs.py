"""Injectable filesystem seam under the write-ahead log.

:class:`~repro.net.wal.WriteAheadLog` never touches ``os``/``open``
directly any more: every durability-relevant operation — creating the
directory, reading the log back, appending a frame, fsync, truncate,
the snapshot tmp-write/rename dance — goes through a :class:`FaultFS`.
The default implementation is a transparent passthrough to the real
filesystem; :class:`FaultyFS` is the nemesis-side implementation that
injects the storage gray failures the paper's fail-stop model sweeps
under the rug:

* **torn write** — an append persists only a seeded strict prefix of
  its bytes and the process "dies" at that instant
  (:exc:`TornWriteCrash`; the filesystem stays dead afterwards, so a
  buggy caller cannot ack the lost record);
* **ENOSPC** — a bounded run of appends fails with ``errno.ENOSPC``,
  optionally after a partial write, then space comes back;
* **bit rot** — replay reads come back with one seeded bit flipped
  inside a record *body*, which the WAL must answer by fail-stopping,
  never by serving the corrupted fold;
* **lying fsync** — ``fsync`` returns success without making anything
  durable; :meth:`FaultyFS.drop_unsynced` then simulates the power cut
  that exposes the lie.

The module-level helpers :func:`tear_tail` and :func:`flip_record_body`
mutate a WAL file *at rest* (between a kill and a restart) and are what
the live-cluster nemesis actions in :mod:`repro.faults.netcampaign`
use.
"""

from __future__ import annotations

import errno
import os
import random
import struct
from typing import Any, Dict, Optional

#: mirror of the WAL's record header (length u32, crc32 u32); kept here
#: so the at-rest mutators can walk frames without importing wal.py
_HEADER = struct.Struct(">II")


class TornWriteCrash(Exception):
    """A write tore mid-frame and the process died with it.

    Deliberately *not* an ``OSError``: the WAL's ENOSPC handling must
    not catch this — a torn write means there is no process left to
    roll back or retry, so the exception unwinds the whole node.
    """


class LogHandle:
    """An open append handle plus the path it belongs to.

    Carrying the path lets a :class:`FaultyFS` key per-file state (the
    durable high-water mark for lying fsync) off the handle alone.
    """

    def __init__(self, file: Any, path: str) -> None:
        self.file = file
        self.path = path

    @property
    def closed(self) -> bool:
        return self.file.closed


class FaultFS:
    """Transparent passthrough filesystem — the production seam.

    Subclasses override individual hooks to inject faults; the base
    class is exactly what ``os``/``open`` would have done.
    """

    # -- directory / whole-file ops ------------------------------------

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def read_bytes(self, path: str) -> bytes:
        """Read a whole file (replay path). Raises OSError if absent."""
        with open(path, "rb") as handle:
            return handle.read()

    def read_text(self, path: str) -> str:
        with open(path, "r", encoding="ascii") as handle:
            return handle.read()

    def write_text(self, path: str, text: str, fsync: bool = True) -> None:
        """Write a whole text file, optionally fsync'd (snapshot tmp)."""
        with open(path, "w", encoding="ascii") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                self._fsync_file(handle, path)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: str) -> None:
        """Persist directory metadata (the rename), best effort."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- append-log handle ops -----------------------------------------

    def open_append(self, path: str) -> LogHandle:
        # a+b creates the file if missing; O_APPEND writes always land
        # at the (possibly just truncated) end of file
        return LogHandle(open(path, "a+b"), path)

    def append(self, handle: LogHandle, data: bytes) -> None:
        handle.file.write(data)
        handle.file.flush()

    def fsync(self, handle: LogHandle) -> None:
        self._fsync_file(handle.file, handle.path)

    def truncate(self, handle: LogHandle, size: int) -> None:
        handle.file.truncate(size)
        handle.file.flush()

    def close(self, handle: LogHandle) -> None:
        if not handle.file.closed:
            handle.file.close()

    # -- internals ------------------------------------------------------

    def _fsync_file(self, file: Any, path: str) -> None:
        os.fsync(file.fileno())


class FaultyFS(FaultFS):
    """A :class:`FaultFS` with seeded storage gray-failure modes.

    All fault draws come from ``random.Random(seed)`` so a campaign
    line fully determines what the "disk" did.  Modes are armed
    explicitly (:meth:`fail_appends`, :meth:`tear_next_append`) or via
    constructor flags (``lying_fsync``, ``corrupt_reads``); a plain
    ``FaultyFS(seed)`` with nothing armed behaves exactly like the
    passthrough.
    """

    def __init__(
        self,
        seed: int = 0,
        lying_fsync: bool = False,
        corrupt_reads: bool = False,
    ) -> None:
        self.rng = random.Random(seed)
        self.lying_fsync = lying_fsync
        self.corrupt_reads = corrupt_reads
        self._enospc_left = 0
        self._enospc_partial = False
        self._tear_armed = False
        self._dead = False
        #: path → byte size known durable (advanced only by honest fsync)
        self._durable: Dict[str, int] = {}
        self.stats: Dict[str, int] = {
            "appends": 0,
            "fsyncs": 0,
            "enospc": 0,
            "torn": 0,
            "flipped_reads": 0,
        }

    # -- arming ---------------------------------------------------------

    def fail_appends(self, count: int, partial: bool = False) -> None:
        """Arm ENOSPC for the next ``count`` appends.

        With ``partial=True`` each failing append first persists a
        seeded strict prefix — the caller must roll the file back or
        the next append buries a torn frame mid-log.
        """
        self._enospc_left = count
        self._enospc_partial = partial

    def tear_next_append(self) -> None:
        """Arm a torn write: the next append persists a seeded strict
        prefix, then the "process" dies (:exc:`TornWriteCrash`)."""
        self._tear_armed = True

    def drop_unsynced(self, path: str) -> None:
        """Simulate the power cut after a lying fsync: truncate ``path``
        back to its last honestly-durable size.  Call with the WAL
        closed (the node killed); the next open replays the loss."""
        durable = self._durable.get(path, 0)
        try:
            os.truncate(path, durable)
        except OSError:
            pass

    # -- faulted hooks ---------------------------------------------------

    def open_append(self, path: str) -> LogHandle:
        self._check_dead()
        handle = super().open_append(path)
        # whatever survived to reopen is durable by definition
        self._durable[path] = os.path.getsize(path)
        return handle

    def append(self, handle: LogHandle, data: bytes) -> None:
        self._check_dead()
        self.stats["appends"] += 1
        if self._tear_armed:
            self._tear_armed = False
            self._dead = True
            self.stats["torn"] += 1
            cut = self.rng.randrange(1, len(data)) if len(data) > 1 else 0
            handle.file.write(data[:cut])
            handle.file.flush()
            os.fsync(handle.file.fileno())
            raise TornWriteCrash(f"append tore after {cut}/{len(data)} bytes")
        if self._enospc_left > 0:
            self._enospc_left -= 1
            self.stats["enospc"] += 1
            if self._enospc_partial and len(data) > 1:
                cut = self.rng.randrange(1, len(data))
                handle.file.write(data[:cut])
                handle.file.flush()
            raise OSError(errno.ENOSPC, "no space left on device (injected)")
        super().append(handle, data)

    def fsync(self, handle: LogHandle) -> None:
        self._check_dead()
        self.stats["fsyncs"] += 1
        if self.lying_fsync:
            return  # "success" — nothing durable happened
        super().fsync(handle)
        try:
            self._durable[handle.path] = os.path.getsize(handle.path)
        except OSError:
            pass

    def truncate(self, handle: LogHandle, size: int) -> None:
        self._check_dead()
        super().truncate(handle, size)
        durable = self._durable.get(handle.path)
        if durable is not None and durable > size:
            self._durable[handle.path] = size

    def read_bytes(self, path: str) -> bytes:
        self._check_dead()
        data = super().read_bytes(path)
        if self.corrupt_reads:
            flipped = _flip_body_bit(data, self.rng)
            if flipped is not None:
                self.stats["flipped_reads"] += 1
                return flipped
        return data

    def _check_dead(self) -> None:
        if self._dead:
            raise TornWriteCrash("filesystem died with the torn write")


# ----------------------------------------------------------------------
# at-rest mutators (between a kill and a restart)
# ----------------------------------------------------------------------


def tear_tail(path: str, cut: int = 3) -> bool:
    """Truncate the last ``cut`` bytes of ``path`` — the canonical
    crash-mid-append tear.  Returns False if the file is too short."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size <= cut:
        return False
    os.truncate(path, size - cut)
    return True


def flip_record_body(path: str, seed: int = 0) -> bool:
    """Flip one seeded bit inside a complete record's *body* in ``path``.

    Targets bodies, not headers: a flipped length field is provably
    ambiguous with a torn tail (replay sees "body past EOF" either
    way), while a flipped body bit yields a complete frame whose crc32
    cannot match — the unambiguous fail-stop case the acceptance
    criteria demand.  Returns False when no complete record exists.
    """
    try:
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
    except OSError:
        return False
    flipped = _flip_body_bit(bytes(data), random.Random(seed))
    if flipped is None:
        return False
    with open(path, "wb") as handle:
        handle.write(flipped)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def _flip_body_bit(data: bytes, rng: random.Random) -> Optional[bytes]:
    """Return ``data`` with one bit flipped in a random complete record
    body, or None if no complete record (or empty body) exists."""
    spans = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        length, _ = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if length > (1 << 20) or body_start + length > len(data):
            break
        if length > 0:
            spans.append((body_start, length))
        offset = body_start + length
    if not spans:
        return None
    start, length = rng.choice(spans)
    position = start + rng.randrange(length)
    mutated = bytearray(data)
    mutated[position] ^= 1 << rng.randrange(8)
    return bytes(mutated)
