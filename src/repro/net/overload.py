"""Overload robustness: typed load shedding and circuit breaking.

A production client stack degrades in one of three honest ways, never
by unbounded buffering or a silently dying identity:

* **admission control** — the pipeline's intake queue is bounded; an op
  that would overflow it is rejected with :exc:`Overloaded` *before*
  its invocation is recorded (shed load leaves no trace in the
  history, so the checker never has to explain an op the system
  refused to attempt);
* **circuit breaking** — repeated decree give-ups against an endpoint
  open a :class:`CircuitBreaker`; while open, work against that
  endpoint is shed (or, for a client with alternatives, failed over)
  instead of queued behind a black hole.  After ``reset_after``
  seconds the breaker goes half-open and admits one probe; a success
  closes it, a failure re-opens it;
* **typed retry exhaustion** — a retried op that still cannot commit
  fails with :exc:`~repro.net.client.RetriesExhausted`, distinct from
  a shed op: its fate is unknown, its invocation stays pending.

The shapes here are deliberately tiny and synchronous (the asyncio
loop is single-threaded); policy lives in the callers —
:class:`~repro.net.pipeline.SlotPipeline` guards admission,
:class:`~repro.net.client.NetClient` keeps one breaker per coordinator
endpoint and rotates failover around open ones.
"""

from __future__ import annotations

import time
from typing import Callable

#: consecutive failures that open a breaker
DEFAULT_FAILURE_THRESHOLD = 4

#: seconds an open breaker waits before admitting a half-open probe
DEFAULT_RESET_AFTER = 1.0


class Overloaded(Exception):
    """The system refused this op up front (queue full / circuit open).

    Raised *before* the invocation is recorded or any byte leaves the
    process: the history is untouched, the client identity stays
    usable, and the caller may retry later at its own pace — honest
    load shedding, not a fate-unknown timeout.
    """


class CircuitBreaker:
    """A closed / open / half-open breaker over consecutive failures.

    ``record_failure`` / ``record_success`` feed it outcomes;
    ``allow()`` answers whether the next attempt may proceed.  While
    open, ``allow`` is False until ``reset_after`` seconds elapsed
    since opening; then exactly one caller is admitted (half-open
    probe) and its outcome decides: success closes the breaker,
    failure re-opens it for another ``reset_after``.
    """

    __slots__ = (
        "threshold",
        "reset_after",
        "clock",
        "failures",
        "opened_at",
        "_probing",
        "trips",
    )

    def __init__(
        self,
        threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_after: float = DEFAULT_RESET_AFTER,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_after < 0:
            raise ValueError("reset_after must be non-negative")
        self.threshold = threshold
        self.reset_after = reset_after
        self.clock = clock
        self.failures = 0
        self.opened_at: float = -1.0
        self._probing = False
        #: times the breaker opened (observability)
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        if self.opened_at < 0:
            return "closed"
        if self._probing:
            return "half-open"
        if self.clock() - self.opened_at >= self.reset_after:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May the next attempt proceed?  (Claims the half-open probe.)"""
        if self.opened_at < 0:
            return True
        if self._probing:
            # one probe at a time; everyone else stays shed until it
            # reports back
            return False
        if self.clock() - self.opened_at >= self.reset_after:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """An attempt succeeded: close the breaker, clear the history."""
        self.failures = 0
        self.opened_at = -1.0
        self._probing = False

    def record_failure(self) -> None:
        """An attempt failed: count it; at the threshold, open."""
        if self._probing:
            # the half-open probe failed: straight back to open, with a
            # fresh cooldown
            self._probing = False
            self.opened_at = self.clock()
            self.trips += 1
            return
        self.failures += 1
        if self.opened_at < 0 and self.failures >= self.threshold:
            self.opened_at = self.clock()
            self.trips += 1
