"""`NetClient`: the client library of the networked SMR deployment.

A client replicates KV commands by driving, per log slot, the same
composed consensus the simulator runs — a
:class:`~repro.mp.quorum.QuorumClient` first (fast path, two message
delays) and, on a switch, a :class:`~repro.mp.backup.BackupClient`
(Paxos, three delays) — over an :class:`~repro.net.transport.AsyncTransport`
shared by every client of the process.  The slot-probing loop mirrors
``SpeculativeSMR.submit``: propose on the first slot not known decided,
apply the winner, retry on the next slot if the winner was someone
else's command.

The clients keep a **local** cache of decided slots instead of a shared
server-side log; this is safe by Quorum's own unanimity rule: a fast
decision requires identical accepts from *all* servers, so every
switch value for that slot equals the decided value and Backup can only
confirm it — whatever a client learned a slot decided is what the slot
decided, forever.

Responses follow Section 6's universal-ADT recipe: the KV output
function applied to the untagged log prefix ending at the committed
slot, **deduplicated** through the session rule
(:func:`repro.smr.sessions.dedup_commands`) — a command that decided in
two slots (a retried or hedged proposal whose first decree also
landed) contributes exactly one application.

Operations are bounded by ``op_timeout`` wall-clock seconds *in
total*.  Within that budget a timed-out attempt is **safely retried**:
the client re-proposes the *same* ``(client_id, seq)``-tagged command
(duplicate decrees are suppressed by the session dedup), pacing
attempts with its own :class:`~repro.mp.backoff.BackoffPolicy` copy,
rotating the Backup coordinator list so repeated timeouts fail over to
the successor coordinator, and — with ``hedge_after`` set — launching
a duplicate probe chain once the first attempt looks slow.  All
attempts are one invocation in the recorded history; the response is
recorded once, whichever attempt commits first.

Only when the retry budget or the deadline is exhausted does the op
fail, with the typed :exc:`RetriesExhausted`: its fate is unknown, so
the invocation is left **pending** in the history (which
linearizability permits — the op may or may not have taken effect) and
the identity is poisoned: a sequential client that cannot know whether
its op happened must not issue another, exactly the Jepsen recording
discipline the checker's pending-op handling expects.  Workloads keep
the load flowing under :meth:`NetClient.successor` identities.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.actions import Invocation, Response
from ..core.traces import Trace
from ..mp.backoff import BackoffPolicy
from ..mp.backup import BackupClient
from ..mp.quorum import QuorumClient
from ..smr.sessions import dedup_commands, untag_command
from ..smr.universal import UniversalFrontend, batch_commands, is_batch
from .codec import FrameTooLarge
from .overload import CircuitBreaker
from .transport import AsyncTransport

#: wall-clock Quorum timer (seconds): generous vs localhost RTTs, small
#: vs the op timeout, so a contended slot switches to Backup quickly
DEFAULT_QUORUM_TIMEOUT = 0.15

#: wall-clock retry pacing for the Backup phase.  A module-level
#: *template*: clients copy it (``dataclasses.replace``) instead of
#: sharing the instance, so policy state added later can never couple
#: unrelated clients.
DEFAULT_BACKOFF = BackoffPolicy(
    base=0.2, factor=2.0, cap=2.0, jitter=0.5, max_retries=8
)

#: pacing for op-level re-submission after an attempt timeout: short
#: base (the attempt itself already waited), deterministic jitter to
#: de-synchronize retry storms, small budget — the op deadline is the
#: real bound
DEFAULT_RETRY_BACKOFF = BackoffPolicy(
    base=0.05, factor=2.0, cap=0.5, jitter=0.5, max_retries=3
)


class OperationTimeout(Exception):
    """An operation exceeded its time budget; its fate is unknown."""


class RetriesExhausted(OperationTimeout):
    """Safe retry gave up: every attempt within the op deadline and the
    retry budget timed out.  The op's fate is unknown — the invocation
    stays pending and the identity is poisoned (continue through
    :meth:`NetClient.successor`).  A typed subclass of
    :exc:`OperationTimeout` so existing fate-unknown handling applies.
    """


class RequestTooLarge(Exception):
    """A single command cannot fit one wire frame.

    Raised *before* the invocation is recorded or any byte leaves the
    process: the history stays clean, the client is not poisoned, and
    the connection is never torn by an oversized frame mid-write.
    """


@dataclass
class OpResult:
    """One committed operation, with the metrics the benchmarks read."""

    client: Hashable
    command: Tuple
    response: Hashable
    slot: int
    latency: float
    attempts: int
    switched_slots: int

    @property
    def path(self) -> str:
        """'fast' iff every slot on the way decided in Quorum."""
        return "slow" if self.switched_slots else "fast"


class HistoryRecorder:
    """Wire-level history: what clients observed, when they observed it.

    Events append in wall-clock order (the asyncio loop is single
    threaded, so append order *is* real-time order).  ``trace()`` yields
    the phase-1 interface trace — untagged KV commands — that
    :func:`repro.core.fastcheck.check_linearizable` consumes; a timed
    out operation contributes an invocation with no response.  Retried
    and hedged attempts are *transport*-level events, not history
    events: one op is one invocation and at most one response, however
    many times its decree rode the wire.
    """

    def __init__(self, clock, tap=None) -> None:
        self._clock = clock
        self._tap = tap
        self.events: List[Tuple[str, Hashable, Tuple, Any, float]] = []

    def attach_tap(self, tap) -> None:
        """Stream every future event to ``tap`` (a callable of one event).

        This is how the online monitor observes the run: the tap is
        called synchronously with each raw ``(kind, client, command,
        response, at)`` tuple *after* it is appended, so the tap sees
        exactly the history the post-hoc checker will see, in the same
        order (see :class:`repro.monitor.MonitorTap`).
        """
        self._tap = tap

    def invoke(self, client: Hashable, command: Tuple) -> None:
        """Record an invocation at the current wall-clock instant."""
        event = ("inv", client, command, None, self._clock())
        self.events.append(event)
        if self._tap is not None:
            self._tap(event)

    def respond(self, client: Hashable, command: Tuple, response: Any) -> None:
        """Record the matching response."""
        event = ("res", client, command, response, self._clock())
        self.events.append(event)
        if self._tap is not None:
            self._tap(event)

    def trace(self) -> Trace:
        """The recorded history as a checkable interface trace."""
        actions = []
        for kind, client, command, response, _ in self.events:
            if kind == "inv":
                actions.append(Invocation(client, 1, command))
            else:
                actions.append(Response(client, 1, command, response))
        return Trace(actions)

    def pending_clients(self) -> Tuple[Hashable, ...]:
        """Clients whose last recorded event is an unanswered invocation."""
        open_invocations: Dict[Hashable, int] = {}
        for kind, client, _, _, _ in self.events:
            if kind == "inv":
                open_invocations[client] = open_invocations.get(client, 0) + 1
            else:
                open_invocations[client] -= 1
        return tuple(
            sorted((c for c, n in open_invocations.items() if n), key=repr)
        )

    def to_jsonable(self) -> List[Dict[str, Any]]:
        """The raw events in a JSON-artifact-friendly shape."""
        return [
            {
                "kind": kind,
                "client": client,
                "command": list(command),
                "response": list(response) if response is not None else None,
                "at": at,
            }
            for kind, client, command, response, at in self.events
        ]


class NetClient:
    """One sequential closed-loop client over a shared transport.

    ``op_timeout`` bounds the whole operation; ``attempt_timeout``
    (default: a quarter of it) slices the budget into attempts, each a
    full probe run.  ``retry_backoff`` paces re-submission between
    attempts, ``hedge_after`` (optional) launches a duplicate probe
    chain inside an attempt once it looks slow, and a per-coordinator
    :class:`~repro.net.overload.CircuitBreaker` steers the Backup
    failover rotation away from endpoints that keep eating decrees.
    """

    def __init__(
        self,
        name: str,
        n_servers: int,
        transport: AsyncTransport,
        log: Dict[int, Hashable],
        recorder: HistoryRecorder,
        frontend: UniversalFrontend,
        quorum_timeout: float = DEFAULT_QUORUM_TIMEOUT,
        backoff: Optional[BackoffPolicy] = None,
        op_timeout: float = 5.0,
        attempt_timeout: Optional[float] = None,
        retry_backoff: Optional[BackoffPolicy] = None,
        hedge_after: Optional[float] = None,
    ) -> None:
        self.name = name
        self.n_servers = n_servers
        self.transport = transport
        self.log = log
        self.recorder = recorder
        self.frontend = frontend
        self.quorum_timeout = quorum_timeout
        # Own copies, never the module-level templates: policy objects
        # are per-client (a stateful policy shared between clients would
        # couple their retry schedules).
        self.backoff = replace(backoff) if backoff else replace(DEFAULT_BACKOFF)
        self.retry_backoff = (
            replace(retry_backoff)
            if retry_backoff
            else replace(DEFAULT_RETRY_BACKOFF)
        )
        self.op_timeout = op_timeout
        self.attempt_timeout = (
            attempt_timeout
            if attempt_timeout is not None
            else max(op_timeout / 4.0, 2.0 * quorum_timeout)
        )
        self.hedge_after = hedge_after
        self.poisoned = False
        self.results: List[OpResult] = []
        #: attempt-level retries / hedged duplicate chains (transport
        #: events, not history events)
        self.retries = 0
        self.hedges = 0
        #: per-coordinator-endpoint breakers steering the failover order
        self.breakers: Dict[int, CircuitBreaker] = {
            j: CircuitBreaker(clock=lambda: self.transport.now)
            for j in range(n_servers)
        }
        self._seq = 0
        self._incarnation = 0

    def successor(self) -> "NetClient":
        """A fresh client identity continuing this client's workload.

        An op whose retries are exhausted poisons a client id forever —
        the invocation stays pending and a sequential client must not
        issue another op under the same id.  Jepsen's discipline is to
        keep the *load* going anyway: mint a new id (``c3`` → ``c3@1``
        → ``c3@2`` …) that shares the transport, the decided-slot
        cache, the recorder and the frontend, so the workload continues
        through a fault window while the old id's pending op stays in
        the history for the checker to account for.
        """
        root = self.name.split("@", 1)[0]
        heir = NetClient(
            f"{root}@{self._incarnation + 1}",
            self.n_servers,
            self.transport,
            self.log,
            self.recorder,
            self.frontend,
            quorum_timeout=self.quorum_timeout,
            backoff=self.backoff,
            op_timeout=self.op_timeout,
            attempt_timeout=self.attempt_timeout,
            retry_backoff=self.retry_backoff,
            hedge_after=self.hedge_after,
        )
        heir._incarnation = self._incarnation + 1
        return heir

    def _prefix_response(self, slot: int) -> Hashable:
        # decrees may be batches (a pipelined proposer shares the
        # cluster): flatten each decided value to its commands, then
        # apply the session rule — the first occurrence of each tagged
        # command in log order is the one that applies, so a retried
        # proposal that decided twice folds once
        flattened = (
            c
            for s, v in sorted(self.log.items())
            if s <= slot
            for c in batch_commands(v)
        )
        history = tuple(
            untag_command(c) for c in dedup_commands(flattened)
        )
        return self.frontend.respond(history)

    def _find_win(self, tagged: Tuple) -> Optional[int]:
        """The first slot whose decided value carries ``tagged``."""
        wins = [
            s
            for s, v in self.log.items()
            if v == tagged
            or (is_batch(v) and tagged in batch_commands(v))
        ]
        return min(wins) if wins else None

    def _coordinator_order(self, round_no: int) -> Tuple[int, ...]:
        """Backup failover order for retry round ``round_no``.

        Rotating by the round makes repeated timeouts try the successor
        coordinator first; coordinators behind an open circuit breaker
        are moved to the back of the line (never removed — with every
        breaker open the op must still get its chance).
        """
        rotated = [
            (round_no + j) % self.n_servers for j in range(self.n_servers)
        ]
        preferred = [j for j in rotated if self.breakers[j].allow()]
        shunned = [j for j in rotated if j not in preferred]
        return tuple(preferred + shunned)

    async def submit(self, command: Tuple) -> Hashable:
        """Replicate one KV command; return its derived response.

        Raises :class:`RetriesExhausted` once the total ``op_timeout``
        deadline or the retry budget is spent — the op stays pending in
        the history and the client is poisoned.
        """
        if self.poisoned:
            raise RuntimeError(
                f"client {self.name!r} is poisoned by an op whose fate "
                f"is unknown (retries exhausted)"
            )
        self._seq += 1
        tagged = command + (("seq", (self.name, self._seq)),)
        uid = (self.name, self._seq)
        probe = (("qcli", (uid, 1)), ("qs", 0, 0), ("q-propose", tagged))
        try:
            self.transport.codec.encode_frame(probe)
        except FrameTooLarge as exc:
            # per-op failure, pre-invocation: surface it typed instead
            # of letting the encoder blow up inside the proposer
            self._seq -= 1
            raise RequestTooLarge(
                f"{self.name}: {command[:1]!r}... cannot fit one wire "
                f"frame ({exc})"
            ) from exc
        start = self.transport.now
        deadline = start + self.op_timeout
        attempts = [0]
        switched = [0]
        self.recorder.invoke(self.name, command)
        round_no = 0
        while True:
            budget = min(self.attempt_timeout, deadline - self.transport.now)
            if budget <= 0:
                self.poisoned = True
                self.breakers[round_no % self.n_servers].record_failure()
                raise RetriesExhausted(
                    f"{self.name}: {command!r} still undecided after "
                    f"{self.op_timeout}s across {round_no + 1} attempt(s)"
                ) from None
            try:
                await self._attempt(
                    tagged, uid, round_no, budget, attempts, switched
                )
                break
            except asyncio.TimeoutError:
                primary = self._coordinator_order(round_no)[0]
                self.breakers[primary].record_failure()
                if self.retry_backoff.exhausted(round_no):
                    self.poisoned = True
                    raise RetriesExhausted(
                        f"{self.name}: {command!r} still undecided after "
                        f"{round_no + 1} attempt(s); retry budget spent"
                    ) from None
                round_no += 1
                self.retries += 1
                pause = min(
                    self.retry_backoff.delay(round_no, key=uid),
                    max(0.0, deadline - self.transport.now),
                )
                if pause > 0:
                    await asyncio.sleep(pause)
        self.breakers[self._coordinator_order(round_no)[0]].record_success()
        win = self._find_win(tagged)
        assert win is not None  # _attempt resolved => the win is cached
        response = self._prefix_response(win)
        self.recorder.respond(self.name, command, response)
        self.results.append(
            OpResult(
                client=self.name,
                command=command,
                response=response,
                slot=win,
                latency=self.transport.now - start,
                attempts=attempts[0],
                switched_slots=switched[0],
            )
        )
        return response

    async def _attempt(
        self,
        tagged: Tuple,
        uid: Tuple,
        round_no: int,
        budget: float,
        attempts: List[int],
        switched: List[int],
    ) -> int:
        """One full probe run for ``tagged``, bounded by ``budget``.

        Proposes on the first slot not known decided and walks forward
        until ``tagged`` wins a slot.  With ``hedge_after`` set, a
        duplicate probe chain launches once the attempt has gone that
        long without resolving — a latecomer's decree is harmless
        because the session dedup folds duplicate decrees once.
        """
        future: asyncio.Future = self.transport.loop.create_future()
        op_pids: List[Hashable] = []
        order = self._coordinator_order(round_no)
        chains = [0]

        def try_slot(slot: int, chain: int) -> None:
            if future.done():
                return
            if slot in self.log:
                advance(slot, self.log[slot], chain)
                return
            attempts[0] += 1
            sub = (uid, round_no, chain, attempts[0])

            def on_decide(winner: Hashable) -> None:
                settle(slot, winner, chain)

            def on_switch(switch_value: Hashable) -> None:
                if future.done():
                    return
                switched[0] += 1
                backup = BackupClient(
                    ("bcli", sub),
                    coordinators=[("coord", slot, j) for j in order],
                    n_acceptors=self.n_servers,
                    on_decide=lambda winner: settle(slot, winner, chain),
                    backoff=self.backoff,
                )
                self.transport.register(backup)
                op_pids.append(backup.pid)
                for j in range(self.n_servers):
                    self.transport.send(
                        backup.pid,
                        ("ctl", 0, j),
                        ("register-learner", slot, backup.pid),
                    )
                backup.switch_to_backup(switch_value)

            quorum = QuorumClient(
                ("qcli", sub),
                servers=[("qs", slot, j) for j in range(self.n_servers)],
                on_decide=on_decide,
                on_switch=on_switch,
                timeout=self.quorum_timeout,
            )
            self.transport.register(quorum)
            op_pids.append(quorum.pid)
            quorum.propose(tagged)

        def settle(slot: int, winner: Hashable, chain: int) -> None:
            if slot not in self.log:
                self.log[slot] = winner
            advance(slot, self.log[slot], chain)

        def advance(slot: int, winner: Hashable, chain: int) -> None:
            if future.done():
                return
            if winner == tagged or (
                is_batch(winner) and tagged in batch_commands(winner)
            ):
                future.set_result(slot)
            else:
                try_slot(slot + 1, chain)

        def launch_chain(chain: int) -> None:
            if future.done():
                return
            # A previous attempt's decree may have decided during the
            # blackout and been learned into a (shared) log by another
            # client: honour it rather than proposing yet another copy.
            win = self._find_win(tagged)
            if win is not None:
                future.set_result(win)
                return
            first = 0
            while first in self.log:
                first += 1
            try_slot(first, chain)

        hedge_handle = None
        if self.hedge_after is not None and self.hedge_after < budget:

            def hedge() -> None:
                if future.done():
                    return
                self.hedges += 1
                chains[0] += 1
                launch_chain(chains[0])

            hedge_handle = self.transport.call_later(self.hedge_after, hedge)

        launch_chain(0)
        try:
            return await asyncio.wait_for(future, budget)
        finally:
            if hedge_handle is not None:
                hedge_handle.cancel()
            for pid in op_pids:
                self.transport.unregister(pid)
