"""`NetClient`: the client library of the networked SMR deployment.

A client replicates KV commands by driving, per log slot, the same
composed consensus the simulator runs — a
:class:`~repro.mp.quorum.QuorumClient` first (fast path, two message
delays) and, on a switch, a :class:`~repro.mp.backup.BackupClient`
(Paxos, three delays) — over an :class:`~repro.net.transport.AsyncTransport`
shared by every client of the process.  The slot-probing loop mirrors
``SpeculativeSMR.submit``: propose on the first slot not known decided,
apply the winner, retry on the next slot if the winner was someone
else's command.

The clients keep a **local** cache of decided slots instead of a shared
server-side log; this is safe by Quorum's own unanimity rule: a fast
decision requires identical accepts from *all* servers, so every
switch value for that slot equals the decided value and Backup can only
confirm it — whatever a client learned a slot decided is what the slot
decided, forever.

Responses follow Section 6's universal-ADT recipe: the KV output
function applied to the untagged log prefix ending at the committed
slot.  The prefix is complete because the probing loop visits every slot
between the client's starting point and its commit.

Operations are bounded by ``op_timeout`` wall-clock seconds.  A timed
out operation is left **pending** in the recorded history (which
linearizability permits — the op may or may not have taken effect) and
the client is poisoned: a sequential client that cannot know whether
its op happened must not issue another, exactly the Jepsen recording
discipline the checker's pending-op handling expects.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.actions import Invocation, Response
from ..core.traces import Trace
from ..mp.backoff import BackoffPolicy
from ..mp.backup import BackupClient
from ..mp.quorum import QuorumClient
from ..smr.universal import UniversalFrontend, batch_commands
from .codec import FrameTooLarge
from .transport import AsyncTransport

#: wall-clock Quorum timer (seconds): generous vs localhost RTTs, small
#: vs the op timeout, so a contended slot switches to Backup quickly
DEFAULT_QUORUM_TIMEOUT = 0.15

#: wall-clock retry pacing for the Backup phase
DEFAULT_BACKOFF = BackoffPolicy(
    base=0.2, factor=2.0, cap=2.0, jitter=0.5, max_retries=8
)


class OperationTimeout(Exception):
    """An operation exceeded ``op_timeout``; its fate is unknown."""


class RequestTooLarge(Exception):
    """A single command cannot fit one wire frame.

    Raised *before* the invocation is recorded or any byte leaves the
    process: the history stays clean, the client is not poisoned, and
    the connection is never torn by an oversized frame mid-write.
    """


@dataclass
class OpResult:
    """One committed operation, with the metrics the benchmarks read."""

    client: Hashable
    command: Tuple
    response: Hashable
    slot: int
    latency: float
    attempts: int
    switched_slots: int

    @property
    def path(self) -> str:
        """'fast' iff every slot on the way decided in Quorum."""
        return "slow" if self.switched_slots else "fast"


class HistoryRecorder:
    """Wire-level history: what clients observed, when they observed it.

    Events append in wall-clock order (the asyncio loop is single
    threaded, so append order *is* real-time order).  ``trace()`` yields
    the phase-1 interface trace — untagged KV commands — that
    :func:`repro.core.fastcheck.check_linearizable` consumes; a timed
    out operation contributes an invocation with no response.
    """

    def __init__(self, clock, tap=None) -> None:
        self._clock = clock
        self._tap = tap
        self.events: List[Tuple[str, Hashable, Tuple, Any, float]] = []

    def attach_tap(self, tap) -> None:
        """Stream every future event to ``tap`` (a callable of one event).

        This is how the online monitor observes the run: the tap is
        called synchronously with each raw ``(kind, client, command,
        response, at)`` tuple *after* it is appended, so the tap sees
        exactly the history the post-hoc checker will see, in the same
        order (see :class:`repro.monitor.MonitorTap`).
        """
        self._tap = tap

    def invoke(self, client: Hashable, command: Tuple) -> None:
        """Record an invocation at the current wall-clock instant."""
        event = ("inv", client, command, None, self._clock())
        self.events.append(event)
        if self._tap is not None:
            self._tap(event)

    def respond(self, client: Hashable, command: Tuple, response: Any) -> None:
        """Record the matching response."""
        event = ("res", client, command, response, self._clock())
        self.events.append(event)
        if self._tap is not None:
            self._tap(event)

    def trace(self) -> Trace:
        """The recorded history as a checkable interface trace."""
        actions = []
        for kind, client, command, response, _ in self.events:
            if kind == "inv":
                actions.append(Invocation(client, 1, command))
            else:
                actions.append(Response(client, 1, command, response))
        return Trace(actions)

    def pending_clients(self) -> Tuple[Hashable, ...]:
        """Clients whose last recorded event is an unanswered invocation."""
        open_invocations: Dict[Hashable, int] = {}
        for kind, client, _, _, _ in self.events:
            if kind == "inv":
                open_invocations[client] = open_invocations.get(client, 0) + 1
            else:
                open_invocations[client] -= 1
        return tuple(
            sorted((c for c, n in open_invocations.items() if n), key=repr)
        )

    def to_jsonable(self) -> List[Dict[str, Any]]:
        """The raw events in a JSON-artifact-friendly shape."""
        return [
            {
                "kind": kind,
                "client": client,
                "command": list(command),
                "response": list(response) if response is not None else None,
                "at": at,
            }
            for kind, client, command, response, at in self.events
        ]


class NetClient:
    """One sequential closed-loop client over a shared transport."""

    def __init__(
        self,
        name: str,
        n_servers: int,
        transport: AsyncTransport,
        log: Dict[int, Hashable],
        recorder: HistoryRecorder,
        frontend: UniversalFrontend,
        quorum_timeout: float = DEFAULT_QUORUM_TIMEOUT,
        backoff: Optional[BackoffPolicy] = None,
        op_timeout: float = 5.0,
    ) -> None:
        self.name = name
        self.n_servers = n_servers
        self.transport = transport
        self.log = log
        self.recorder = recorder
        self.frontend = frontend
        self.quorum_timeout = quorum_timeout
        self.backoff = backoff or DEFAULT_BACKOFF
        self.op_timeout = op_timeout
        self.poisoned = False
        self.results: List[OpResult] = []
        self._seq = 0
        self._incarnation = 0

    def successor(self) -> "NetClient":
        """A fresh client identity continuing this client's workload.

        A timed-out op poisons a client id forever — the invocation
        stays pending and a sequential client must not issue another op
        under the same id.  Jepsen's discipline is to keep the *load*
        going anyway: mint a new id (``c3`` → ``c3@1`` → ``c3@2`` …)
        that shares the transport, the decided-slot cache, the recorder
        and the frontend, so the workload continues through a fault
        window while the old id's pending op stays in the history for
        the checker to account for.
        """
        root = self.name.split("@", 1)[0]
        heir = NetClient(
            f"{root}@{self._incarnation + 1}",
            self.n_servers,
            self.transport,
            self.log,
            self.recorder,
            self.frontend,
            quorum_timeout=self.quorum_timeout,
            backoff=self.backoff,
            op_timeout=self.op_timeout,
        )
        heir._incarnation = self._incarnation + 1
        return heir

    @staticmethod
    def _untag(command: Tuple) -> Tuple:
        return command[:-1]

    def _prefix_response(self, slot: int) -> Hashable:
        # decrees may be batches (a pipelined proposer shares the
        # cluster): flatten each decided value to its commands so the
        # derived history is the true sequential one
        history = tuple(
            self._untag(c)
            for s, v in sorted(self.log.items())
            if s <= slot
            for c in batch_commands(v)
        )
        return self.frontend.respond(history)

    async def submit(self, command: Tuple) -> Hashable:
        """Replicate one KV command; return its derived response.

        Raises :class:`OperationTimeout` after ``op_timeout`` seconds —
        the op stays pending in the history and the client is poisoned.
        """
        if self.poisoned:
            raise RuntimeError(
                f"client {self.name!r} is poisoned by a timed-out op"
            )
        self._seq += 1
        tagged = command + (("seq", (self.name, self._seq)),)
        uid = (self.name, self._seq)
        probe = (("qcli", (uid, 1)), ("qs", 0, 0), ("q-propose", tagged))
        try:
            self.transport.codec.encode_frame(probe)
        except FrameTooLarge as exc:
            # per-op failure, pre-invocation: surface it typed instead
            # of letting the encoder blow up inside the proposer
            self._seq -= 1
            raise RequestTooLarge(
                f"{self.name}: {command[:1]!r}... cannot fit one wire "
                f"frame ({exc})"
            ) from exc
        start = self.transport.now
        future: asyncio.Future = self.transport.loop.create_future()
        attempts = [0]
        switched = [0]
        op_pids: List[Hashable] = []

        def try_slot(slot: int) -> None:
            if future.done():
                return
            if slot in self.log:
                advance(slot, self.log[slot])
                return
            attempts[0] += 1
            sub = (uid, attempts[0])

            def on_decide(winner: Hashable) -> None:
                settle(slot, winner)

            def on_switch(switch_value: Hashable) -> None:
                if future.done():
                    return
                switched[0] += 1
                backup = BackupClient(
                    ("bcli", sub),
                    coordinators=[
                        ("coord", slot, j) for j in range(self.n_servers)
                    ],
                    n_acceptors=self.n_servers,
                    on_decide=lambda winner: settle(slot, winner),
                    backoff=self.backoff,
                )
                self.transport.register(backup)
                op_pids.append(backup.pid)
                for j in range(self.n_servers):
                    self.transport.send(
                        backup.pid,
                        ("ctl", 0, j),
                        ("register-learner", slot, backup.pid),
                    )
                backup.switch_to_backup(switch_value)

            def settle(slot_: int, winner: Hashable) -> None:
                if slot_ not in self.log:
                    self.log[slot_] = winner
                advance(slot_, self.log[slot_])

            quorum = QuorumClient(
                ("qcli", sub),
                servers=[("qs", slot, j) for j in range(self.n_servers)],
                on_decide=on_decide,
                on_switch=on_switch,
                timeout=self.quorum_timeout,
            )
            self.transport.register(quorum)
            op_pids.append(quorum.pid)
            quorum.propose(tagged)

        def advance(slot: int, winner: Hashable) -> None:
            if future.done():
                return
            if winner == tagged:
                future.set_result(slot)
            else:
                try_slot(slot + 1)

        self.recorder.invoke(self.name, command)
        first = 0
        while first in self.log:
            first += 1
        try_slot(first)
        try:
            slot = await asyncio.wait_for(future, self.op_timeout)
        except asyncio.TimeoutError:
            # The op's fate is unknown: leave the invocation pending and
            # stop this client (a sequential client must not proceed).
            self.poisoned = True
            raise OperationTimeout(
                f"{self.name}: {command!r} still undecided after "
                f"{self.op_timeout}s"
            ) from None
        finally:
            for pid in op_pids:
                self.transport.unregister(pid)
        response = self._prefix_response(slot)
        self.recorder.respond(self.name, command, response)
        self.results.append(
            OpResult(
                client=self.name,
                command=command,
                response=response,
                slot=slot,
                latency=self.transport.now - start,
                attempts=attempts[0],
                switched_slots=switched[0],
            )
        )
        return response
