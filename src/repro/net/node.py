"""`ReplicaNode`: one physical server of the networked deployment.

A node hosts, behind a single TCP listener, the three server roles of
every SMR slot — exactly the roles a physical server hosts in
:class:`repro.smr.replica.SpeculativeSMR`:

* a :class:`~repro.mp.quorum.QuorumServer` (sticky acceptance, the fast
  path);
* a :class:`~repro.mp.paxos.PaxosAcceptor` (the Backup phase's durable
  memory);
* a :class:`~repro.mp.paxos.PaxosCoordinator` ranked by node index, with
  node 0 pre-preparing (the steady-state phase-1 optimization behind the
  paper's 3-delay Backup latency).

Slots are unbounded, so roles are created **lazily**: the transport's
miss handler fires on the first frame addressed to any role of an
unknown slot and instantiates all three roles for it at once.  This is
the networked analogue of ``SpeculativeSMR._ensure_slot`` — except no
global coordinator exists; each node materializes slots independently,
driven purely by the frames that reach it.

With a :class:`~repro.net.wal.NodeWAL` attached the roles become
*durable*: a :class:`_DurableRole` wrapper buffers every outbound
message while a handler runs, appends the role's changed
``durable_state()`` to the WAL, and only then releases the replies —
the classical persist-before-reply rule, so no acknowledgement ever
refers to state that a crash could erase.  On ``start()`` a node
replays its WAL *before* binding the listener: every recovered slot is
materialized, acceptor triples and sticky Quorum acceptances are
restored via the roles' ``on_recover`` hooks, and decided values are
installed with ``PaxosCoordinator.adopt_decision`` — only then can a
frame reach the node.  Without a WAL the node is **amnesiac**: it
restarts blank, which is the intentional safety bug the net nemesis
campaign exists to catch (:mod:`repro.faults.netcampaign`).

The per-node control role ``("ctl", 0, index)`` handles the one piece of
wiring that is configuration rather than protocol: Backup clients
register themselves as learners on the slot's acceptor
(``("register-learner", slot, pid)``).  If the acceptor has already
accepted by then, the control role replays the current acceptance to the
late learner — "accepted" announcements are idempotent (learners count
votes in sets), and the replay closes the race between a client's
registration and a coordinator's phase 2 running server-to-server.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, Hashable, List, Optional, TYPE_CHECKING, Tuple

from ..analysis.sanitizer import atomic_section
from ..faults.netfaults import TransportFaults
from ..mp.backoff import BackoffPolicy
from ..mp.paxos import PaxosAcceptor, PaxosCoordinator
from ..mp.quorum import QuorumServer
from ..mp.sim import Process
from .codec import Codec
from .transport import AddressBook, AsyncTransport
from .wal import NodeWAL, RecoveredState, WALFullError

logger = logging.getLogger(__name__)

#: wall-clock coordinator retry delay (seconds); the sim uses 8 virtual
#: units, here the currency is real time on localhost
COORDINATOR_RETRY_DELAY = 0.5

#: backoff for a WAL append that hit ENOSPC: short first retry (space
#: often frees fast — a compaction elsewhere), bounded budget so a
#: permanently full disk becomes an explicit fail-stop, not a hang
WAL_RETRY_BACKOFF = BackoffPolicy(
    base=0.05, factor=2.0, cap=1.0, jitter=0.25, max_retries=6
)


class _ControlRole(Process):
    """The node's configuration endpoint (learner registration)."""

    def __init__(self, pid: Hashable, node: "ReplicaNode") -> None:
        super().__init__(pid)
        self.node = node

    def on_message(self, src: Hashable, message: Any) -> None:
        if message[0] == "register-learner":
            _, slot, learner = message
            self.node.register_learner(slot, learner)


class _DurableRole:
    """Mixin enforcing persist-before-reply around ``on_message``.

    While the wrapped handler runs, ``send`` only buffers; afterwards,
    if ``durable_state()`` changed, the new state is appended (and
    fsync'd) to the WAL, and only then are the buffered frames
    released.  A crash inside the handler thus loses the replies but
    never the state they would have promised — exactly the stable
    storage discipline single-decree Paxos and Quorum's sticky
    acceptance both assume.  Timer- and config-driven sends outside a
    handler pass through unbuffered.  With ``wal=None`` the wrapper is
    inert and the role behaves like its volatile base class.

    A full disk is survivable: when the append raises
    :exc:`~repro.net.wal.WALFullError` the replies stay buffered and a
    backoff timer (:data:`WAL_RETRY_BACKOFF`) re-attempts the persist;
    frames arriving while the retry is pending are dropped (the client
    retries — answering them would promise unpersisted state).  Only
    when the budget is exhausted does the role fail-stop by closing the
    node's WAL, which silences every role sharing it.
    """

    _wal: Optional[NodeWAL] = None
    _wal_buffer: Optional[List[Tuple[Hashable, Any]]] = None
    _wal_retry: Optional[Tuple[Any, List[Tuple[Hashable, Any]]]] = None

    if TYPE_CHECKING:
        # provided by the concrete role the mixin is combined with
        def durable_state(self) -> Any: ...

        def on_recover(self, state: Any) -> None: ...

    def _wire_wal(self, wal: Optional[NodeWAL], kind: str, slot: int) -> None:
        self._wal = wal
        self._wal_kind = kind
        self._wal_slot = slot
        self._wal_buffer = None
        self._wal_retry = None
        self._wal_attempt = 0
        self._wal_persisted = self.durable_state()

    def restore(self, state: Any) -> None:
        """Apply recovered durable state without re-logging it."""
        self.on_recover(state)
        self._wal_persisted = self.durable_state()

    def send(self, dst: Hashable, message: Any) -> None:
        if self._wal_buffer is not None:
            self._wal_buffer.append((dst, message))
        else:
            super().send(dst, message)  # type: ignore[misc]

    # The whole handler is one critical section: buffer, persist,
    # release must not interleave with another task touching this role.
    # The guard is free unless REPRO_SANITIZE=1 (nemesis campaigns).
    @atomic_section
    def on_message(self, src: Hashable, message: Any) -> None:
        if self._wal is None:
            super().on_message(src, message)  # type: ignore[misc]
            return
        if self._wal.closed or self._wal_retry is not None:
            # The node is dead (stable storage released by stop() or a
            # fail-stop), or persistence is stalled on a full disk: the
            # frame must be dropped, not answered — crash semantics,
            # and never a promise about unpersisted state.
            return
        self._wal_buffer = []
        state = self._wal_persisted
        try:
            super().on_message(src, message)  # type: ignore[misc]
            state = self.durable_state()
        finally:
            buffered, self._wal_buffer = self._wal_buffer, None
        if state == self._wal_persisted:
            # nothing new to persist; replies promise only already
            # durable state and may leave at once
            self._wal_release(buffered)
            return
        try:
            # under group commit the callback fires after the shared
            # fsync of this event-loop tick — one sync covers every
            # role that recorded in it, and no reply beats its record
            self._wal.record_durable(
                self._wal_kind,
                self._wal_slot,
                state,
                lambda: self._wal_release(buffered),
            )
        except WALFullError:
            self._wal_begin_retry(state, buffered)
            return
        self._wal_persisted = state

    def _wal_release(self, buffered: List[Tuple[Hashable, Any]]) -> None:
        """Let the buffered replies leave (state is durable or unchanged)."""
        for dst, msg in buffered:
            super().send(dst, msg)  # type: ignore[misc]

    # -- ENOSPC backoff-and-retry --------------------------------------

    def _wal_begin_retry(
        self, state: Any, buffered: List[Tuple[Hashable, Any]]
    ) -> None:
        """Park the unpersisted state + replies and arm the first retry."""
        logger.warning(
            "%r: WAL append hit ENOSPC; holding %d replies and retrying",
            self.pid, len(buffered),
        )
        self._wal_retry = (state, buffered)
        self._wal_attempt = 0
        self.set_timer(
            WAL_RETRY_BACKOFF.delay(0, key=str(self.pid)),
            self._wal_retry_tick,
        )

    @atomic_section
    def _wal_retry_tick(self) -> None:
        """Re-attempt the parked persist; release replies on success."""
        if self._wal is None or self._wal.closed or self._wal_retry is None:
            return
        state, buffered = self._wal_retry
        try:
            self._wal.record(self._wal_kind, self._wal_slot, state)
        except WALFullError:
            self._wal_attempt += 1
            if WAL_RETRY_BACKOFF.exhausted(self._wal_attempt):
                logger.error(
                    "%r: WAL still full after %d retries; failing stop",
                    self.pid, self._wal_attempt,
                )
                self._wal_retry = None
                self._wal.close()  # fail-stop: closed WAL gates handlers
                return
            self.set_timer(
                WAL_RETRY_BACKOFF.delay(self._wal_attempt, key=str(self.pid)),
                self._wal_retry_tick,
            )
            return
        self._wal_persisted = state
        self._wal_retry = None
        for dst, msg in buffered:
            super().send(dst, msg)  # type: ignore[misc]


class DurableQuorumServer(_DurableRole, QuorumServer):
    """Quorum server whose sticky acceptance survives the process."""

    def __init__(self, pid: Hashable, wal: Optional[NodeWAL] = None) -> None:
        super().__init__(pid)
        self._wire_wal(wal, "qs", pid[1])


class DurableAcceptor(_DurableRole, PaxosAcceptor):
    """Paxos acceptor whose triple is written before any answer."""

    def __init__(self, pid: Hashable, wal: Optional[NodeWAL] = None) -> None:
        super().__init__(pid)
        self._wire_wal(wal, "acc", pid[1])


class RecordingCoordinator(PaxosCoordinator):
    """Coordinator that logs each slot's decision to the WAL.

    The decided log is what makes recovery *cheap*: a restarted node
    answers requests on settled slots from the WAL instead of paying a
    Paxos round per slot.  It is an optimization, not a safety
    requirement — losing it only costs latency, so the decision is
    logged after the fact rather than via persist-before-reply.
    """

    def __init__(self, *args, wal=None, slot=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._wal = wal
        self._slot = slot
        self._decision_logged = False

    def adopt_decision(self, value: Hashable) -> None:
        had = self.decision is not None
        super().adopt_decision(value)
        if not had:
            self._decision_logged = True  # came *from* the WAL

    def on_message(self, src: Hashable, message: Any) -> None:
        super().on_message(src, message)
        if (
            self._wal is not None
            and not self._wal.closed
            and not self._decision_logged
            and self.decision is not None
        ):
            try:
                self._wal.record_decided(self._slot, self.decision)
            except WALFullError:
                return  # optimization only; the next message retries
            self._decision_logged = True


class ReplicaNode:
    """All server roles of one replica, served over one TCP listener."""

    def __init__(
        self,
        index: int,
        n_servers: int,
        book: AddressBook,
        faults: Optional[TransportFaults] = None,
        retry_delay: float = COORDINATOR_RETRY_DELAY,
        host: str = "127.0.0.1",
        port: int = 0,
        wal: Optional[NodeWAL] = None,
        codec: Optional[Codec] = None,
    ) -> None:
        self.index = index
        self.n_servers = n_servers
        self.host = host
        self.port = port
        self.retry_delay = retry_delay
        self.wal = wal
        self.recovered: Optional[RecoveredState] = (
            wal.recovered if wal is not None else None
        )
        self.transport = AsyncTransport(
            f"node{index}", book, faults, codec=codec
        )
        self.transport.miss_handler = self._on_miss
        #: slot → learner pids currently registered on this node's acceptor
        self.slot_learners: Dict[int, List[Hashable]] = {}
        self.transport.register(_ControlRole(("ctl", 0, index), self))

    @property
    def endpoint(self) -> str:
        """The node's endpoint name in the address book."""
        return self.transport.endpoint

    async def start(self) -> Tuple[str, int]:
        """Recover from the WAL, then bind and publish the listener.

        Recovery runs strictly before the listener exists: every slot
        the WAL mentions is materialized with its durable state
        restored, so no frame can race a half-recovered node.
        """
        if self.recovered is not None:
            for slot in self.recovered.slots():
                self.ensure_slot(slot)
        host, port = await self.transport.start_server(self.host, self.port)
        self.port = port
        self.transport.book.add(self.endpoint, host, port)
        return host, port

    async def stop(self) -> None:
        """Kill the node: close the listener and sever every connection."""
        await self.transport.close()
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------
    # lazy slot materialization
    # ------------------------------------------------------------------

    def ensure_slot(self, slot: int) -> None:
        """Host this node's three roles for ``slot`` (idempotent)."""
        if slot in self.slot_learners:
            return
        i = self.index
        qs = self.transport.register(
            DurableQuorumServer(("qs", slot, i), wal=self.wal)
        )
        acceptor = self.transport.register(
            DurableAcceptor(("acc", slot, i), wal=self.wal)
        )
        coordinator = self.transport.register(
            RecordingCoordinator(
                ("coord", slot, i),
                rank=i,
                n_coordinators=self.n_servers,
                acceptors=[("acc", slot, j) for j in range(self.n_servers)],
                pre_prepare=(i == 0),
                retry_delay=self.retry_delay,
                wal=self.wal,
                slot=slot,
            )
        )
        if self.recovered is not None:
            triple = self.recovered.acceptors.get(slot)
            if triple is not None:
                acceptor.restore(triple)
            sticky = self.recovered.quorum.get(slot)
            if sticky is not None:
                qs.restore(sticky)
            decided = self.recovered.decided.get(slot)
            if decided is not None:
                coordinator.adopt_decision(decided)
        learners = [("coord", slot, j) for j in range(self.n_servers)]
        self.slot_learners[slot] = learners
        acceptor.register_learners(learners)

    def register_learner(self, slot: int, learner: Hashable) -> None:
        """Add a Backup client as a learner on this slot's acceptor.

        Replays the acceptor's current acceptance to the new learner so a
        registration that loses the race against phase 2 still hears the
        vote (duplicates are harmless: learners count votes in sets).
        """
        self.ensure_slot(slot)
        learners = self.slot_learners[slot]
        if learner not in learners:
            learners.append(learner)
        acceptor = self.transport.processes[("acc", slot, self.index)]
        acceptor.register_learners(learners)
        if acceptor.accepted_ballot >= 0:
            acceptor.send(
                learner,
                (
                    "accepted",
                    acceptor.accepted_ballot,
                    acceptor.accepted_value,
                ),
            )

    def _on_miss(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Materialize the slot of an unknown role pid, then deliver."""
        if (
            isinstance(dst, tuple)
            and len(dst) == 3
            and dst[0] in ("qs", "acc", "coord")
            and dst[2] == self.index
            and isinstance(dst[1], int)
        ):
            self.ensure_slot(dst[1])
            process = self.transport.processes.get(dst)
            if process is not None:
                self.transport.stats.delivered += 1
                process.on_message(src, message)
                return
        logger.debug("node%d dropping frame for %r", self.index, dst)
        self.transport.stats.dropped_crashed += 1
