"""`ReplicaNode`: one physical server of the networked deployment.

A node hosts, behind a single TCP listener, the three server roles of
every SMR slot — exactly the roles a physical server hosts in
:class:`repro.smr.replica.SpeculativeSMR`:

* a :class:`~repro.mp.quorum.QuorumServer` (sticky acceptance, the fast
  path);
* a :class:`~repro.mp.paxos.PaxosAcceptor` (the Backup phase's durable
  memory);
* a :class:`~repro.mp.paxos.PaxosCoordinator` ranked by node index, with
  node 0 pre-preparing (the steady-state phase-1 optimization behind the
  paper's 3-delay Backup latency).

Slots are unbounded, so roles are created **lazily**: the transport's
miss handler fires on the first frame addressed to any role of an
unknown slot and instantiates all three roles for it at once.  This is
the networked analogue of ``SpeculativeSMR._ensure_slot`` — except no
global coordinator exists; each node materializes slots independently,
driven purely by the frames that reach it.

The per-node control role ``("ctl", 0, index)`` handles the one piece of
wiring that is configuration rather than protocol: Backup clients
register themselves as learners on the slot's acceptor
(``("register-learner", slot, pid)``).  If the acceptor has already
accepted by then, the control role replays the current acceptance to the
late learner — "accepted" announcements are idempotent (learners count
votes in sets), and the replay closes the race between a client's
registration and a coordinator's phase 2 running server-to-server.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..faults.netfaults import TransportFaults
from ..mp.paxos import PaxosAcceptor, PaxosCoordinator
from ..mp.quorum import QuorumServer
from ..mp.sim import Process
from .transport import AddressBook, AsyncTransport

logger = logging.getLogger(__name__)

#: wall-clock coordinator retry delay (seconds); the sim uses 8 virtual
#: units, here the currency is real time on localhost
COORDINATOR_RETRY_DELAY = 0.5


class _ControlRole(Process):
    """The node's configuration endpoint (learner registration)."""

    def __init__(self, pid: Hashable, node: "ReplicaNode") -> None:
        super().__init__(pid)
        self.node = node

    def on_message(self, src: Hashable, message: Any) -> None:
        if message[0] == "register-learner":
            _, slot, learner = message
            self.node.register_learner(slot, learner)


class ReplicaNode:
    """All server roles of one replica, served over one TCP listener."""

    def __init__(
        self,
        index: int,
        n_servers: int,
        book: AddressBook,
        faults: Optional[TransportFaults] = None,
        retry_delay: float = COORDINATOR_RETRY_DELAY,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.index = index
        self.n_servers = n_servers
        self.host = host
        self.port = port
        self.retry_delay = retry_delay
        self.transport = AsyncTransport(f"node{index}", book, faults)
        self.transport.miss_handler = self._on_miss
        #: slot → learner pids currently registered on this node's acceptor
        self.slot_learners: Dict[int, List[Hashable]] = {}
        self.transport.register(_ControlRole(("ctl", 0, index), self))

    @property
    def endpoint(self) -> str:
        """The node's endpoint name in the address book."""
        return self.transport.endpoint

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and publish this node in the address book."""
        host, port = await self.transport.start_server(self.host, self.port)
        self.port = port
        self.transport.book.add(self.endpoint, host, port)
        return host, port

    async def stop(self) -> None:
        """Kill the node: close the listener and sever every connection."""
        await self.transport.close()

    # ------------------------------------------------------------------
    # lazy slot materialization
    # ------------------------------------------------------------------

    def ensure_slot(self, slot: int) -> None:
        """Host this node's three roles for ``slot`` (idempotent)."""
        if slot in self.slot_learners:
            return
        i = self.index
        self.transport.register(QuorumServer(("qs", slot, i)))
        acceptor = self.transport.register(PaxosAcceptor(("acc", slot, i)))
        self.transport.register(
            PaxosCoordinator(
                ("coord", slot, i),
                rank=i,
                n_coordinators=self.n_servers,
                acceptors=[("acc", slot, j) for j in range(self.n_servers)],
                pre_prepare=(i == 0),
                retry_delay=self.retry_delay,
            )
        )
        learners = [("coord", slot, j) for j in range(self.n_servers)]
        self.slot_learners[slot] = learners
        acceptor.register_learners(learners)

    def register_learner(self, slot: int, learner: Hashable) -> None:
        """Add a Backup client as a learner on this slot's acceptor.

        Replays the acceptor's current acceptance to the new learner so a
        registration that loses the race against phase 2 still hears the
        vote (duplicates are harmless: learners count votes in sets).
        """
        self.ensure_slot(slot)
        learners = self.slot_learners[slot]
        if learner not in learners:
            learners.append(learner)
        acceptor = self.transport.processes[("acc", slot, self.index)]
        acceptor.register_learners(learners)
        if acceptor.accepted_ballot >= 0:
            acceptor.send(
                learner,
                (
                    "accepted",
                    acceptor.accepted_ballot,
                    acceptor.accepted_value,
                ),
            )

    def _on_miss(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Materialize the slot of an unknown role pid, then deliver."""
        if (
            isinstance(dst, tuple)
            and len(dst) == 3
            and dst[0] in ("qs", "acc", "coord")
            and dst[2] == self.index
            and isinstance(dst[1], int)
        ):
            self.ensure_slot(dst[1])
            process = self.transport.processes.get(dst)
            if process is not None:
                self.transport.stats.delivered += 1
                process.on_message(src, message)
                return
        logger.debug("node%d dropping frame for %r", self.index, dst)
        self.transport.stats.dropped_crashed += 1
