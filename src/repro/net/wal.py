"""Write-ahead log: the stable storage of the networked deployment.

The simulator fakes durability (``Process.crash`` snapshots
``durable_state()`` in memory); a real node must survive losing its
process, so the TCP runtime writes the same durable facts to disk
*before* any reply leaves the node — the classical Paxos stable-storage
rule, now literal.  Three kinds of fact are logged, all per SMR slot:

* ``("acc", slot, (promised, accepted_ballot, accepted_value))`` — the
  acceptor triple of :class:`~repro.mp.paxos.PaxosAcceptor`;
* ``("qs", slot, accepted)`` — the sticky Quorum acceptance of
  :class:`~repro.mp.quorum.QuorumServer` (Quorum's unanimity argument
  assumes servers never forget their first acceptance);
* ``("dec", slot, value)`` — the decided log, so a recovered
  coordinator answers requests instead of re-running Paxos.

The on-disk format is deliberately boring: an append-only file of
``[length u32][crc32 u32][payload]`` records, each payload the compact
JSON of the tuple-preserving codec (:mod:`repro.net.codec`), fsync'd
per append.  A crash mid-append leaves a torn tail — a short header, a
short body, or a checksum mismatch — which replay detects, truncates,
and reports; everything before the tear is intact because records are
written strictly in order.

Replay cost grows with log length, so :class:`NodeWAL` folds the log
into per-slot maps and periodically **compacts**: the folded state is
written to ``snapshot.json`` via an atomic tmp-file rename and the log
is truncated.  Recovery is then snapshot + tail, equivalent by
construction to replaying the full history (each record overwrites its
slot's entry; the snapshot is exactly the fold of the dropped prefix).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .codec import decode_payload, encode_payload

#: record header: payload length, crc32 of the payload (big-endian u32s)
_HEADER = struct.Struct(">II")

#: sanity bound on a single record; a length field beyond this is torn
#: garbage, not a record (matches the transport's frame guard scale)
MAX_RECORD = 1 << 20

#: default number of appended records that triggers snapshot compaction
DEFAULT_COMPACT_THRESHOLD = 1024


class WriteAheadLog:
    """Append-only, checksummed, fsync'd record log with snapshots.

    Opening the log replays it: ``snapshot`` holds the decoded snapshot
    value (or ``None``), ``records`` the decoded log records after it,
    and ``torn_tail`` whether a truncated/corrupt tail was discarded.
    The file is truncated back to its last valid record, so appends
    after a torn open produce a clean log again.
    """

    def __init__(self, directory: str, fsync: bool = True) -> None:
        self.directory = directory
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        self.log_path = os.path.join(directory, "wal.log")
        self.snapshot_path = os.path.join(directory, "snapshot.json")
        self.snapshot: Optional[Any] = self._load_snapshot()
        self.records, valid_bytes, self.torn_tail = self._replay()
        #: records appended since the last compaction (replayed + new)
        self.record_count = len(self.records)
        # a+b creates the file if missing; O_APPEND writes always land at
        # the (possibly just truncated) end of file
        self._handle = open(self.log_path, "a+b")
        self._handle.truncate(valid_bytes)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def _load_snapshot(self) -> Optional[Any]:
        """Decode ``snapshot.json`` if present and intact.

        A corrupt snapshot is treated as absent: the atomic rename in
        :meth:`compact` means a torn snapshot can only be a leftover
        ``.tmp`` (ignored) or filesystem damage beyond our contract.
        """
        try:
            with open(self.snapshot_path, "r", encoding="ascii") as handle:
                return decode_payload(json.load(handle))
        except (OSError, ValueError):
            return None

    def _replay(self) -> Tuple[List[Any], int, bool]:
        """Scan the log, returning (records, valid_bytes, torn_tail)."""
        try:
            with open(self.log_path, "rb") as handle:
                data = handle.read()
        except OSError:
            return [], 0, False
        records: List[Any] = []
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                return records, offset, True  # torn header
            length, checksum = _HEADER.unpack_from(data, offset)
            body_start = offset + _HEADER.size
            if length > MAX_RECORD or body_start + length > len(data):
                return records, offset, True  # torn/garbage body
            body = data[body_start : body_start + length]
            if zlib.crc32(body) != checksum:
                return records, offset, True  # corrupt tail
            try:
                records.append(decode_payload(json.loads(body.decode("ascii"))))
            except (ValueError, UnicodeDecodeError):
                return records, offset, True
            offset = body_start + length
        return records, offset, False

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def append(self, value: Any) -> None:
        """Durably append one record (returns after flush + fsync)."""
        body = json.dumps(
            encode_payload(value), separators=(",", ":"), ensure_ascii=True
        ).encode("ascii")
        self._handle.write(_HEADER.pack(len(body), zlib.crc32(body)) + body)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.record_count += 1

    def compact(self, snapshot_value: Any) -> None:
        """Atomically install ``snapshot_value`` and truncate the log.

        The snapshot is written to a tmp file, fsync'd, and renamed over
        ``snapshot.json`` (atomic on POSIX); only then is the log
        truncated.  A crash between the two leaves snapshot + full log,
        which replays to the same state (slot records are idempotent
        overwrites).
        """
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "w", encoding="ascii") as handle:
            json.dump(
                encode_payload(snapshot_value),
                handle,
                separators=(",", ":"),
                ensure_ascii=True,
            )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._fsync_directory()
        self._handle.truncate(0)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.snapshot = snapshot_value
        self.records = []
        self.record_count = 0

    def _fsync_directory(self) -> None:
        """Persist the rename itself (directory metadata), best effort."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def close(self) -> None:
        """Close the log file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


@dataclass
class RecoveredState:
    """Per-slot durable facts folded out of a node's WAL."""

    #: slot → (promised, accepted_ballot, accepted_value)
    acceptors: Dict[int, Tuple[int, int, Optional[Hashable]]] = field(
        default_factory=dict
    )
    #: slot → sticky Quorum acceptance
    quorum: Dict[int, Hashable] = field(default_factory=dict)
    #: slot → decided value (the SMR decided log)
    decided: Dict[int, Hashable] = field(default_factory=dict)
    torn_tail: bool = False
    records_replayed: int = 0

    def slots(self) -> List[int]:
        """Every slot any recovered fact mentions, ascending."""
        return sorted(
            set(self.acceptors) | set(self.quorum) | set(self.decided)
        )

    @property
    def empty(self) -> bool:
        return not (self.acceptors or self.quorum or self.decided)


class NodeWAL:
    """One node's durable state, kept as folded maps over a log.

    ``record(kind, slot, payload)`` durably appends one fact (the kinds
    are the module-level vocabulary: ``"acc"``, ``"qs"``, ``"dec"``) and
    updates the in-memory fold; once ``compact_threshold`` records have
    accumulated the fold is snapshotted and the log truncated.
    ``recovered`` is the fold as of open time — what a restarting
    :class:`~repro.net.node.ReplicaNode` rebuilds its roles from.
    """

    def __init__(
        self,
        directory: str,
        fsync: bool = True,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> None:
        self.wal = WriteAheadLog(directory, fsync=fsync)
        self.compact_threshold = compact_threshold
        state = RecoveredState(
            torn_tail=self.wal.torn_tail,
            records_replayed=len(self.wal.records),
        )
        if self.wal.snapshot is not None:
            self._apply_snapshot(state, self.wal.snapshot)
        for record in self.wal.records:
            self._apply(state, record)
        self.state = state
        self.recovered = RecoveredState(
            acceptors=dict(state.acceptors),
            quorum=dict(state.quorum),
            decided=dict(state.decided),
            torn_tail=state.torn_tail,
            records_replayed=state.records_replayed,
        )

    @property
    def directory(self) -> str:
        return self.wal.directory

    @staticmethod
    def _apply(state: RecoveredState, record: Any) -> None:
        kind, slot, payload = record
        if kind == "acc":
            state.acceptors[slot] = tuple(payload)
        elif kind == "qs":
            state.quorum[slot] = payload
        elif kind == "dec":
            state.decided[slot] = payload

    @staticmethod
    def _apply_snapshot(state: RecoveredState, snapshot: Any) -> None:
        state.acceptors.update(snapshot.get("acc", {}))
        state.quorum.update(snapshot.get("qs", {}))
        state.decided.update(snapshot.get("dec", {}))

    def record(self, kind: str, slot: int, payload: Any) -> None:
        """Durably log one fact; returns only after it is on disk."""
        record = (kind, slot, payload)
        self._apply(self.state, record)
        self.wal.append(record)
        if self.wal.record_count >= self.compact_threshold:
            self.compact()

    def record_acceptor(
        self, slot: int, triple: Tuple[int, int, Optional[Hashable]]
    ) -> None:
        """Log the acceptor triple of ``slot``."""
        self.record("acc", slot, triple)

    def record_quorum(self, slot: int, accepted: Hashable) -> None:
        """Log the sticky Quorum acceptance of ``slot``."""
        self.record("qs", slot, accepted)

    def record_decided(self, slot: int, value: Hashable) -> None:
        """Log a decided value (the SMR decided log)."""
        self.record("dec", slot, value)

    def compact(self) -> None:
        """Snapshot the current fold and truncate the log."""
        self.wal.compact(
            {
                "acc": dict(self.state.acceptors),
                "qs": dict(self.state.quorum),
                "dec": dict(self.state.decided),
            }
        )

    @property
    def closed(self) -> bool:
        return self.wal.closed

    def close(self) -> None:
        self.wal.close()
