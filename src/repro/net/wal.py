"""Write-ahead log: the stable storage of the networked deployment.

The simulator fakes durability (``Process.crash`` snapshots
``durable_state()`` in memory); a real node must survive losing its
process, so the TCP runtime writes the same durable facts to disk
*before* any reply leaves the node — the classical Paxos stable-storage
rule, now literal.  Three kinds of fact are logged, all per SMR slot:

* ``("acc", slot, (promised, accepted_ballot, accepted_value))`` — the
  acceptor triple of :class:`~repro.mp.paxos.PaxosAcceptor`;
* ``("qs", slot, accepted)`` — the sticky Quorum acceptance of
  :class:`~repro.mp.quorum.QuorumServer` (Quorum's unanimity argument
  assumes servers never forget their first acceptance);
* ``("dec", slot, value)`` — the decided log, so a recovered
  coordinator answers requests instead of re-running Paxos.

The on-disk format is deliberately boring: an append-only file of
``[length u32][crc32 u32][payload]`` records, each payload the compact
JSON of the tuple-preserving codec (:mod:`repro.net.codec`), fsync'd
per append.  All filesystem access goes through the injectable
:class:`~repro.net.faultfs.FaultFS` seam, so the nemesis can tear
writes, flip bits, exhaust the disk, or lie about fsync.

Replay distinguishes two failure classes, because they demand opposite
responses:

* **torn tail** — the final record is an *incomplete prefix* (short
  header, body shorter than its declared length, or a zero-length
  frame from block zero-fill).  Appends are strictly ordered, so
  everything before the tear is intact: replay truncates the tear and
  carries on.  A bit-flipped *length field* is indistinguishable from
  a tear (both read as "body past EOF") and is tolerated the same way;
  the linearizability canary in the campaign layer is the backstop for
  that ambiguity.
* **corruption** — a *complete* record whose crc32 does not match, or
  whose checksummed payload fails to decode.  No crash can produce
  that (a tear leaves a prefix, never a full frame with wrong bytes),
  so the storage itself is lying and nothing downstream of it can be
  trusted: replay raises :exc:`WALCorruptionError` and the node must
  fail-stop — never serve from a corrupted fold.

``ENOSPC`` on append is survivable: the partial frame is rolled back
(the file is truncated to the last durable record) and the typed
:exc:`WALFullError` tells the caller to back off and retry rather than
crash the event loop.

Replay cost grows with log length, so :class:`NodeWAL` folds the log
into per-slot maps and periodically **compacts**: the folded state is
written to ``snapshot.json`` (crc32-wrapped) via an atomic tmp-file
rename and the log is truncated.  Recovery is then snapshot + tail,
equivalent by construction to replaying the full history (each record
overwrites its slot's entry; the snapshot is exactly the fold of the
dropped prefix).
"""

from __future__ import annotations

import asyncio
import errno
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .codec import decode_payload, encode_payload
from .faultfs import FaultFS

#: record header: payload length, crc32 of the payload (big-endian u32s)
_HEADER = struct.Struct(">II")

#: sanity bound on a single record; a length field beyond this can only
#: be garbage (matches the transport's frame guard scale)
MAX_RECORD = 1 << 20

#: default number of appended records that triggers snapshot compaction
DEFAULT_COMPACT_THRESHOLD = 1024


class WALError(Exception):
    """Base class of the WAL's typed failures."""


class WALCorruptionError(WALError):
    """Stable storage returned provably corrupt data (a complete record
    with a checksum mismatch).  The only safe answer is fail-stop."""


class WALFullError(WALError):
    """An append hit ``ENOSPC``.  The log was rolled back to its last
    durable record; the caller should back off and retry."""


class WriteAheadLog:
    """Append-only, checksummed, fsync'd record log with snapshots.

    Opening the log replays it: ``snapshot`` holds the decoded snapshot
    value (or ``None``), ``records`` the decoded log records after it,
    and ``torn_tail`` whether a truncated tail was discarded.  The file
    is truncated back to its last valid record, so appends after a torn
    open produce a clean log again.  A complete-but-corrupt record
    raises :exc:`WALCorruptionError` instead — see the module docstring
    for the torn/corrupt distinction.
    """

    def __init__(
        self,
        directory: str,
        fsync: bool = True,
        fs: Optional[FaultFS] = None,
    ) -> None:
        self.directory = directory
        self.fsync = fsync
        self.fs = fs if fs is not None else FaultFS()
        self.fs.makedirs(directory)
        self.log_path = os.path.join(directory, "wal.log")
        self.snapshot_path = os.path.join(directory, "snapshot.json")
        self.snapshot: Optional[Any] = self._load_snapshot()
        self.records, valid_bytes, self.torn_tail = self._replay()
        #: records appended since the last compaction (replayed + new)
        self.record_count = len(self.records)
        #: bytes of the log known to hold only complete records — the
        #: rollback point when an append fails mid-frame
        self._valid_bytes = valid_bytes
        self._handle = self.fs.open_append(self.log_path)
        self.fs.truncate(self._handle, valid_bytes)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def _load_snapshot(self) -> Optional[Any]:
        """Decode ``snapshot.json`` if present and intact.

        Snapshots written by :meth:`compact` are wrapped as
        ``{"crc32": c, "snapshot": payload}``; a wrapper whose checksum
        does not match is provable corruption and raises
        :exc:`WALCorruptionError`.  An unparseable or legacy unwrapped
        file is treated as absent (the atomic rename in :meth:`compact`
        means a torn snapshot can only be a leftover ``.tmp``, ignored,
        or damage outside the checksummed contract).
        """
        try:
            raw = json.loads(self.fs.read_text(self.snapshot_path))
        except (OSError, ValueError):
            return None
        if isinstance(raw, dict) and set(raw) == {"crc32", "snapshot"}:
            body = _snapshot_body(raw["snapshot"])
            if zlib.crc32(body) != raw["crc32"]:
                raise WALCorruptionError(
                    f"snapshot checksum mismatch in {self.snapshot_path}"
                )
            payload = raw["snapshot"]
        else:
            payload = raw  # legacy unwrapped snapshot
        try:
            return decode_payload(payload)
        except (ValueError, TypeError) as exc:
            if isinstance(raw, dict) and set(raw) == {"crc32", "snapshot"}:
                # checksum was fine but the payload will not decode:
                # that is corruption, not a torn write
                raise WALCorruptionError(
                    f"undecodable checksummed snapshot: {exc}"
                ) from exc
            return None

    def _replay(self) -> Tuple[List[Any], int, bool]:
        """Scan the log, returning (records, valid_bytes, torn_tail).

        Raises :exc:`WALCorruptionError` on a complete record whose
        checksum or decode fails; tolerates (and reports) incomplete
        tails.
        """
        try:
            data = self.fs.read_bytes(self.log_path)
        except OSError:
            return [], 0, False
        records: List[Any] = []
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                return records, offset, True  # torn header
            length, checksum = _HEADER.unpack_from(data, offset)
            body_start = offset + _HEADER.size
            if length == 0:
                # no real record is empty; zero-filled tail blocks
                # (crash + ext4 zero-fill) read as length 0, crc 0
                return records, offset, True
            if body_start + length > len(data):
                # body past EOF: a tear — or a flipped length field,
                # which is indistinguishable from one (documented
                # ambiguity; the campaign canary is the backstop)
                return records, offset, True
            if length > MAX_RECORD:
                raise WALCorruptionError(
                    f"record at offset {offset} claims {length} bytes "
                    f"(> MAX_RECORD) yet the bytes are present"
                )
            body = data[body_start : body_start + length]
            if zlib.crc32(body) != checksum:
                raise WALCorruptionError(
                    f"checksum mismatch in complete record at offset "
                    f"{offset} of {self.log_path}"
                )
            try:
                records.append(decode_payload(json.loads(body.decode("ascii"))))
            except (ValueError, UnicodeDecodeError) as exc:
                raise WALCorruptionError(
                    f"undecodable record with valid checksum at offset "
                    f"{offset}: {exc}"
                ) from exc
            offset = body_start + length
        return records, offset, False

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def append(self, value: Any, sync: bool = True) -> None:
        """Durably append one record (returns after flush + fsync).

        On ``ENOSPC`` the partial frame is truncated away (so the log
        stays a clean prefix of complete records) and
        :exc:`WALFullError` is raised for the caller to retry.

        ``sync=False`` writes the frame without forcing it to disk —
        the group-commit building block.  Appends are strictly ordered,
        so a crash before the next :meth:`sync` loses a *suffix* of the
        unsynced records, never a middle one: replay always recovers a
        prefix, which is exactly the torn-tail contract.
        """
        body = json.dumps(
            encode_payload(value), separators=(",", ":"), ensure_ascii=True
        ).encode("ascii")
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        try:
            self.fs.append(self._handle, frame)
        except OSError as exc:
            # roll back whatever prefix of the frame made it to disk
            self.fs.truncate(self._handle, self._valid_bytes)
            if exc.errno == errno.ENOSPC:
                raise WALFullError(
                    f"append of {len(frame)} bytes hit ENOSPC; "
                    f"log rolled back to {self._valid_bytes} bytes"
                ) from exc
            raise
        if self.fsync and sync:
            self.fs.fsync(self._handle)
        self._valid_bytes += len(frame)
        self.record_count += 1

    def sync(self) -> None:
        """Force every appended record to disk (one fsync for the lot)."""
        if self.fsync:
            self.fs.fsync(self._handle)

    def compact(self, snapshot_value: Any) -> None:
        """Atomically install ``snapshot_value`` and truncate the log.

        The snapshot is written crc32-wrapped to a tmp file, fsync'd,
        and renamed over ``snapshot.json`` (atomic on POSIX); only then
        is the log truncated.  A crash between the two leaves snapshot
        + full log, which replays to the same state (slot records are
        idempotent overwrites).
        """
        payload = encode_payload(snapshot_value)
        wrapped = {"crc32": zlib.crc32(_snapshot_body(payload)),
                   "snapshot": payload}
        tmp_path = self.snapshot_path + ".tmp"
        self.fs.write_text(
            tmp_path,
            json.dumps(wrapped, separators=(",", ":"), ensure_ascii=True),
            fsync=self.fsync,
        )
        self.fs.replace(tmp_path, self.snapshot_path)
        self.fs.fsync_dir(self.directory)
        self.fs.truncate(self._handle, 0)
        if self.fsync:
            self.fs.fsync(self._handle)
        self.snapshot = snapshot_value
        self.records = []
        self.record_count = 0
        self._valid_bytes = 0

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def close(self) -> None:
        """Close the log file handle (idempotent)."""
        self.fs.close(self._handle)


def _snapshot_body(payload: Any) -> bytes:
    """The canonical bytes a snapshot checksum covers (compact JSON —
    deterministic across a loads/dumps round trip because JSON objects
    preserve document key order)."""
    return json.dumps(
        payload, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


@dataclass
class RecoveredState:
    """Per-slot durable facts folded out of a node's WAL."""

    #: slot → (promised, accepted_ballot, accepted_value)
    acceptors: Dict[int, Tuple[int, int, Optional[Hashable]]] = field(
        default_factory=dict
    )
    #: slot → sticky Quorum acceptance
    quorum: Dict[int, Hashable] = field(default_factory=dict)
    #: slot → decided value (the SMR decided log)
    decided: Dict[int, Hashable] = field(default_factory=dict)
    torn_tail: bool = False
    records_replayed: int = 0

    def slots(self) -> List[int]:
        """Every slot any recovered fact mentions, ascending."""
        return sorted(
            set(self.acceptors) | set(self.quorum) | set(self.decided)
        )

    @property
    def empty(self) -> bool:
        return not (self.acceptors or self.quorum or self.decided)


class NodeWAL:
    """One node's durable state, kept as folded maps over a log.

    ``record(kind, slot, payload)`` durably appends one fact (the kinds
    are the module-level vocabulary: ``"acc"``, ``"qs"``, ``"dec"``) and
    updates the in-memory fold; once ``compact_threshold`` records have
    accumulated the fold is snapshotted and the log truncated.
    ``recovered`` is the fold as of open time — what a restarting
    :class:`~repro.net.node.ReplicaNode` rebuilds its roles from.

    With ``group_commit=True``, :meth:`record_durable` coalesces every
    append issued in one event-loop tick into a *single* fsync: records
    are written unsynced, their ``on_durable`` callbacks queue, and one
    scheduled flush syncs the batch then releases all callbacks.
    Persist-before-reply is preserved — no callback (and therefore no
    buffered reply) fires before the fsync that covers its record — it
    is only the fsync *count* that drops from N to 1 per tick.
    """

    def __init__(
        self,
        directory: str,
        fsync: bool = True,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
        fs: Optional[FaultFS] = None,
        group_commit: bool = False,
    ) -> None:
        self.wal = WriteAheadLog(directory, fsync=fsync, fs=fs)
        self.compact_threshold = compact_threshold
        self.group_commit = group_commit
        #: callbacks awaiting the next group fsync
        self._pending_durable: List[Any] = []
        self._flush_scheduled = False
        #: observability: group flushes performed / records they covered
        self.group_flushes = 0
        self.group_records = 0
        state = RecoveredState(
            torn_tail=self.wal.torn_tail,
            records_replayed=len(self.wal.records),
        )
        if self.wal.snapshot is not None:
            self._apply_snapshot(state, self.wal.snapshot)
        for record in self.wal.records:
            self._apply(state, record)
        self.state = state
        self.recovered = RecoveredState(
            acceptors=dict(state.acceptors),
            quorum=dict(state.quorum),
            decided=dict(state.decided),
            torn_tail=state.torn_tail,
            records_replayed=state.records_replayed,
        )

    @property
    def directory(self) -> str:
        return self.wal.directory

    @staticmethod
    def _apply(state: RecoveredState, record: Any) -> None:
        kind, slot, payload = record
        if kind == "acc":
            state.acceptors[slot] = tuple(payload)
        elif kind == "qs":
            state.quorum[slot] = payload
        elif kind == "dec":
            state.decided[slot] = payload

    @staticmethod
    def _apply_snapshot(state: RecoveredState, snapshot: Any) -> None:
        state.acceptors.update(snapshot.get("acc", {}))
        state.quorum.update(snapshot.get("qs", {}))
        state.decided.update(snapshot.get("dec", {}))

    def record(self, kind: str, slot: int, payload: Any) -> None:
        """Durably log one fact; returns only after it is on disk.

        Raises :exc:`WALFullError` if the disk is full (the fact is
        *not* durable; retry after backoff).  A full disk during the
        follow-on compaction is swallowed: compaction is an
        optimization, and retrying the append would double-log the
        fact.
        """
        record = (kind, slot, payload)
        self.wal.append(record)
        self._apply(self.state, record)
        if self.wal.record_count >= self.compact_threshold:
            try:
                self.compact()
            except WALFullError:
                pass  # deferred: next record retries compaction

    def record_durable(
        self,
        kind: str,
        slot: int,
        payload: Any,
        on_durable: Any,
    ) -> None:
        """Log one fact and invoke ``on_durable`` once it is on disk.

        Without group commit this is ``record`` + an immediate callback.
        With it, the record is appended unsynced and the callback joins
        the batch released by the next scheduled flush — one fsync per
        event-loop tick, however many roles recorded in it.  Raises
        :exc:`WALFullError` exactly like :meth:`record` (the callback
        does not fire; the caller owns the retry).
        """
        if not self.group_commit:
            self.record(kind, slot, payload)
            on_durable()
            return
        record = (kind, slot, payload)
        self.wal.append(record, sync=False)
        self._apply(self.state, record)
        self._pending_durable.append(on_durable)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                self._flush_group()  # no loop: degenerate to sync mode
            else:
                loop.call_soon(self._flush_group)

    def _flush_group(self) -> None:
        """One fsync for every append queued this tick, then release."""
        self._flush_scheduled = False
        pending, self._pending_durable = self._pending_durable, []
        if not pending:
            return
        try:
            self.wal.sync()
        except OSError:
            # a failed fsync means durability is unknowable: fail-stop
            # without releasing any reply (persist-before-reply holds
            # vacuously; the node wedges rather than lies)
            self.close()
            return
        self.group_flushes += 1
        self.group_records += len(pending)
        for callback in pending:
            callback()
        if self.wal.record_count >= self.compact_threshold:
            try:
                self.compact()
            except WALFullError:
                pass  # deferred: next flush retries compaction

    def record_acceptor(
        self, slot: int, triple: Tuple[int, int, Optional[Hashable]]
    ) -> None:
        """Log the acceptor triple of ``slot``."""
        self.record("acc", slot, triple)

    def record_quorum(self, slot: int, accepted: Hashable) -> None:
        """Log the sticky Quorum acceptance of ``slot``."""
        self.record("qs", slot, accepted)

    def record_decided(self, slot: int, value: Hashable) -> None:
        """Log a decided value (the SMR decided log)."""
        self.record("dec", slot, value)

    def compact(self) -> None:
        """Snapshot the current fold and truncate the log."""
        self.wal.compact(
            {
                "acc": dict(self.state.acceptors),
                "qs": dict(self.state.quorum),
                "dec": dict(self.state.decided),
            }
        )

    @property
    def closed(self) -> bool:
        return self.wal.closed

    def close(self) -> None:
        self.wal.close()
