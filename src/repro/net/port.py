"""The substrate port: what a protocol role may ask of its network.

Every algorithm in :mod:`repro.mp` (Quorum, Paxos, Backup) and the SMR
layer above them interacts with its substrate exclusively through the
surface below — the *port*.  Two interchangeable substrates implement
it:

=====================================  =================================
:class:`repro.mp.sim.Network`          virtual time, deterministic,
                                       seeded; message delays are the
                                       paper's own latency currency
:class:`repro.net.transport.AsyncTransport`  wall-clock time, real
                                       asyncio TCP sockets on localhost
=====================================  =================================

A :class:`~repro.mp.sim.Process` holds a reference to its substrate in
``self.network`` and uses only:

* ``network.send(src, dst, message)`` — fire-and-forget asynchronous
  message passing (the substrate may lose, duplicate or delay);
* ``network.call_later(delay, callback) -> handle`` — one-shot timers;
  the handle has ``cancel()``;
* ``network.now`` — the substrate clock (virtual or wall);
* ``network.register(process)`` — attach a role;
* ``network.stats`` — a :class:`~repro.mp.sim.NetworkStats` with
  aggregate and per-link counters;
* ``network.timer_scale(pid)`` — the timer-rate drift currently applied
  to ``pid`` (1.0 when healthy); ``Process.set_timer`` multiplies every
  armed delay by it, which is how the nemesis makes one node's tick run
  fast or slow without the protocol code knowing;
* ``network.local_now(pid)`` — what ``pid``'s local wall clock claims:
  ``now`` plus any clock-skew gray failure scoped to it.

This module carries the :class:`typing.Protocol` definitions so either
substrate can be type-checked against the port; neither imports the
other — conformance is structural.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Protocol, runtime_checkable


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable one-shot timer returned by ``call_later``."""

    def cancel(self) -> None:
        """Revoke the timer; its callback will not run."""


@runtime_checkable
class SubstratePort(Protocol):
    """The full surface a protocol role may use (see module docstring)."""

    @property
    def now(self) -> float:
        """The substrate clock."""

    def send(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Queue a message for asynchronous delivery (may be lost)."""

    def call_later(
        self, delay: float, callback: Callable[[], None]
    ) -> TimerHandle:
        """Schedule ``callback`` after ``delay`` clock units."""

    def register(self, process: Any) -> Any:
        """Attach a process so it can send and receive."""

    def timer_scale(self, pid: Hashable) -> float:
        """The timer-rate drift applying to ``pid`` now (1.0 = honest)."""

    def local_now(self, pid: Hashable) -> float:
        """``pid``'s local clock reading: ``now`` plus active skew."""
