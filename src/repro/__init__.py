"""repro — an executable reproduction of *Speculative Linearizability*.

Guerraoui, Kuncak, Losa — PLDI 2012.

Subpackages:

* :mod:`repro.core` — the trace-based theory: linearizability (new and
  classical definitions, both with complete checkers), speculative
  linearizability, trace properties, intra-object composition.
* :mod:`repro.ioa` — the I/O-automata formalization of Section 6: the
  specification automaton, automaton composition, invariant checking and
  refinement checking (the model-checked counterpart of the paper's
  Isabelle proof).
* :mod:`repro.mp` — the message-passing substrate (discrete-event
  simulator with crashes and loss) plus the Quorum and Backup (Paxos)
  phases of Section 2.1 and their composition.
* :mod:`repro.sm` — the shared-memory substrate (atomic-step interleaving
  machine) plus the splitter, RCons and CASCons of Section 2.5.
* :mod:`repro.smr` — speculative state machine replication over the
  universal ADT (Section 6's application) and a replicated KV store.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
