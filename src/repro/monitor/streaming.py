"""`StreamingMonitor`: the online linearizability verdict for one stream.

The monitor consumes invocation/response events *as they happen* and
maintains, at every instant, the same three-way verdict the post-hoc
checker (:func:`repro.core.fastcheck.check_linearizable`) would return
on the history so far:

* ``ok`` — every prefix admits a linearization;
* ``violation`` — some prefix does not (and, by prefix closure of
  linearizability, no extension ever will — which is what makes
  fail-fast sound: the run can stop the moment the verdict flips);
* ``unknown`` — a search or routing budget was exceeded and the monitor
  degraded rather than guessed.

Structure mirrors the fast-path checker exactly, which is what makes
the streaming verdict agree with the post-hoc one (property-tested in
``tests/test_monitor.py``):

* **Global well-formedness** is tracked at the monitor level — one open
  invocation per client, response input equal to the invocation input
  (Definition 14).  Projections cannot police this (a client with two
  pending invocations on different keys looks fine per key), which is
  why `fastcheck` checks it globally too.
* **Globally invalid inputs** (``adt.is_input`` false on the raw
  payload) are a violation at the event that carries them, matching the
  monolithic checker's invalid-input rejection — this check runs
  *before* key routing, because an invalid payload is typically also
  unroutable and the two checkers must agree on the verdict.
* **Per-key frontiers** (:class:`~repro.monitor.frontier.KeyFrontier`)
  do the incremental search, one per partition key via
  :func:`repro.core.fastcheck.route_action`; without a partition spec a
  single monolithic frontier watches everything.
* **Routing failures on globally-valid events** degrade the verdict to
  ``unknown``.  This is the one honest divergence from the post-hoc
  checker, which falls back to a monolithic search over the *whole*
  trace — impossible online after the prefix has been garbage
  collected.  ``unknown`` never masks a violation: violation dominates.

Composition across shards (one monitor per shard in the pipelined data
plane) is :func:`compose_verdicts` — the same conjunction `loadgen`
applies to post-hoc per-shard verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.actions import Invocation, Response
from ..core.adt import ADT
from ..core.fastcheck import route_action
from ..core.traces import Trace
from .frontier import (
    DEFAULT_WITNESS_LIMIT,
    VIOLATION,
    KeyFrontier,
    RetainedGauge,
)

OK = "ok"


@dataclass
class MonitorReport:
    """A snapshot of the streaming verdict and the monitor's economics."""

    verdict: str
    reason: Optional[str] = None
    events: int = 0
    ops: int = 0
    frontiers: int = 0
    #: events currently held across all witness windows
    retained: int = 0
    #: high-water mark of retained events — the GC bound
    peak_retained: int = 0
    #: events garbage-collected at quiescent points (or truncated)
    gc_drops: int = 0
    violation_key: Optional[Hashable] = None
    witness: Optional[Dict[str, Any]] = None
    per_key: List[Tuple[Hashable, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verdict == OK

    def summary(self) -> str:
        line = (
            f"monitor: {self.verdict} after {self.events} events "
            f"({self.ops} ops, {self.frontiers} frontier(s); "
            f"peak retained {self.peak_retained}, gc'd {self.gc_drops})"
        )
        if self.reason:
            line += f" -- {self.reason}"
        return line

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "reason": self.reason,
            "events": self.events,
            "ops": self.ops,
            "frontiers": self.frontiers,
            "retained": self.retained,
            "peak_retained": self.peak_retained,
            "gc_drops": self.gc_drops,
            "violation_key": self.violation_key,
            "witness": self.witness,
            "per_key": [[key, status] for key, status in self.per_key],
        }


class StreamingMonitor:
    """Online linearizability monitoring of one event stream."""

    def __init__(
        self,
        adt: ADT,
        node_limit: Optional[int] = None,
        config_limit: Optional[int] = None,
        witness_limit: Optional[int] = DEFAULT_WITNESS_LIMIT,
        on_violation: Optional[Callable[["StreamingMonitor"], None]] = None,
        name: str = "monitor",
    ) -> None:
        self.adt = adt
        self.spec = adt.partition
        self.node_limit = node_limit
        self.config_limit = config_limit
        self.witness_limit = witness_limit
        self.on_violation = on_violation
        self.name = name
        self.gauge = RetainedGauge()
        self.frontiers: Dict[Hashable, KeyFrontier] = {}
        #: client -> raw (unprojected) input of its open invocation
        self._open_command: Dict[Hashable, Any] = {}
        #: client -> (op id, partition key); key None = unroutable op
        self._open_meta: Dict[Hashable, Tuple[int, Optional[Hashable]]] = {}
        self._op_counter = 0
        self.events = 0
        self.status = OK
        self.reason: Optional[str] = None
        self.degraded = False
        self.violation_key: Optional[Hashable] = None
        self.witness: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def feed(self, event: Tuple) -> None:
        """Consume one raw `HistoryRecorder` event tuple.

        ``event`` is ``(kind, client, command, response, at)`` exactly as
        the recorder appends (and streams through its tap); the phase tag
        matches the recorder's own ``trace()``.
        """
        kind, client, command, response = event[0], event[1], event[2], event[3]
        if kind == "inv":
            self.observe(Invocation(client, 1, command))
        else:
            self.observe(Response(client, 1, command, response))

    def observe(self, action: Any) -> None:
        """Consume one interface action (Invocation or Response)."""
        index = self.events
        self.events += 1
        if self.status == VIOLATION:
            return
        if isinstance(action, Invocation):
            self._observe_invocation(action, index)
        elif isinstance(action, Response):
            self._observe_response(action, index)
        else:
            # anything else (switch actions, garbage) is ill-formed at
            # the interface; the post-hoc checker rejects it the same way
            self._fail(None, "trace is not well-formed", witness=None)

    def _observe_invocation(self, action: Invocation, index: int) -> None:
        client, payload = action.client, action.input
        if client in self._open_command:
            self._fail(None, "trace is not well-formed", witness=None)
            return
        if not self.adt.is_input(payload):
            self._fail(
                None, f"invalid ADT input at index {index}", witness=None
            )
            return
        op_id = self._op_counter
        self._op_counter += 1
        self._open_command[client] = payload
        if self.spec is None:
            key: Optional[Hashable] = None
            projected_input = payload
        else:
            try:
                key, projected = route_action(self.spec, action)
                projected_input = projected.input
            except Exception:
                self._degrade(
                    f"event at index {index} does not fit the partition "
                    f"spec; verdict unknown"
                )
                self._open_meta[client] = (op_id, None)
                return
        self._open_meta[client] = (op_id, key)
        self._frontier(key).invoke(op_id, client, projected_input)

    def _observe_response(self, action: Response, index: int) -> None:
        client, payload, output = action.client, action.input, action.output
        if (
            client not in self._open_command
            or self._open_command[client] != payload
        ):
            self._fail(None, "trace is not well-formed", witness=None)
            return
        if not self.adt.is_input(payload):
            self._fail(
                None, f"invalid ADT input at index {index}", witness=None
            )
            return
        del self._open_command[client]
        op_id, key = self._open_meta.pop(client)
        if key is None and self.spec is not None:
            # the invocation was unroutable; already degraded there
            return
        if self.spec is None:
            projected_input, projected_output = payload, output
        else:
            try:
                _, projected = route_action(self.spec, action)
                projected_input = projected.input
                projected_output = projected.output
            except Exception:
                self._degrade(
                    f"event at index {index} does not fit the partition "
                    f"spec; verdict unknown"
                )
                frontier = self.frontiers.get(key)
                if frontier is not None:
                    frontier.forget(
                        op_id,
                        "a response on this partition could not be "
                        "projected; verdict unknown",
                    )
                return
        frontier = self._frontier(key)
        frontier.respond(op_id, client, projected_input, projected_output)
        if frontier.status == VIOLATION:
            reason = (
                frontier.reason
                if self.spec is None
                else f"partition {key!r}: {frontier.reason}"
            )
            self._fail(key, reason, witness=frontier.witness)
        elif frontier.degraded and not self.degraded:
            self._degrade(
                frontier.reason
                if self.spec is None
                else f"partition {key!r}: {frontier.reason}"
            )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def resync(self, key: Optional[Hashable], state: Hashable) -> None:
        """Stage an authoritative snapshot state for a degraded key.

        The final verdict stays ``unknown`` (a gap went unchecked), but
        the frontier resumes *watching* from ``state`` at its next
        quiescent point, so later violations are still caught.
        """
        self._frontier(key).resync(state)

    # ------------------------------------------------------------------
    # verdict
    # ------------------------------------------------------------------

    @property
    def verdict(self) -> str:
        if self.status == VIOLATION:
            return "violation"
        if self.degraded:
            return "unknown"
        return OK

    @property
    def violated(self) -> bool:
        return self.status == VIOLATION

    def report(self) -> MonitorReport:
        return MonitorReport(
            verdict=self.verdict,
            reason=self.reason,
            events=self.events,
            ops=self._op_counter,
            frontiers=len(self.frontiers),
            retained=self.gauge.value,
            peak_retained=self.gauge.peak,
            gc_drops=sum(f.gc_drops for f in self.frontiers.values()),
            violation_key=self.violation_key,
            witness=self.witness,
            per_key=sorted(
                ((f.key, f.verdict) for f in self.frontiers.values()),
                key=lambda pair: repr(pair[0]),
            ),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _frontier(self, key: Optional[Hashable]) -> KeyFrontier:
        frontier = self.frontiers.get(key)
        if frontier is None:
            component = (
                self.adt if self.spec is None else self.spec.component(key)
            )
            frontier = KeyFrontier(
                key,
                component,
                node_limit=self.node_limit,
                config_limit=self.config_limit,
                witness_limit=self.witness_limit,
                gauge=self.gauge,
            )
            self.frontiers[key] = frontier
        return frontier

    def _degrade(self, reason: str) -> None:
        if self.status == VIOLATION:
            return
        if not self.degraded:
            self.degraded = True
            self.reason = reason

    def _fail(
        self,
        key: Optional[Hashable],
        reason: str,
        witness: Optional[Dict[str, Any]],
    ) -> None:
        self.status = VIOLATION
        self.reason = reason
        self.violation_key = key
        self.witness = witness
        if self.on_violation is not None:
            self.on_violation(self)


def watch_trace(
    trace: Trace,
    adt: ADT,
    node_limit: Optional[int] = None,
    config_limit: Optional[int] = None,
    witness_limit: Optional[int] = DEFAULT_WITNESS_LIMIT,
) -> MonitorReport:
    """Run the streaming monitor over a finished trace, event by event.

    The replay path of ``python -m repro monitor`` and the reference
    the equivalence property test drives: the verdict must match
    :func:`repro.core.fastcheck.check_linearizable` on the same trace.
    """
    monitor = StreamingMonitor(
        adt,
        node_limit=node_limit,
        config_limit=config_limit,
        witness_limit=witness_limit,
    )
    for action in trace:
        monitor.observe(action)
    return monitor.report()


def compose_verdicts(
    reports: Iterable[MonitorReport],
) -> Tuple[str, Optional[str]]:
    """Conjoin per-shard monitor verdicts: violation > unknown > ok."""
    verdict: str = OK
    reason: Optional[str] = None
    for item in reports:
        if item.verdict == "violation":
            return "violation", item.reason
        if item.verdict == "unknown" and verdict == OK:
            verdict, reason = "unknown", item.reason
    return verdict, reason
