"""The async event tap: recorder → monitor without blocking the hot path.

`HistoryRecorder` calls its tap synchronously from inside the client's
commit path; doing the frontier search there would add checker latency
to every operation.  :class:`MonitorTap` decouples the two: the tap
callback only enqueues the raw event tuple (O(1)) and wakes a
background asyncio task that drains the queue in batches, feeding the
:class:`~repro.monitor.StreamingMonitor` between scheduler ticks.

Ordering is preserved end to end — the recorder appends on a single
asyncio loop, the deque is FIFO, and the drain task is the only
consumer — so the monitor sees exactly the event sequence the post-hoc
checker will read from ``recorder.events``.

Fail-fast protocol: drivers poll :attr:`MonitorTap.violated` between
operations (or register the monitor's ``on_violation`` callback) and
stop issuing load; :meth:`MonitorTap.close` then drains whatever is
still queued so the final report accounts for every recorded event.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Optional, Tuple

from .streaming import MonitorReport, StreamingMonitor

#: events fed per scheduler tick; bounds monitor-induced loop stalls
DEFAULT_DRAIN_BATCH = 256


class MonitorTap:
    """Bridge a `HistoryRecorder` to a monitor via a background drain."""

    def __init__(
        self,
        monitor: StreamingMonitor,
        batch: int = DEFAULT_DRAIN_BATCH,
    ) -> None:
        self.monitor = monitor
        self.batch = batch
        self._queue: Deque[Tuple] = deque()
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._closed = False

    def __call__(self, event: Tuple) -> None:
        """The recorder-facing hook: enqueue and wake, nothing more."""
        self._queue.append(event)
        self._ensure_task()
        assert self._wake is not None
        self._wake.set()

    @property
    def pending(self) -> int:
        """Events recorded but not yet fed to the monitor."""
        return len(self._queue)

    @property
    def violated(self) -> bool:
        """True once the monitor's verdict flipped to violation."""
        return self.monitor.violated

    def report(self) -> MonitorReport:
        return self.monitor.report()

    async def close(self) -> MonitorReport:
        """Stop the drain task after feeding every queued event."""
        self._closed = True
        if self._task is None:
            # no loop ever saw an event; drain inline
            while self._queue:
                self.monitor.feed(self._queue.popleft())
        else:
            assert self._wake is not None
            self._wake.set()
            await self._task
        return self.monitor.report()

    def _ensure_task(self) -> None:
        if self._task is not None:
            return
        # lazily bind to whatever loop the recorder runs on; the
        # recorder only fires from inside client coroutines, so a loop
        # is always running here
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._task = loop.create_task(self._drain())

    async def _drain(self) -> None:
        assert self._wake is not None
        while True:
            if not self._queue:
                if self._closed:
                    return
                self._wake.clear()
                if self._queue or self._closed:
                    continue
                await self._wake.wait()
                continue
            for _ in range(min(self.batch, len(self._queue))):
                self.monitor.feed(self._queue.popleft())
            # yield so the data plane never stalls behind the checker
            await asyncio.sleep(0)
