"""`repro.monitor`: online streaming linearizability monitoring.

The post-hoc pipeline (`loadgen` → record everything →
:func:`repro.core.fastcheck.check_linearizable`) needs memory linear in
the run and only yields a verdict after the run ends.  This package
checks the *same* property online: a :class:`StreamingMonitor` consumes
invocation/response events as they happen, keeps one incremental
search frontier per partition key (:class:`KeyFrontier`, advanced by
:func:`repro.core.linearizability.frontier_step`), garbage-collects
every decided prefix so memory stays O(concurrent window), and flips to
``violation`` — with a ddmin-shrunken witness — the moment some
response cannot be explained.  Budgets degrade the verdict to
``unknown`` instead of OOMing; :meth:`StreamingMonitor.resync` resumes
watching from an authoritative snapshot.

Wiring: :class:`MonitorTap` bridges a live
:class:`~repro.net.client.HistoryRecorder` to a monitor through an
async queue (`loadgen --monitor`, `serve --monitor`, the chaos
campaigns' ``monitor=True``); :func:`watch_trace` replays a finished
trace in streaming mode; :func:`compose_verdicts` conjoins per-shard
monitors exactly like the post-hoc sharded check.  See
docs/MONITORING.md.
"""

from .frontier import (
    DEFAULT_WITNESS_LIMIT,
    KeyFrontier,
    RetainedGauge,
    ddmin_ops,
)
from .streaming import (
    MonitorReport,
    StreamingMonitor,
    compose_verdicts,
    watch_trace,
)
from .tap import MonitorTap

__all__ = [
    "DEFAULT_WITNESS_LIMIT",
    "KeyFrontier",
    "MonitorReport",
    "MonitorTap",
    "RetainedGauge",
    "StreamingMonitor",
    "compose_verdicts",
    "ddmin_ops",
    "watch_trace",
]
