"""Entry points behind ``python -m repro monitor``.

Two modes, both built on the same :class:`StreamingMonitor`:

* **replay** — stream a recorded history artifact (the JSON files
  ``loadgen``/``nemesis`` write) through the monitor event by event,
  exactly as if the run were live.  Sharded artifacts get one monitor
  per shard with the composed verdict, mirroring the pipelined data
  plane.  Exit code 0 = ok, 1 = violation, 2 = unknown.
* **watch** — actively probe a *separately served* cluster (see
  ``python -m repro serve``) on a reserved canary key with a recording
  :class:`~repro.net.client.NetClient` whose history is tapped straight
  into the monitor.  An external watcher can only check what it
  observes, so this is canary monitoring: alternating writes and reads
  whose responses must linearize — exactly the probe discipline the
  chaos campaigns' late readers use to detect forked histories (an
  amnesiac replica that forgot a committed prefix fails the canary's
  next read).

``serve --monitor`` runs the same probe loop in-process next to the
cluster it hosts, turning the server into a self-checking deployment.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, List, Optional, Tuple

from ..net.client import HistoryRecorder, NetClient, OperationTimeout
from ..net.transport import AddressBook, AsyncTransport
from ..smr.universal import UniversalFrontend, kv_store_adt
from .streaming import MonitorReport, StreamingMonitor, compose_verdicts
from .tap import MonitorTap

#: the reserved canary key probes live on, outside the loadgen keyspace
CANARY_KEY = "__monitor__"


def _detuple(value: Any) -> Any:
    """Undo JSON's list-ification of recorded tuples, recursively."""
    if isinstance(value, list):
        return tuple(_detuple(item) for item in value)
    return value


def _event_from_jsonable(entry: dict) -> Tuple:
    return (
        entry["kind"],
        entry["client"],
        _detuple(entry["command"]),
        _detuple(entry["response"]),
        entry.get("at", 0.0),
    )


def load_history(path: str) -> List[List[Tuple]]:
    """Read a history artifact; returns one event list per shard.

    Accepts the ``loadgen`` artifact shape (``{"history": ...}`` with a
    flat event list or a per-shard list of lists), the ``nemesis`` net
    artifact (``{"events": ...}``), or a bare JSON list of events.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        history = payload.get("history", payload.get("events"))
    else:
        history = payload
    if history is None:
        raise ValueError(f"{path}: no 'history' or 'events' field")
    if history and isinstance(history[0], list):
        shards = history
    else:
        shards = [history]
    return [
        [_event_from_jsonable(entry) for entry in shard] for shard in shards
    ]


def replay_history(
    shards: List[List[Tuple]],
    node_limit: Optional[int] = None,
    config_limit: Optional[int] = None,
    witness_limit: Optional[int] = None,
) -> Tuple[str, Optional[str], List[MonitorReport]]:
    """Stream each shard's events through its own monitor; compose."""
    kwargs = {"node_limit": node_limit, "config_limit": config_limit}
    if witness_limit is not None:
        kwargs["witness_limit"] = witness_limit
    reports = []
    for events in shards:
        monitor = StreamingMonitor(kv_store_adt(), **kwargs)
        for event in events:
            monitor.feed(event)
        reports.append(monitor.report())
    verdict, reason = compose_verdicts(reports)
    return verdict, reason, reports


def exit_code(verdict: str) -> int:
    return {"ok": 0, "violation": 1}.get(verdict, 2)


def make_probe(
    transport: AsyncTransport,
    replicas: int,
    monitor: StreamingMonitor,
    op_timeout: float = 5.0,
) -> Tuple[NetClient, MonitorTap]:
    """A recording canary client whose history streams into ``monitor``."""
    tap = MonitorTap(monitor)
    recorder = HistoryRecorder(clock=lambda: transport.now, tap=tap)
    client = NetClient(
        "monitor-probe",
        replicas,
        transport,
        {},
        recorder,
        UniversalFrontend(kv_store_adt()),
        op_timeout=op_timeout,
    )
    return client, tap


async def probe_loop(
    client: NetClient,
    tap: MonitorTap,
    ops: Optional[int],
    interval: float,
    key: str = CANARY_KEY,
    emit=print,
) -> MonitorReport:
    """Alternate canary writes and reads until done, violated or lost.

    ``ops=None`` probes forever (the ``serve --monitor`` mode) — the
    loop then only ends on a violation or an unreachable cluster.
    """
    issued = 0
    counter = 0
    while ops is None or issued < ops:
        if tap.violated:
            break
        command: Tuple
        if issued % 2 == 0:
            counter += 1
            command = ("put", key, counter)
        else:
            command = ("get", key)
        try:
            await client.submit(command)
        except OperationTimeout:
            emit(
                f"  monitor probe timed out on {command!r}; "
                f"stopping (op left pending)"
            )
            break
        issued += 1
        if interval:
            await asyncio.sleep(interval)
    return await tap.close()


async def watch_cluster(
    host: str,
    port_base: int,
    replicas: int,
    ops: Optional[int] = 40,
    interval: float = 0.05,
    node_limit: Optional[int] = None,
    config_limit: Optional[int] = None,
    op_timeout: float = 5.0,
    emit=print,
) -> MonitorReport:
    """Probe a separately-served cluster; return the monitor's report."""
    book = AddressBook()
    for index in range(replicas):
        book.add(f"node{index}", host, port_base + index)
    transport = AsyncTransport("monitor-watch", book)
    monitor = StreamingMonitor(
        kv_store_adt(), node_limit=node_limit, config_limit=config_limit
    )
    client, tap = make_probe(
        transport, replicas, monitor, op_timeout=op_timeout
    )
    try:
        report = await probe_loop(client, tap, ops, interval, emit=emit)
    finally:
        await transport.close()
    return report
