"""Per-key streaming frontiers: the monitor's unit of incremental search.

A :class:`KeyFrontier` tracks one partition (or the whole object, for
ADTs without a :class:`~repro.core.adt.PartitionSpec`) of a live stream
of invocation/response events.  Its state is a *frontier* — the set of
:data:`~repro.core.linearizability.FrontierConfig` configurations that
are consistent with every event seen so far — advanced by
:func:`~repro.core.linearizability.frontier_step` at each response.
The decided prefix is folded into each configuration's ADT state, so
the frontier never looks back at old events: memory is

    O(|frontier| + open operations + witness window)

independent of stream length.  That is the GC invariant the monitor's
bounded-memory claim rests on (``BENCH_monitor`` measures it).

Three outcomes per key:

* **watching** — the frontier is non-empty; every prefix so far is
  linearizable.
* **violation** — the frontier emptied at some response: no
  linearization of the open window explains the observed output.  The
  frontier then shrinks the *witness window* (the events since the last
  quiescent point) with a ddmin pass — dropping whole operations while
  the replay from the quiescent snapshot still empties the frontier —
  and reports the minimal witness.  Removing complete operations from a
  history preserves linearizability, so a still-failing subset is a
  genuine smaller counterexample.
* **unknown** — a per-event node budget or the frontier-size budget was
  exceeded.  The frontier degrades instead of thrashing: it keeps
  tracking open/closed operations (so well-formedness is still policed
  upstream) and can *resync* from an authoritative snapshot state at
  the next quiescent point, but the key's final verdict stays
  ``unknown`` — a gap went unchecked.

Quiescence — no open operations — is when the frontier garbage-collects:
the surviving configurations become the new replay base, the witness
window is cleared, and (if degraded and a resync state is staged)
watching resumes.  If the window outgrows ``witness_limit`` before a
quiescent point, the oldest events are dropped and the window is marked
truncated; a truncated window skips the ddmin pass (its replay base is
stale) and is reported raw.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Hashable, List, Optional

from ..core.adt import ADT
from ..core.linearizability import (
    FrontierBudgetExceeded,
    FrontierConfig,
    frontier_step,
    initial_frontier,
)

WATCHING = "watching"
VIOLATION = "violation"
UNKNOWN = "unknown"

#: default cap on the witness window (events retained per key between
#: quiescent points); beyond it the window truncates oldest-first
DEFAULT_WITNESS_LIMIT = 512

#: probe budget for the ddmin witness shrink
DEFAULT_SHRINK_PROBES = 256


class RetainedGauge:
    """Shared counter of retained events, with a high-water mark.

    One gauge is shared by every frontier of a monitor so
    ``peak`` measures the *total* memory high-water mark, not a per-key
    one — the number the GC-bound benchmark asserts against.
    """

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0
        self.peak = 0

    def add(self, n: int = 1) -> None:
        self.value += n
        if self.value > self.peak:
            self.peak = self.value

    def sub(self, n: int = 1) -> None:
        self.value -= n


def ddmin_ops(
    candidates: List[Hashable],
    fails: Callable[[List[Hashable]], bool],
    max_probes: int = DEFAULT_SHRINK_PROBES,
) -> List[Hashable]:
    """Minimize a list of removable items while ``fails`` stays true.

    Classic delta debugging over ``candidates`` (the always-kept failing
    operation is *not* among them; ``fails`` adds it back internally).
    ``fails(subset)`` must be true for the full list; the return value is
    a subset on which it is still true, 1-minimal when the probe budget
    allows.  Mirrors :func:`repro.faults.shrink.shrink_schedule`, which
    is typed to fault schedules and so not reusable here.
    """
    current = list(candidates)
    if fails([]):
        return []
    granularity = 2
    probes = 0
    while len(current) >= 2 and probes < max_probes:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            probes += 1
            candidate = current[:start] + current[start + chunk:]
            if fails(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if probes >= max_probes:
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(current), granularity * 2)
    return current


class KeyFrontier:
    """The incremental linearizability check for one partition key."""

    def __init__(
        self,
        key: Hashable,
        adt: ADT,
        node_limit: Optional[int] = None,
        config_limit: Optional[int] = None,
        witness_limit: Optional[int] = DEFAULT_WITNESS_LIMIT,
        gauge: Optional[RetainedGauge] = None,
    ) -> None:
        self.key = key
        self.adt = adt
        self.node_limit = node_limit
        self.config_limit = config_limit
        self.witness_limit = witness_limit
        self.gauge = gauge if gauge is not None else RetainedGauge()
        self.configs: FrozenSet[FrontierConfig] = initial_frontier(adt)
        #: replay base: the frontier at the last quiescent point
        self.base: FrozenSet[FrontierConfig] = self.configs
        self.open_inputs: Dict[Hashable, Any] = {}
        #: events since the last quiescent point, for witness replay
        self.window: List[tuple] = []
        self.truncated = False
        self.status = WATCHING
        self.reason: Optional[str] = None
        #: sticky: once a budget blew, the final verdict stays unknown
        self.degraded = False
        self.gc_drops = 0
        self.events = 0
        self.witness: Optional[Dict[str, Any]] = None
        self._staged_resync: Optional[tuple] = None

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------

    def invoke(self, op_id: Hashable, client: Hashable, payload: Any) -> None:
        """An operation opened: it may linearize at any later response."""
        self.events += 1
        if self.status == VIOLATION:
            return
        self._retain(("inv", op_id, client, payload))
        self.open_inputs[op_id] = payload

    def respond(
        self, op_id: Hashable, client: Hashable, payload: Any, output: Any
    ) -> None:
        """An operation closed: advance the frontier past its response."""
        self.events += 1
        if self.status == VIOLATION:
            return
        self._retain(("res", op_id, client, payload, output))
        if op_id not in self.open_inputs:
            # unreachable behind the monitor's well-formedness gate;
            # defensively a violation, never a crash
            self._fail(f"response for unknown operation {op_id!r}")
            return
        if self.status == UNKNOWN:
            del self.open_inputs[op_id]
            self._maybe_quiesce()
            return
        try:
            survivors = frontier_step(
                self.adt.step,
                self.configs,
                self.open_inputs,
                op_id,
                output,
                node_limit=self.node_limit,
            )
        except FrontierBudgetExceeded as exc:
            del self.open_inputs[op_id]
            self._degrade(f"{exc}; verdict unknown, resync from a snapshot")
            self._maybe_quiesce()
            return
        del self.open_inputs[op_id]
        if not survivors:
            self._fail(
                f"frontier emptied: no linearization of the open window "
                f"explains {client!r}'s {payload!r} -> {output!r}"
            )
            return
        if (
            self.config_limit is not None
            and len(survivors) > self.config_limit
        ):
            self._degrade(
                f"frontier grew past the {self.config_limit}-configuration "
                f"budget; verdict unknown, resync from a snapshot"
            )
            self._maybe_quiesce()
            return
        self.configs = survivors
        self._maybe_quiesce()

    def forget(self, op_id: Hashable, reason: str) -> None:
        """Drop an open operation without checking it (and degrade).

        Used when a response cannot be projected into this key's
        alphabet: the monitor cannot fall back to a monolithic check
        mid-stream (the prefix is garbage-collected), so the honest
        verdict is *unknown*, not a guess.
        """
        self.events += 1
        self.open_inputs.pop(op_id, None)
        if self.status != VIOLATION:
            self._degrade(reason)
            self._maybe_quiesce()

    def resync(self, state: Hashable) -> None:
        """Stage an authoritative snapshot state for recovery.

        Applied at the next quiescent point: the frontier re-seeds from
        ``state`` with no promises and resumes watching.  The key stays
        ``degraded`` — a gap went unchecked, so its final verdict is
        ``unknown`` unless a later violation (which dominates) appears.
        """
        self._staged_resync = (state,)
        self._maybe_quiesce()

    # ------------------------------------------------------------------
    # verdict
    # ------------------------------------------------------------------

    @property
    def verdict(self) -> str:
        if self.status == VIOLATION:
            return "violation"
        if self.degraded:
            return "unknown"
        return "ok"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _retain(self, event: tuple) -> None:
        self.window.append(event)
        self.gauge.add(1)
        if (
            self.witness_limit is not None
            and len(self.window) > self.witness_limit
        ):
            drop = len(self.window) - self.witness_limit
            del self.window[:drop]
            self.gauge.sub(drop)
            self.gc_drops += drop
            self.truncated = True

    def _clear_window(self) -> None:
        self.gc_drops += len(self.window)
        self.gauge.sub(len(self.window))
        self.window.clear()
        self.truncated = False

    def _maybe_quiesce(self) -> None:
        if self.open_inputs:
            return
        if self.status == WATCHING:
            self.base = self.configs
            self._clear_window()
        elif self.status == UNKNOWN and self._staged_resync is not None:
            (state,) = self._staged_resync
            self._staged_resync = None
            self.configs = frozenset({(state, frozenset())})
            self.base = self.configs
            self._clear_window()
            self.status = WATCHING

    def _degrade(self, reason: str) -> None:
        if self.status != WATCHING:
            return
        self.status = UNKNOWN
        self.degraded = True
        if self.reason is None:
            self.reason = reason
        self.configs = frozenset()
        # the window cannot witness anything across an unchecked gap
        self._clear_window()

    def _fail(self, reason: str) -> None:
        self.status = VIOLATION
        self.reason = reason
        self.witness = self._shrink_witness()

    # ------------------------------------------------------------------
    # witness extraction
    # ------------------------------------------------------------------

    @staticmethod
    def _jsonable(event: tuple) -> Dict[str, Any]:
        payload = {
            "kind": event[0],
            "op": event[1],
            "client": event[2],
            "input": event[3],
        }
        if event[0] == "res":
            payload["output"] = event[4]
        return payload

    def _replay_fails(self, kept: frozenset) -> bool:
        """Does the window restricted to ``kept`` ops still violate?"""
        configs = self.base
        open_inputs: Dict[Hashable, Any] = {}
        for event in self.window:
            if event[1] not in kept:
                continue
            if event[0] == "inv":
                open_inputs[event[1]] = event[3]
                continue
            if event[1] not in open_inputs:
                return False
            try:
                configs = frontier_step(
                    self.adt.step,
                    configs,
                    open_inputs,
                    event[1],
                    event[4],
                    node_limit=self.node_limit,
                )
            except FrontierBudgetExceeded:
                return False
            del open_inputs[event[1]]
            if not configs:
                return True
        return False

    def _shrink_witness(self) -> Dict[str, Any]:
        window = list(self.window)
        if self.truncated or not window:
            return {
                "partition": self.key,
                "truncated": True,
                "shrunk": False,
                "events": [self._jsonable(e) for e in window],
            }
        ordered_ops: List[Hashable] = []
        seen = set()
        for event in window:
            if event[1] not in seen:
                seen.add(event[1])
                ordered_ops.append(event[1])
        failing_op = window[-1][1]
        removable = [op for op in ordered_ops if op != failing_op]
        kept = ddmin_ops(
            removable,
            lambda subset: self._replay_fails(frozenset(subset) | {failing_op}),
        )
        final = frozenset(kept) | {failing_op}
        return {
            "partition": self.key,
            "truncated": False,
            "shrunk": len(final) < len(ordered_ops),
            "events": [
                self._jsonable(e) for e in window if e[1] in final
            ],
        }
