"""Rule registry and the per-module context rules analyze.

A rule is a class with an ``id``, a human ``title``, a ``scope`` of
package-relative path prefixes it applies to, and a ``check`` method
that yields :class:`~repro.analysis.findings.Finding` objects for one
parsed module.  Rules self-register at import time via
:func:`register`; the engine asks :func:`all_rules` for the active set,
so adding a rule is one new module under ``repro/analysis/rules/``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Type

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import ProjectContext


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    relpath: str  #: posix path from the package root, e.g. "repro/sm/rcons.py"
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: whole-program context (call graph); set only on ``lint --deep``
    project: Optional["ProjectContext"] = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class Rule:
    """Base class for lint rules.

    ``scope`` is a tuple of path prefixes relative to the package root;
    a module is analyzed iff its relpath starts with one of them (an
    empty tuple means every module).  ``exclude`` removes exact paths
    from the scope — e.g. RD03 must not flag ``sm/memory.py`` for
    touching its own cells.
    """

    id: str = "RD00"
    title: str = ""
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    #: deep rules need the project call graph; the engine only runs them
    #: when a :class:`~repro.analysis.callgraph.ProjectContext` is built
    #: (``lint --deep``)
    requires_project: bool = False
    #: minimal violating / conforming snippets shown by ``--explain``
    example_bad: str = ""
    example_good: str = ""

    def applies(self, relpath: str) -> bool:
        """True iff this rule analyzes the module at ``relpath``."""
        if relpath in self.exclude:
            return False
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (override in subclasses)."""
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        """Build a finding anchored at ``node`` (spanning its lines)."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            hint=hint,
            end_line=getattr(node, "end_lineno", None) or line,
        )

    def explain(self) -> str:
        """The rule's documentation + minimal bad/good example."""
        import inspect

        doc = inspect.cleandoc(self.__class__.__doc__ or self.title or "")
        parts = [f"{self.id} — {self.title}", "", doc]
        if self.scope:
            parts += ["", "applies to: " + ", ".join(self.scope)]
        if self.example_bad:
            parts += ["", "bad:", _indent(self.example_bad)]
        if self.example_good:
            parts += ["", "good:", _indent(self.example_good)]
        return "\n".join(parts)


def _indent(snippet: str) -> str:
    return "\n".join(
        "    " + line for line in snippet.strip("\n").splitlines()
    )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the active set (unique by id)."""
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """One fresh instance of every registered rule, ordered by id."""
    from . import rules  # noqa: F401  (importing populates the registry)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    """The registered rule ids, sorted."""
    from . import rules  # noqa: F401

    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """One fresh instance of the rule with ``rule_id``.

    Raises ``KeyError`` with the known ids when the id is unknown.
    """
    from . import rules  # noqa: F401

    normalized = rule_id.strip().upper()
    if normalized not in _REGISTRY:
        raise KeyError(
            f"unknown rule {rule_id!r} (known: {', '.join(sorted(_REGISTRY))})"
        )
    return _REGISTRY[normalized]()
