"""A generic forward/backward fixpoint solver over a CFG.

The classic worklist algorithm, kept deliberately small: an analysis
provides an initial fact, a ``join`` (the lattice's least upper bound)
and a ``transfer`` function per node; :func:`solve` iterates to a
fixpoint and returns the fact *entering* and *leaving* every node.

Facts are ordinary immutable Python values compared with ``==`` —
``frozenset`` is the workhorse.  Termination is the analysis's promise:
``join`` must be monotone-growing over a finite domain (for the
set-union analyses the deep rules use, that is automatic: there are
finitely many (variable, location, flag) triples per function).

Both deep rules are two-phase on purpose: :func:`solve` first, then a
reporting sweep that re-applies ``transfer`` with the solved entry
facts and asks the analysis what it saw.  Keeping reporting out of the
fixpoint loop means a finding is emitted exactly once per program
point, not once per worklist visit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generic, Tuple, TypeVar

from .cfg import CFG, CFGNode

Fact = TypeVar("Fact")


class Analysis(Generic[Fact]):
    """One dataflow problem: direction, lattice, transfer function."""

    #: "forward" propagates entry→exit, "backward" exit→entry
    direction: str = "forward"

    def initial(self, cfg: CFG) -> Fact:
        """The fact at the boundary node (entry when forward)."""
        raise NotImplementedError

    def bottom(self, cfg: CFG) -> Fact:
        """The fact for a not-yet-reached node (join identity)."""
        raise NotImplementedError

    def join(self, a: Fact, b: Fact) -> Fact:
        """Least upper bound of two facts (path merge)."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, fact: Fact) -> Fact:
        """The fact after ``node`` executes on a path carrying ``fact``."""
        raise NotImplementedError


def solve(
    cfg: CFG, analysis: "Analysis[Any]"
) -> Tuple[Dict[int, Any], Dict[int, Any]]:
    """Run ``analysis`` to fixpoint; returns ``(entry_facts, exit_facts)``.

    ``entry_facts[i]`` is the join over predecessors' exit facts (for a
    forward analysis; successors' for a backward one), ``exit_facts[i]``
    the result of ``transfer`` on it.  Unreachable nodes keep ``bottom``.
    """
    forward = analysis.direction == "forward"
    boundary = cfg.entry if forward else cfg.exit

    def inputs(node: CFGNode):
        return node.pred if forward else node.succ

    def outputs(node: CFGNode):
        return node.succ if forward else node.pred

    entry: Dict[int, Any] = {
        node.index: analysis.bottom(cfg) for node in cfg.nodes
    }
    exit_: Dict[int, Any] = {
        node.index: analysis.bottom(cfg) for node in cfg.nodes
    }
    entry[boundary] = analysis.initial(cfg)
    exit_[boundary] = analysis.transfer(cfg.nodes[boundary], entry[boundary])

    work = deque(node.index for node in cfg.nodes)
    while work:
        index = work.popleft()
        node = cfg.nodes[index]
        if index != boundary:
            fact = analysis.bottom(cfg)
            for src in inputs(node):
                fact = analysis.join(fact, exit_[src])
            entry[index] = fact
        out = analysis.transfer(node, entry[index])
        if out != exit_[index]:
            exit_[index] = out
            for dst in outputs(node):
                if dst not in work:
                    work.append(dst)
    return entry, exit_


class SetUnionAnalysis(Analysis[frozenset]):
    """Convenience base: facts are frozensets joined by union."""

    def bottom(self, cfg: CFG) -> frozenset:
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b
