"""The committed baseline of grandfathered findings.

A baseline lets the lint gate turn on while known findings are being
burned down: ``python -m repro lint --baseline`` writes the current
findings to the baseline file, and subsequent runs report only findings
*not* in it.  Entries are keyed by ``rule|path|message`` (no line
number — see :meth:`repro.analysis.findings.Finding.key`) with a count,
so two identical violations in one file need two baseline slots: fixing
one and adding another elsewhere in the file is still caught.

Written baselines are deterministic: entries sorted by (rule, path,
message), keys sorted, trailing newline — so ``--baseline`` twice in a
row is a no-op diff.  Reading validates every entry and raises
:class:`BaselineError` with the file, the entry, and what is wrong, so
a hand-edited or stale baseline fails the CLI with one clear line
instead of a stack trace.

The repo's policy is an **empty** baseline (see ``docs/ANALYSIS.md``);
the file exists so the mechanism stays exercised and any future
grandfathering is an explicit, reviewed diff.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from typing import Counter as CounterT, List, Sequence, Tuple

from .findings import Finding

BASELINE_VERSION = 1

#: the baseline file's name at the repository root
BASELINE_NAME = "lint-baseline.json"

_RULE_ID_RE = re.compile(r"^RD\d{2,}$")


class BaselineError(Exception):
    """A baseline file is malformed or stale; message names the entry."""


def _entry_error(path: str, index: int, problem: str) -> BaselineError:
    return BaselineError(
        f"{path}: baseline entry #{index + 1} {problem} — regenerate with "
        f"'python -m repro lint --baseline' or fix the entry by hand"
    )


def load_baseline(path: str) -> "CounterT[str]":
    """Read a baseline file into a key → count multiset.

    Raises :class:`BaselineError` on any malformed or stale content.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise BaselineError(
            f"{path}: expected a JSON object, got {type(data).__name__}"
        )
    if data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: unsupported baseline version "
            f"{data.get('version')!r} (expected {BASELINE_VERSION})"
        )
    entries = data.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: 'findings' must be a list")
    known_ids = set(_known_rule_ids())
    counts: CounterT[str] = Counter()
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise _entry_error(path, index, "is not an object")
        for field in ("rule", "path", "message"):
            if not isinstance(entry.get(field), str) or not entry[field]:
                raise _entry_error(
                    path, index, f"is missing a string {field!r}"
                )
        rule = entry["rule"]
        if not _RULE_ID_RE.match(rule):
            raise _entry_error(
                path, index, f"has a malformed rule id {rule!r}"
            )
        if rule not in known_ids:
            raise _entry_error(
                path,
                index,
                f"names unknown rule {rule!r} (stale baseline? known: "
                f"{', '.join(sorted(known_ids))})",
            )
        count = entry.get("count", 1)
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise _entry_error(
                path, index, f"has a non-positive count {count!r}"
            )
        key = f"{entry['rule']}|{entry['path']}|{entry['message']}"
        counts[key] += count
    return counts


def _known_rule_ids() -> List[str]:
    from .registry import rule_ids

    return rule_ids()


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, deterministic)."""
    counts: CounterT[Tuple[str, str, str]] = Counter(
        (f.rule, f.path, f.message) for f in findings
    )
    entries = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(counts.items())
    ]
    data = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_baselined(
    findings: Sequence[Finding], baseline: "CounterT[str]"
) -> "tuple[List[Finding], List[Finding]]":
    """Partition findings into (new, baselined) against the multiset.

    Each baseline slot absorbs at most ``count`` findings with its key;
    the rest are new.  Findings are processed in report order, so which
    duplicates are absorbed is deterministic.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
