"""The committed baseline of grandfathered findings.

A baseline lets the lint gate turn on while known findings are being
burned down: ``python -m repro lint --baseline`` writes the current
findings to the baseline file, and subsequent runs report only findings
*not* in it.  Entries are keyed by ``rule|path|message`` (no line
number — see :meth:`repro.analysis.findings.Finding.key`) with a count,
so two identical violations in one file need two baseline slots: fixing
one and adding another elsewhere in the file is still caught.

The repo's policy is an **empty** baseline (see ``docs/ANALYSIS.md``);
the file exists so the mechanism stays exercised and any future
grandfathering is an explicit, reviewed diff.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Counter as CounterT, List, Sequence, Tuple

from .findings import Finding

BASELINE_VERSION = 1

#: the baseline file's name at the repository root
BASELINE_NAME = "lint-baseline.json"


def load_baseline(path: str) -> "CounterT[str]":
    """Read a baseline file into a key → count multiset."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version in {path}")
    counts: CounterT[str] = Counter()
    for entry in data.get("findings", []):
        key = f"{entry['rule']}|{entry['path']}|{entry['message']}"
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, deterministic)."""
    counts: CounterT[Tuple[str, str, str]] = Counter(
        (f.rule, f.path, f.message) for f in findings
    )
    entries = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(counts.items())
    ]
    data = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_baselined(
    findings: Sequence[Finding], baseline: "CounterT[str]"
) -> "tuple[List[Finding], List[Finding]]":
    """Partition findings into (new, baselined) against the multiset.

    Each baseline slot absorbs at most ``count`` findings with its key;
    the rest are new.  Findings are processed in report order, so which
    duplicates are absorbed is deterministic.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
