"""The lint engine: walk files, run rules, apply suppressions + baseline.

The engine is deliberately dumb plumbing — every protocol-aware idea
lives in the rules (``repro/analysis/rules/``).  It parses each module
once, hands the AST to every rule whose scope matches, filters the raw
findings through inline suppressions and the committed baseline, and
folds the result into a :class:`LintReport` that renders as text or
JSON (the CI artifact format).

Scoping is by *package-relative* path: ``…/src/repro/mp/sim.py`` is
analyzed as ``repro/mp/sim.py``, so rules address layers (``repro/mp/``,
``repro/net/``) independently of where the tree is checked out — and
test fixtures opt into a rule by mirroring the layout under a temp dir.
"""

from __future__ import annotations

import ast
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Counter as CounterT, Iterable, List, Optional, Sequence

from .baseline import load_baseline, split_baselined
from .callgraph import ProjectContext, build_project
from .findings import Finding
from .registry import ModuleContext, Rule, all_rules
from .suppressions import split_suppressed


def package_relpath(path: str) -> str:
    """The path from the ``repro`` package root, in posix form.

    Falls back to the path as given (posix-normalized) when it does not
    contain a ``repro`` component — such files still parse, but rules
    scoped to package layers will skip them.
    """
    posix = path.replace(os.sep, "/")
    parts = posix.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return posix.lstrip("./")


def iter_python_files(root: str) -> Iterable[str]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  #: new findings
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    parse_errors: List[str] = field(default_factory=list)
    deep: bool = False  #: whether the interprocedural rules ran

    @property
    def clean(self) -> bool:
        """True iff nothing new was found and every file parsed."""
        return not self.findings and not self.parse_errors

    def all_findings(self) -> List[Finding]:
        """New + baselined findings (what ``--baseline`` writes)."""
        return sorted(self.findings + self.baselined)

    def summary(self) -> str:
        return (
            f"checked {self.checked_files} files: "
            f"{len(self.findings)} findings "
            f"({len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined, "
            f"{len(self.parse_errors)} parse errors)"
        )

    def to_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.extend(f"parse error: {error}" for error in self.parse_errors)
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
            "suppressed": [f.to_json() for f in self.suppressed],
            "parse_errors": list(self.parse_errors),
            "summary": {
                "checked_files": self.checked_files,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "clean": self.clean,
                "deep": self.deep,
            },
        }


def analyze_source(
    source: str,
    relpath: str,
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[ProjectContext] = None,
) -> "tuple[List[Finding], List[Finding]]":
    """Lint one module's source; returns (active, suppressed) findings.

    ``relpath`` should be package-relative (``repro/...``) — it decides
    which rules run.  Raises ``SyntaxError`` if the source cannot parse.
    With no ``project``, interprocedural rules (``requires_project``)
    are skipped; pass ``project`` (or use :func:`run_lint` with
    ``deep=True``) to run them.
    """
    if rules is None:
        rules = all_rules()
    tree = ast.parse(source, filename=relpath)
    ctx = ModuleContext(
        relpath=relpath, source=source, tree=tree, project=project
    )
    raw: List[Finding] = []
    for rule in rules:
        if rule.requires_project and project is None:
            continue
        if rule.applies(relpath):
            raw.extend(rule.check(ctx))
    active, suppressed = split_suppressed(sorted(raw), ctx.lines)
    return active, suppressed


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline_path: Optional[str] = None,
    deep: bool = False,
) -> LintReport:
    """Lint every python file under ``paths`` against the active rules.

    With ``baseline_path`` naming an existing baseline file, findings in
    it are reported separately as grandfathered (:class:`LintReport`'s
    ``baselined``) and do not fail the run.

    ``deep=True`` is the two-phase interprocedural mode: every module is
    parsed first and folded into a project-wide call graph with
    may-suspend summaries (:mod:`~repro.analysis.callgraph`), then the
    full rule set — including ``requires_project`` rules like RD08 —
    runs per module with that :class:`ProjectContext` in hand.
    """
    if rules is None:
        rules = all_rules()
    report = LintReport(deep=deep)
    # Phase 1: parse everything (a parse failure just drops the module
    # from the call graph; it is still reported as a parse error below).
    modules: List["tuple[str, str, str]"] = []  #: (path, relpath, source)
    parsed: List["tuple[str, ast.Module]"] = []
    for root in paths:
        for path in iter_python_files(root):
            relpath = package_relpath(path)
            try:
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                report.parse_errors.append(f"{path}: {exc}")
                continue
            modules.append((path, relpath, source))
            if deep:
                try:
                    parsed.append((relpath, ast.parse(source, filename=path)))
                except SyntaxError:
                    pass  # reported by analyze_source below
    project = build_project(parsed) if deep else None
    # Phase 2: per-module rule runs (deep rules see the whole program).
    collected: List[Finding] = []
    for path, relpath, source in modules:
        try:
            active, suppressed = analyze_source(
                source, relpath, rules, project=project
            )
        except SyntaxError as exc:
            report.parse_errors.append(f"{path}: {exc}")
            continue
        report.checked_files += 1
        collected.extend(active)
        report.suppressed.extend(suppressed)
    collected.sort()
    baseline: "CounterT[str]" = Counter()
    if baseline_path is not None and os.path.exists(baseline_path):
        baseline = load_baseline(baseline_path)
    report.findings, report.baselined = split_baselined(collected, baseline)
    return report
