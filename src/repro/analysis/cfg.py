"""Control-flow graphs with explicit await/yield points.

The deep rules (path-based RD02, the RD08 interleaving detector) need
*paths*, not source order: persist-before-reply is violated by a reply
that beats the fsync on **any** execution path, and a read-modify-write
race exists only when a suspension point sits *between* the read and
the write.  This module lowers one function body to a statement-level
CFG the :mod:`~repro.analysis.dataflow` solver iterates over.

Design choices, all in service of the rules:

* **one node per evaluated step** — a simple statement is one node; a
  compound statement contributes a node for the part of it that is
  actually evaluated at that point (the ``if``/``while`` test, the
  ``for`` iterator, a ``with`` item's context expression) while its
  body statements become their own nodes.  Branch tests being nodes is
  what lets RD08 model "re-reading the attribute in a guard condition
  re-validates it";
* **suspension points are explicit** — every node carries the ``await``
  expressions (and yields) it evaluates, plus synthetic markers for the
  implicit awaits of ``async for`` / ``async with``.  Whether a given
  await can actually suspend is the call graph's business
  (:mod:`~repro.analysis.callgraph`); the CFG only records where they
  sit;
* **exceptions over-approximate** — inside a ``try``, every statement
  gets an edge to every handler, and a bare ``raise``/unhandled path
  flows to the function exit.  More paths can only make a path property
  easier to violate, which is the conservative direction for both deep
  rules;
* **guard context is structural** — nodes remember whether they sit
  inside a lock-shaped ``with`` (``…lock``/``…mutex``/``…sem``) or an
  ``atomic_section(...)`` block, so RD08 can treat lock-held windows as
  guarded and declared-atomic windows as must-not-suspend.

Nested function definitions (and lambdas) open their own scopes: their
bodies are *not* inlined into the enclosing CFG — build a separate CFG
per function.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: substrings marking a ``with`` context expression as a concurrency
#: guard (held lock): suspensions under it are serialized by convention
LOCK_NAME_HINTS = ("lock", "mutex", "sem", "cond")

#: the runtime sanitizer's critical-section guard; statically the
#: opposite of a lock — suspending inside one is itself a violation
ATOMIC_SECTION_NAME = "atomic_section"


class Suspension:
    """One potential suspension point evaluated by a CFG node."""

    __slots__ = ("node", "kind")

    def __init__(self, node: ast.AST, kind: str) -> None:
        self.node = node  #: the ast.Await / ast.Yield / header node
        self.kind = kind  #: "await" | "yield" | "async-for" | "async-with"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Suspension({self.kind}, line {self.node.lineno})"


class CFGNode:
    """One evaluated step of the function body."""

    __slots__ = (
        "index",
        "kind",
        "stmt",
        "exprs",
        "succ",
        "pred",
        "suspensions",
        "guarded",
        "atomic",
    )

    def __init__(
        self,
        index: int,
        kind: str,
        stmt: Optional[ast.AST],
        exprs: Sequence[ast.AST],
        guarded: bool,
        atomic: bool,
    ) -> None:
        self.index = index
        #: "entry" | "exit" | "stmt" | "test" | "iter" | "with"
        self.kind = kind
        self.stmt = stmt  #: the owning statement (anchor for findings)
        #: the expressions this node actually evaluates
        self.exprs = list(exprs)
        self.succ: List[int] = []
        self.pred: List[int] = []
        self.suspensions: List[Suspension] = []
        self.guarded = guarded  #: under a lock-shaped ``with``
        self.atomic = atomic  #: under ``with atomic_section(...)``
        for expr in self.exprs:
            self.suspensions.extend(_find_suspensions(expr))

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 1) if self.stmt else 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFGNode({self.index}, {self.kind}, line {self.line})"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self.entry = self._new("entry", None, ())
        self.exit = self._new("exit", None, ())

    def _new(
        self,
        kind: str,
        stmt: Optional[ast.AST],
        exprs: Sequence[ast.AST],
        guarded: bool = False,
        atomic: bool = False,
    ) -> int:
        node = CFGNode(len(self.nodes), kind, stmt, exprs, guarded, atomic)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succ:
            self.nodes[src].succ.append(dst)
            self.nodes[dst].pred.append(src)

    def statement_nodes(self) -> Iterator[CFGNode]:
        """Every non-synthetic node, in creation (roughly source) order."""
        for node in self.nodes:
            if node.kind not in ("entry", "exit"):
                yield node

    @property
    def has_suspension(self) -> bool:
        """True iff any node evaluates a potential suspension point."""
        return any(node.suspensions for node in self.nodes)


def _walk_same_scope(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function scopes."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _find_suspensions(expr: ast.AST) -> List[Suspension]:
    found: List[Suspension] = []
    for node in _walk_same_scope(expr):
        if isinstance(node, ast.Await):
            found.append(Suspension(node, "await"))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            found.append(Suspension(node, "yield"))
    return found


def _is_lock_context(expr: ast.AST) -> bool:
    """Heuristic: the ``with`` item looks like a held lock/semaphore."""
    for node in _walk_same_scope(expr):
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is not None and any(
            hint in name.lower() for hint in LOCK_NAME_HINTS
        ):
            return True
    return False


def _is_atomic_context(expr: ast.AST) -> bool:
    """True for ``atomic_section(...)`` / ``sanitizer.atomic_section(...)``."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name):
        return func.id == ATOMIC_SECTION_NAME
    if isinstance(func, ast.Attribute):
        return func.attr == ATOMIC_SECTION_NAME
    return False


class _Builder:
    """Recursive-descent CFG construction with loop/try context stacks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: (continue_target, break_collector) per enclosing loop
        self.loops: List[Tuple[int, List[int]]] = []
        #: handler-entry node lists per enclosing try
        self.handlers: List[List[int]] = []
        self.guarded = 0
        self.atomic = 0

    # -- plumbing ------------------------------------------------------

    def node(
        self, kind: str, stmt: ast.AST, exprs: Sequence[ast.AST]
    ) -> int:
        index = self.cfg._new(
            kind, stmt, exprs, self.guarded > 0, self.atomic > 0
        )
        # Over-approximate exceptions: any evaluated step inside a try
        # may transfer to any of its handlers.
        for entries in self.handlers:
            entries.append(index)
        return index

    def link(self, frontier: Sequence[int], target: int) -> None:
        for src in frontier:
            self.cfg._edge(src, target)

    # -- statements ----------------------------------------------------

    def build(self, stmts: Sequence[ast.stmt], frontier: List[int]) -> List[int]:
        """Thread ``stmts`` after ``frontier``; return the new frontier."""
        for stmt in stmts:
            frontier = self.statement(stmt, frontier)
        return frontier

    def statement(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self.if_(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self.while_(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self.for_(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self.try_(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.with_(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            exprs = [e for e in (getattr(stmt, "value", None),
                                 getattr(stmt, "exc", None)) if e]
            index = self.node("stmt", stmt, exprs)
            self.link(frontier, index)
            self.cfg._edge(index, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            index = self.node("stmt", stmt, ())
            self.link(frontier, index)
            if self.loops:
                self.loops[-1][1].append(index)
            return []
        if isinstance(stmt, ast.Continue):
            index = self.node("stmt", stmt, ())
            self.link(frontier, index)
            if self.loops:
                self.cfg._edge(index, self.loops[-1][0])
            return []
        if isinstance(stmt, ast.Match):
            return self.match_(stmt, frontier)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # a nested definition is a single binding step; its body is
            # its own scope (build a separate CFG for it)
            index = self.node("stmt", stmt, ())
            self.link(frontier, index)
            return [index]
        # simple statement: one node evaluating the whole thing
        index = self.node("stmt", stmt, [stmt])
        self.link(frontier, index)
        return [index]

    def if_(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        test = self.node("test", stmt, [stmt.test])
        self.link(frontier, test)
        then_out = self.build(stmt.body, [test])
        else_out = self.build(stmt.orelse, [test]) if stmt.orelse else [test]
        return then_out + else_out

    def while_(self, stmt: ast.While, frontier: List[int]) -> List[int]:
        test = self.node("test", stmt, [stmt.test])
        self.link(frontier, test)
        breaks: List[int] = []
        self.loops.append((test, breaks))
        body_out = self.build(stmt.body, [test])
        self.loops.pop()
        self.link(body_out, test)
        else_out = self.build(stmt.orelse, [test]) if stmt.orelse else [test]
        return else_out + breaks

    def for_(
        self, stmt: Union[ast.For, ast.AsyncFor], frontier: List[int]
    ) -> List[int]:
        head = self.node("iter", stmt, [stmt.iter, stmt.target])
        if isinstance(stmt, ast.AsyncFor):
            head_node = self.cfg.nodes[head]
            head_node.suspensions.append(Suspension(stmt, "async-for"))
        self.link(frontier, head)
        breaks: List[int] = []
        self.loops.append((head, breaks))
        body_out = self.build(stmt.body, [head])
        self.loops.pop()
        self.link(body_out, head)
        else_out = self.build(stmt.orelse, [head]) if stmt.orelse else [head]
        return else_out + breaks

    def with_(
        self, stmt: Union[ast.With, ast.AsyncWith], frontier: List[int]
    ) -> List[int]:
        exprs: List[ast.AST] = [item.context_expr for item in stmt.items]
        head = self.node("with", stmt, exprs)
        self.link(frontier, head)
        is_async = isinstance(stmt, ast.AsyncWith)
        if is_async:
            self.cfg.nodes[head].suspensions.append(
                Suspension(stmt, "async-with")
            )
        locked = any(_is_lock_context(e) for e in exprs)
        atomic = any(_is_atomic_context(e) for e in exprs)
        if locked:
            self.guarded += 1
        if atomic:
            self.atomic += 1
        body_out = self.build(stmt.body, [head])
        if atomic:
            self.atomic -= 1
        if locked:
            self.guarded -= 1
        # __exit__ / __aexit__ runs after the body; async exit suspends
        tail = self.node("with", stmt, ())
        if is_async:
            self.cfg.nodes[tail].suspensions.append(
                Suspension(stmt, "async-with")
            )
        self.link(body_out, tail)
        return [tail]

    def try_(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        reaches_handlers: List[int] = []
        self.handlers.append(reaches_handlers)
        body_out = self.build(stmt.body, frontier)
        self.handlers.pop()
        else_out = (
            self.build(stmt.orelse, body_out) if stmt.orelse else body_out
        )
        handler_outs: List[int] = []
        for handler in stmt.handlers:
            head = self.node("stmt", handler, [handler.type] if handler.type else ())
            self.link(reaches_handlers, head)
            handler_outs.extend(self.build(handler.body, [head]))
        merged = else_out + handler_outs
        if stmt.finalbody:
            merged = self.build(stmt.finalbody, merged)
        return merged

    def match_(self, stmt: ast.Match, frontier: List[int]) -> List[int]:
        head = self.node("test", stmt, [stmt.subject])
        self.link(frontier, head)
        outs: List[int] = [head]  # no case may match
        for case in stmt.cases:
            case_frontier = [head]
            if case.guard is not None:
                guard = self.node("test", stmt, [case.guard])
                self.link(case_frontier, guard)
                case_frontier = [guard]
            outs.extend(self.build(case.body, case_frontier))
        return outs


def build_cfg(func: FunctionNode) -> CFG:
    """Lower one function body to its statement-level CFG."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    frontier = builder.build(func.body, [cfg.entry])
    builder.link(frontier, cfg.exit)
    return cfg
