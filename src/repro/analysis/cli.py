"""The ``python -m repro lint`` entry point.

Self-hosted usage (the CI lint job)::

    python -m repro lint                      # lint src/, text report
    python -m repro lint --deep               # + interprocedural rules (RD08)
    python -m repro lint --format json        # machine-readable artifact
    python -m repro lint --rules RD01,RD08    # run a subset of rules
    python -m repro lint --explain RD08       # rule doc + bad/good example
    python -m repro lint --baseline           # grandfather current findings
    python -m repro lint path/ other.py       # lint explicit paths

Exit status is 1 iff any non-suppressed, non-baselined finding (or a
parse error) remains — the gate CI enforces; 2 on usage errors such as
a malformed baseline file.  ``--baseline`` rewrites the baseline file
from the current findings and exits 0; the committed baseline is empty
by policy (``docs/ANALYSIS.md``), so using it is an explicit, reviewed
decision.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import BASELINE_NAME, BaselineError, write_baseline
from .engine import run_lint
from .registry import get_rule

#: .../src/repro/analysis/cli.py -> the checkout root
_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..")
)


def default_src_root() -> str:
    """The ``src/`` tree this installation lints by default."""
    return os.path.join(_REPO_ROOT, "src")


def default_baseline_path() -> str:
    """The committed baseline file at the checkout root."""
    return os.path.join(_REPO_ROOT, BASELINE_NAME)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with ``repro.__main__``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the repo's src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format (json is the CI artifact shape)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="build the project call graph and run interprocedural "
        "rules (RD08, path-sensitive RD02)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (e.g. RD01,RD08); "
        "default: all registered rules",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RDXX",
        help="print a rule's documentation and a minimal bad/good "
        "example, then exit",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    parser.add_argument(
        "--baseline-file",
        default=None,
        metavar="FILE",
        help=f"baseline location (default: {BASELINE_NAME} at the repo root)",
    )


def _select_rules(spec: Optional[str]):
    """Resolve a ``--rules`` spec to rule instances (None = all)."""
    if spec is None:
        return None
    return [get_rule(token) for token in spec.split(",") if token.strip()]


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if getattr(args, "explain", None):
        try:
            print(get_rule(args.explain).explain())
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    try:
        rules = _select_rules(getattr(args, "rules", None))
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    paths: List[str] = args.paths or [default_src_root()]
    baseline_file: str = args.baseline_file or default_baseline_path()
    try:
        report = run_lint(
            paths,
            rules=rules,
            baseline_path=baseline_file,
            deep=getattr(args, "deep", False),
        )
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.baseline:
        write_baseline(baseline_file, report.all_findings())
        print(
            f"wrote {len(report.all_findings())} findings to {baseline_file}"
        )
        return 0
    if args.fmt == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.to_text())
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="protocol-aware static analysis over the repro tree",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
