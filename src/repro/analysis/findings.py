"""`Finding`: one lint result, with its baseline identity.

A finding pinpoints a violated invariant at ``path:line:col`` and names
the rule that detected it.  Its *key* — ``rule|path|message`` — omits
the line number on purpose: a baseline entry keyed this way survives
unrelated edits above the finding, so grandfathered findings do not
churn as the file grows (the same trade engines like pylint's and
ESLint's baselines make).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str  #: posix path relative to the package root, e.g. repro/mp/sim.py
    line: int  #: 1-based line of the offending node
    col: int  #: 0-based column of the offending node
    rule: str  #: rule id, e.g. "RD01"
    message: str  #: what invariant is violated, and how
    hint: str = ""  #: how to fix it
    #: 1-based last line of the offending construct (0 = just ``line``);
    #: inline suppressions anywhere in line..end_line apply, so a
    #: ``# repro: disable=…`` on any line of a multi-line await works
    end_line: int = 0

    def key(self) -> str:
        """Baseline identity: stable across unrelated line shifts."""
        return f"{self.rule}|{self.path}|{self.message}"

    def span(self) -> "tuple[int, int]":
        """The inclusive 1-based line range this finding covers."""
        return (self.line, max(self.line, self.end_line))

    def format(self) -> str:
        """One human-readable report line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        return text

    def to_json(self) -> Dict[str, Any]:
        """The JSON-report shape of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }
