"""Runtime interleaving sanitizer: the dynamic half of RD08.

The static race detector reasons about *possible* interleavings; this
module checks *actual* ones.  Code declares critical sections —
stretches that must run without another task touching the same owner —
and the sanitizer raises the moment a second asyncio task (or thread)
enters a section that a different task still holds:

    with atomic_section(self, "slot-claim"):
        slot = self._next_slot
        self._next_slot = slot + 1

    # or, for whole methods:
    @atomic_section
    def _claim_slot(self): ...

    # or, hand-rolled revalidation:
    token = interleave_token(self)
    await self._flush()
    assert_no_interleave(self, token)

Everything is a no-op unless sanitizing is enabled (``enable()`` or the
``REPRO_SANITIZE=1`` environment variable), so production paths pay one
truthiness check.  Violations both raise :class:`InterleaveError` in
the *intruding* task and are recorded on a module-level list so a test
or campaign can assert on them even when the error is swallowed by a
supervision layer.

Identity is ``id(owner)``: sections guard an object, not a code region,
so two pipelines interleave freely while two tasks inside one pipeline
conflict.  Re-entry by the *same* task is allowed (depth-counted) —
cooperative code frequently nests its own critical sections.

Note the deliberate asymmetry with the static pass: ``await`` inside an
``atomic_section`` is an RD08 *static* finding (the section is a claim
of no suspension), but the runtime guard only fires when interleaving
actually happens.  That is the cross-check: the static rule flags the
window, the sanitizer proves it live.
"""

from __future__ import annotations

import asyncio
import functools
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "InterleaveError",
    "InterleaveViolation",
    "atomic_section",
    "assert_no_interleave",
    "interleave_token",
    "enable",
    "disable",
    "enabled",
    "violations",
    "reset",
]


class InterleaveError(AssertionError):
    """A second task entered (or mutated under) a held critical section."""


@dataclass(frozen=True)
class InterleaveViolation:
    """A recorded interleaving, kept even if the raise is swallowed."""

    owner: str  #: repr-ish description of the guarded object
    label: str  #: section label ("slot-claim", "wal-commit", ...)
    holder: str  #: task/thread that held the section
    intruder: str  #: task/thread that barged in

    def format(self) -> str:
        return (
            f"interleave: task {self.intruder} entered {self.label!r} "
            f"on {self.owner} while held by {self.holder}"
        )


_enabled = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
_violations: List[InterleaveViolation] = []

#: (owner_id, label) -> (task_name, depth)
_held: Dict[Tuple[int, str], Tuple[str, int]] = {}
#: owner_id -> generation, bumped on every fresh (non-reentrant) entry
_generation: Dict[int, int] = {}


def enable() -> None:
    """Turn the sanitizer on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the sanitizer off; held-section state is cleared."""
    global _enabled
    _enabled = False
    _held.clear()


def enabled() -> bool:
    return _enabled


def violations() -> List[InterleaveViolation]:
    """All violations recorded since the last :func:`reset`."""
    return list(_violations)


def reset() -> None:
    """Forget recorded violations and held sections (between runs)."""
    _violations.clear()
    _held.clear()
    _generation.clear()


def _current_task_name() -> str:
    try:
        task = asyncio.current_task()
    except RuntimeError:
        task = None
    if task is not None:
        return task.get_name()
    return f"thread:{threading.current_thread().name}"


def _describe(owner: Any) -> str:
    name = getattr(owner, "name", None)
    cls = type(owner).__name__
    return f"{cls}({name})" if isinstance(name, str) else cls


def _record(owner: Any, label: str, holder: str, intruder: str) -> None:
    violation = InterleaveViolation(
        owner=_describe(owner), label=label, holder=holder, intruder=intruder
    )
    _violations.append(violation)
    raise InterleaveError(violation.format())


class _NullSection:
    """Reusable no-op section: the disabled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SECTION = _NullSection()


@contextmanager
def _guard(owner: Any, label: str):
    if not _enabled:
        yield
        return
    key = (id(owner), label)
    me = _current_task_name()
    held = _held.get(key)
    if held is not None and held[0] != me:
        _record(owner, label, holder=held[0], intruder=me)
    if held is None:
        _held[key] = (me, 1)
        _generation[id(owner)] = _generation.get(id(owner), 0) + 1
    else:
        _held[key] = (me, held[1] + 1)
    try:
        yield
    finally:
        now = _held.get(key)
        if now is not None:
            if now[1] <= 1:
                del _held[key]
            else:
                _held[key] = (now[0], now[1] - 1)


def atomic_section(owner: Any = None, label: str = "atomic"):
    """Critical-section guard; context manager or method decorator.

    ``with atomic_section(obj, "label"):`` guards ``obj`` for the body;
    ``@atomic_section`` on a method guards ``self`` for the whole call.
    Decorated ``async def`` methods are guarded across their full
    lifetime — including awaits — which is exactly how the sanitizer
    catches a suspension-in-critical-section at runtime.
    """
    if callable(owner):  # bare @atomic_section on a function/method
        func = owner
        section = func.__name__
        if asyncio.iscoroutinefunction(func):

            @functools.wraps(func)
            async def async_wrapper(self, *args, **kwargs):
                if not _enabled:
                    return await func(self, *args, **kwargs)
                with _guard(self, section):
                    return await func(self, *args, **kwargs)

            return async_wrapper

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            if not _enabled:
                return func(self, *args, **kwargs)
            with _guard(self, section):
                return func(self, *args, **kwargs)

        return wrapper
    if not _enabled:
        return _NULL_SECTION
    return _guard(owner, label)


def interleave_token(owner: Any) -> Optional[int]:
    """Snapshot the interleaving generation of ``owner`` before an await."""
    if not _enabled:
        return None
    return _generation.get(id(owner), 0)


def assert_no_interleave(owner: Any, token: Optional[int] = None) -> None:
    """Assert nothing re-entered ``owner``'s sections since ``token``.

    With no token, asserts that no *other* task currently holds any
    section on ``owner`` — the cheap form for call sites that only want
    "I am alone right now".
    """
    if not _enabled:
        return
    me = _current_task_name()
    if token is not None:
        current = _generation.get(id(owner), 0)
        if current != token:
            _record(
                owner,
                "state",
                holder=me,
                intruder=f"generation {token}->{current}",
            )
        return
    owner_id = id(owner)
    for (held_id, held_label), (holder, _depth) in _held.items():
        if held_id == owner_id and holder != me:
            _record(owner, held_label, holder=holder, intruder=me)
