"""RD06 — observed-response discipline at history-recording sites.

The streaming monitor (:mod:`repro.monitor`) is only as sound as the
events fed to it: a recorded *response* asserts "the cluster answered
this" and moves the operation's linearization point into the past.  A
call site that records a response without having awaited anything since
recording the invocation is fabricating that observation — the durable
role's reply cannot have been released and received synchronously, so
the monitor (and every post-hoc checker) would be certifying a response
the wire never carried.  The dual bug — recording a response on a path
that never recorded the invocation — breaks history well-formedness
outright and makes the monitor report "trace is not well-formed"
instead of a verdict about the cluster.

RD06 scans every function in ``repro/net/`` and ``repro/monitor/`` for
calls of the shape ``<recorder>.invoke(...)`` / ``<recorder>.respond(...)``
where the receiver's attribute chain mentions a recorder (any dotted
name containing ``record`` — ``recorder``, ``self.recorder``,
``self._recorder``), and flags, per function:

* a ``respond`` with **no** earlier ``invoke`` in the same function —
  a response-only emission site (the invocation must be recorded first,
  on the same path, before the op is handed to anything that can decide
  it — see ``PipelineClient.submit``);
* a ``respond`` with no ``await`` expression strictly *between* the
  latest preceding ``invoke`` and itself — a synchronously fabricated
  response, recorded before the durable role's reply could have been
  released.

Nested function bodies are analyzed as their own functions, not as part
of the enclosing one (a callback's respond is its own path).  The
simulation-layer recorders (``repro/mp/``, ``repro/sm/``) run under a
synchronous scheduler where responses really are decided in-step, so
they are out of scope by design.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..findings import Finding
from ..registry import ModuleContext, Rule, register

Pos = Tuple[int, int]

#: functions and lambdas open a new analysis scope
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _pos(node: ast.AST) -> Pos:
    return (node.lineno, node.col_offset)


def _attr_chain(node: ast.AST) -> List[str]:
    """The dotted names of an attribute chain, outermost last."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return names


def _is_recorder_call(call: ast.Call, method: str) -> bool:
    """True for ``<chain>.{method}(...)`` where the chain names a
    recorder (some component contains "record")."""
    if not (
        isinstance(call.func, ast.Attribute) and call.func.attr == method
    ):
        return False
    chain = _attr_chain(call.func.value)
    return any("record" in name.lower() for name in chain)


def _shallow_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class Rd06MonitorEvents(Rule):
    """Responses recorded before the reply was observably released."""

    id = "RD06"
    title = "observed-response event emission"
    scope = ("repro/net/", "repro/monitor/")
    example_bad = """\
async def submit(self, command):
    self.recorder.invoke(op)
    self.recorder.respond(op, value)   # nothing awaited in between
"""
    example_good = """\
async def submit(self, command):
    self.recorder.invoke(op)
    value = await self.pipeline.enqueue(command)
    self.recorder.respond(op, value)
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, func)

    def _check_function(
        self,
        ctx: ModuleContext,
        func: ast.AST,
    ) -> Iterator[Finding]:
        invokes: List[Pos] = []
        responds: List[Tuple[Pos, ast.Call]] = []
        awaits: List[Pos] = []
        for node in _shallow_walk(func):
            if isinstance(node, ast.Call):
                if _is_recorder_call(node, "invoke"):
                    invokes.append(_pos(node))
                elif _is_recorder_call(node, "respond"):
                    responds.append((_pos(node), node))
            elif isinstance(node, ast.Await):
                awaits.append(_pos(node))
        name = getattr(func, "name", "<lambda>")
        for pos, call in sorted(responds, key=lambda item: item[0]):
            before = [p for p in invokes if p < pos]
            if not before:
                yield self.finding(
                    ctx,
                    call,
                    f"{name} records a response with no invocation "
                    "recorded earlier on the same path",
                    "record the invocation first (before the op can "
                    "take effect), then await the reply, then respond",
                )
                continue
            latest = max(before)
            if not any(latest < p < pos for p in awaits):
                yield self.finding(
                    ctx,
                    call,
                    f"{name} records a response with no await between "
                    "the invocation and the response — the reply "
                    "cannot have been released and observed yet",
                    "await the cluster's reply (quorum future, pipeline "
                    "future) between recorder.invoke and "
                    "recorder.respond",
                )
