"""RD07 — replicated apply paths route through the session-dedup seam.

Safe retry rests on one invariant: a command that decided in two slots
(a retried or hedged proposal whose first decree also won) must take
effect **once**.  The seam that enforces it is
:mod:`repro.smr.sessions` — :class:`~repro.smr.sessions.SessionedApplier`
for incremental folds, :func:`~repro.smr.sessions.dedup_commands` for
prefix replays.  Any code in the replicated data plane that applies
decided commands to an ADT *directly* reintroduces double-apply: the
exact bug the dedup-disabled mutant canary exists to demonstrate, now
hiding in a code path the canary does not toggle.

RD07 scans ``repro/net/`` and ``repro/smr/`` for:

* **direct ADT application** — a call ``<chain>.transition(...)`` or
  ``<chain>.run(...)`` whose receiver chain names an ADT (a component
  containing ``adt``).  Decided commands must fold through a
  :class:`~repro.smr.sessions.SessionedApplier` (which owns the
  first-occurrence-wins rule) instead;
* **raw prefix responses** (``repro/net/`` only) — a call
  ``<chain>.respond(...)`` on a frontend with no ``dedup_commands``
  call earlier in the same function.  Deriving a response from a log
  prefix that may carry duplicate decrees applies the retried command
  twice.

Two modules are exempt by design: ``repro/smr/sessions.py`` is the
seam itself (its ``transition`` calls *are* the single sanctioned
application site), and ``repro/smr/lockservice.py`` replays the
committed log only inside verification helpers (``table``,
``mutual_exclusion_holds``) that assert invariants over the decided
history — they serve no client response and no retry path feeds them.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..findings import Finding
from ..registry import ModuleContext, Rule, register

Pos = Tuple[int, int]

#: functions and lambdas open a new analysis scope
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: direct-application method names on an ADT receiver
_APPLY_METHODS = ("transition", "run")


def _attr_chain(node: ast.AST) -> List[str]:
    """The dotted names of an attribute chain, outermost last."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return names


def _chain_mentions(call: ast.Call, needle: str) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    chain = _attr_chain(call.func.value)
    return any(needle in name.lower() for name in chain)


def _is_dedup_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "dedup_commands"
    if isinstance(func, ast.Attribute):
        return func.attr == "dedup_commands"
    return False


def _shallow_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register
class Rd07SessionSeam(Rule):
    """Decided commands applied outside the session-dedup seam."""

    id = "RD07"
    title = "session-dedup seam discipline"
    scope = ("repro/net/", "repro/smr/")
    exclude = ("repro/smr/sessions.py", "repro/smr/lockservice.py")
    example_bad = """\
for command in decided_prefix:
    state = self.adt.transition(state, command)  # double-applies retries
"""
    example_good = """\
for slot, command in enumerate(decided_prefix):
    state = self.applier.apply(slot, command)    # first-occurrence-wins
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _APPLY_METHODS
                and _chain_mentions(node, "adt")
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct ADT application (.{node.func.attr}) in the "
                    "replicated data plane bypasses session dedup — a "
                    "retried command that decided twice is applied twice",
                    "fold decided commands through "
                    "repro.smr.sessions.SessionedApplier (or "
                    "dedup_commands for a prefix replay)",
                )
        if not ctx.relpath.startswith("repro/net/"):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            responds: List[Tuple[Pos, ast.Call]] = []
            dedups: List[Pos] = []
            for node in _shallow_walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if _is_dedup_call(node):
                    dedups.append((node.lineno, node.col_offset))
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "respond"
                    and _chain_mentions(node, "frontend")
                ):
                    responds.append(((node.lineno, node.col_offset), node))
            for pos, call in responds:
                if not any(p < pos for p in dedups):
                    yield self.finding(
                        ctx,
                        call,
                        f"{func.name} derives a response from a log "
                        "prefix without dedup_commands — duplicate "
                        "decrees of a retried op would apply twice",
                        "pass the prefix through "
                        "repro.smr.sessions.dedup_commands before "
                        "untagging and responding",
                    )
