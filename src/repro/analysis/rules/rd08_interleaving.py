"""RD08 — asyncio interleaving races on shared role state.

Cooperatively-scheduled coroutines only interleave at suspension
points, so the classic lost-update race looks like this:

    slot = self._next_slot          # read shared state into a local
    await self._quorum.propose(...) # another task may run here
    self._next_slot = slot + 1      # write back the *stale* value

Between the read and the write another task can claim the same slot;
the write-back then silently undoes its claim.  The type system cannot
see this, and neither can a per-statement lint — the read and the
write may be far apart, and the ``await`` may hide inside a helper.

This rule runs the taint analysis over the function's CFG
(:mod:`~repro.analysis.cfg`): a fact is a ``(local, location,
crossed)`` triple meaning *local holds a value read from shared
location, and a real suspension point has (not) intervened*.  Whether
an ``await helper()`` really suspends is answered by the project call
graph's may-suspend summaries (:mod:`~repro.analysis.callgraph`) — so
awaits bubble up through helpers, and awaiting a known non-suspending
coroutine is not an interleaving window.

Shared locations are ``self.*`` attributes (protocol role state, WAL
and session tables — including ``self.table[...]`` element access) and
module globals the function declares ``global``.

What silences a stale write-back:

* **re-validation** — an ``if``/``while``/``assert`` that re-reads the
  location between the suspension and the write;
* **re-reading** the location into the local after the await;
* a **lock-shaped guard** — suspensions under ``async with …lock`` are
  serialized and do not mark taints crossed;
* ``assert_no_interleave(...)`` — the runtime sanitizer's explicit
  "nothing interleaved" check.

``atomic_section`` is deliberately *not* a static silencer: it is a
claim of no suspension, so a suspension point inside one is itself an
RD08 finding (and the runtime sanitizer will catch the interleaving
live — the static/dynamic cross-check the pair is built for).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..cfg import CFG, CFGNode, build_cfg
from ..dataflow import SetUnionAnalysis, solve
from ..findings import Finding
from ..registry import ModuleContext, Rule, register

#: a taint fact: local ``var`` holds a value read from shared ``loc``;
#: ``crossed`` is True once a real suspension point has intervened
Taint = Tuple[str, str, bool]

_SANITIZER_CHECK = "assert_no_interleave"


def _shared_reads(expr: ast.AST, globals_declared: Set[str]) -> Set[str]:
    """Shared locations read anywhere in ``expr`` (``self.x``, globals)."""
    locs: Set[str] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            locs.add(f"self.{node.attr}")
        elif (
            isinstance(node, ast.Name)
            and node.id in globals_declared
            and isinstance(node.ctx, ast.Load)
        ):
            locs.add(f"global {node.id}")
    return locs


def _names_in(expr: ast.AST) -> Set[str]:
    """Plain variable names loaded anywhere in ``expr``."""
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _write_target_loc(
    target: ast.AST, globals_declared: Set[str]
) -> Optional[str]:
    """The shared location a store target mutates, if any.

    ``self.x = …`` and ``self.table[k] = …`` both count as writes to
    the attribute (element writes mutate the shared container).
    """
    if isinstance(target, ast.Subscript):
        target = target.value
        if not isinstance(target, ast.Attribute):
            return None
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return f"self.{target.attr}"
        return None
    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return f"self.{target.attr}"
        return None
    if isinstance(target, ast.Name) and target.id in globals_declared:
        return f"global {target.id}"
    return None


def _calls_sanitizer_check(node: CFGNode) -> bool:
    for expr in node.exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                func = sub.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name == _SANITIZER_CHECK:
                    return True
    return False


class _TaintAnalysis(SetUnionAnalysis):
    """Forward may-analysis of stale shared-state reads.

    During :func:`~repro.analysis.dataflow.solve` it only computes
    facts; with ``collector`` set (the reporting sweep), ``transfer``
    also emits findings for stale write-backs, in-statement RMW across
    an await, and suspensions inside declared-atomic windows.
    """

    def __init__(self, rule: "InterleavingRaceRule", ctx: ModuleContext,
                 globals_declared: Set[str]) -> None:
        self.rule = rule
        self.ctx = ctx
        self.globals_declared = globals_declared
        self.collector: Optional[List[Finding]] = None

    # -- helpers -------------------------------------------------------

    def _suspends(self, node: CFGNode) -> bool:
        project = self.ctx.project
        for suspension in node.suspensions:
            if project is None or project.may_suspend(suspension):
                return True
        return False

    def _emit(self, node: CFGNode, anchor: ast.AST, message: str,
              hint: str) -> None:
        if self.collector is None:
            return
        finding = self.rule.finding(self.ctx, anchor, message, hint)
        if finding not in self.collector:
            self.collector.append(finding)

    # -- the transfer function -----------------------------------------

    def transfer(self, node: CFGNode, fact: frozenset) -> frozenset:
        taints: Set[Taint] = set(fact)
        suspends = self._suspends(node)

        if suspends and node.atomic:
            self._emit(
                node,
                node.stmt or node.exprs[0],
                "suspension point inside atomic_section — a "
                "declared-atomic window must not await",
                "move the await outside the section, or drop the "
                "atomic_section claim",
            )

        # A real, unguarded suspension marks every live taint stale.
        if suspends and not node.guarded:
            taints = {(var, loc, True) for var, loc, _ in taints}

        # Assignments: taint creation, write-back checks, kills.
        for expr in node.exprs:
            if isinstance(expr, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                taints = self._assignment(node, expr, taints, suspends)

        # Re-validation: a branch/loop test or assert that re-reads the
        # location proves it unchanged — clear the crossed flag.
        revalidated: Set[str] = set()
        if node.kind == "test" or isinstance(node.stmt, ast.Assert):
            for expr in node.exprs:
                revalidated |= _shared_reads(expr, self.globals_declared)
        if revalidated:
            taints = {
                (var, loc, crossed and loc not in revalidated)
                for var, loc, crossed in taints
            }

        # assert_no_interleave(...) vouches for every live local.
        if _calls_sanitizer_check(node):
            taints = {(var, loc, False) for var, loc, _ in taints}

        return frozenset(taints)

    def _assignment(
        self,
        node: CFGNode,
        stmt: "ast.Assign | ast.AnnAssign | ast.AugAssign",
        taints: Set[Taint],
        suspends: bool,
    ) -> Set[Taint]:
        value = stmt.value
        if value is None:  # bare annotation: x: int
            return taints
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )

        value_locs = _shared_reads(value, self.globals_declared)
        value_names = _names_in(value)

        for target in targets:
            # tuple targets unpack; check each element
            elements = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in elements:
                loc = _write_target_loc(element, self.globals_declared)
                if loc is None:
                    continue
                if isinstance(stmt, ast.AugAssign):
                    # x @= … reads and writes the target implicitly
                    value_locs = value_locs | {loc}
                if loc in value_locs and suspends:
                    self._emit(
                        node,
                        stmt,
                        f"{loc} is read and written back in one "
                        "statement that awaits — the update uses a "
                        "pre-suspension value",
                        "split the read out, re-validate after the "
                        "await, or guard the section",
                    )
                    continue
                stale = sorted(
                    var
                    for var, taint_loc, crossed in taints
                    if crossed and taint_loc == loc and var in value_names
                )
                if stale:
                    self._emit(
                        node,
                        stmt,
                        f"read-modify-write of {loc} spans an await: "
                        f"{stale[0]!r} was read before the suspension "
                        "and written back after it without "
                        "re-validation",
                        "re-read or re-validate the attribute after "
                        "the await, hold a lock across the window, or "
                        "assert_no_interleave()",
                    )

        # Name targets: old taints die, reads create fresh ones.  A
        # taint born in a suspending statement starts crossed — the
        # shared read happened before the await resumed.
        for target in targets:
            elements = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in elements:
                if not isinstance(element, ast.Name):
                    continue
                var = element.id
                taints = {t for t in taints if t[0] != var}
                born_crossed = suspends and not node.guarded
                for loc in value_locs:
                    taints.add((var, loc, born_crossed))
                # copy propagation: x = f(y) inherits y's taints
                for other, loc, crossed in list(taints):
                    if other in value_names and other != var:
                        taints.add((var, loc, crossed or born_crossed))
        return taints


@register
class InterleavingRaceRule(Rule):
    """Shared role state must not be read-modify-written across an await.

    Every ``await`` is a scheduling point: any other task — a second
    client request, the WAL retry timer, a learner catch-up — may run
    and mutate the same role object.  A local copy of ``self.*`` state
    taken before a suspension is stale after it; writing it back
    overwrites whatever the interleaved task did (lost update), which
    for SMR roles means double-allocated slots, rewound sequence
    numbers, or un-promised ballots.  Re-validate after the await,
    re-read the attribute, hold a lock across the window, or declare
    the section atomic (``atomic_section``) so the runtime sanitizer
    enforces it.
    """

    id = "RD08"
    title = "read-modify-write of shared state across an await"
    scope = ("repro/net/", "repro/smr/", "repro/monitor/")
    requires_project = True
    example_bad = """\
async def claim(self):
    slot = self._next_slot          # read shared state
    await self._quorum.propose(slot)
    self._next_slot = slot + 1      # stale write-back: lost update
"""
    example_good = """\
async def claim(self):
    slot = self._next_slot
    await self._quorum.propose(slot)
    if self._next_slot == slot:     # re-validate after the await
        self._next_slot = slot + 1
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in self._async_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    @staticmethod
    def _async_functions(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield node

    def _check_function(
        self, ctx: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        globals_declared: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        cfg = build_cfg(func)
        if not cfg.has_suspension:
            return
        analysis = _TaintAnalysis(self, ctx, globals_declared)
        entry_facts, _exit_facts = solve(cfg, analysis)
        findings: List[Finding] = []
        analysis.collector = findings
        for node in cfg.statement_nodes():
            analysis.transfer(node, entry_facts[node.index])
        analysis.collector = None
        yield from findings
