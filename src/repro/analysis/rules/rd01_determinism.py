"""RD01 — simulation code must be replayable from its seed.

Every nemesis/chaos campaign line, every ddmin-shrunk reproducer and
every benchmark baseline in this repo is a *seed*: re-running it must
reproduce the execution bit-for-bit.  That only holds if the simulated
layers (``repro/mp``, ``repro/sm``, ``repro/faults``, ``repro/core``)
never consult a wall clock or an unseeded randomness source.  RD01
flags:

* wall-clock reads — ``time.time()``, ``time.monotonic()``,
  ``datetime.now()`` and friends (simulated time is the scheduler's
  virtual clock; the TCP runtime's clock is the substrate port's
  ``now``);
* the process-global RNG — ``random.random()``, ``random.choice()``
  etc., whose hidden state makes runs order-dependent;
* unseeded constructors — ``random.Random()`` with no seed,
  ``random.SystemRandom()``, ``os.urandom()``;
* ``id()`` inside ``__hash__`` or ``hash(...)`` — CPython addresses
  vary run to run, so id-derived hashes scramble any iteration order
  that feeds a schedule.

References to these names (e.g. an injectable ``clock=time.monotonic``
default that real-time transports override) are fine; only *calls* are
flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..findings import Finding
from ..registry import ModuleContext, Rule, register

#: module-level functions of ``random`` that use the hidden global RNG
GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: wall-clock functions of ``time``
TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: wall-clock classmethods of ``datetime.datetime`` / ``datetime.date``
DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

SEED_HINT = "thread a seeded random.Random through the call site"
CLOCK_HINT = (
    "use the substrate port clock (sim virtual time / transport.now)"
)


class _ImportTable:
    """Aliases for the modules and names RD01 cares about."""

    def __init__(self, tree: ast.Module) -> None:
        #: local name → module ("time", "random", "os", "datetime")
        self.modules: Dict[str, str] = {}
        #: local name → (module, function) for from-imports
        self.names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "random", "os", "datetime"):
                        self.modules[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "random",
                "os",
                "datetime",
            ):
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )


def _has_seed(call: ast.Call) -> bool:
    """True iff a Random(...) construction passes any seed."""
    return bool(call.args) or any(kw.arg == "seed" for kw in call.keywords)


@register
class Rd01Determinism(Rule):
    """Wall clocks, global RNG and id-hashes in replayable layers."""

    id = "RD01"
    title = "seeded determinism"
    scope = ("repro/mp/", "repro/sm/", "repro/faults/", "repro/core/")
    example_bad = """\
def jitter(self):
    return time.time() % 1      # wall clock: replay diverges
"""
    example_good = """\
def jitter(self):
    return self.rng.random()    # rng seeded from the schedule
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        table = _ImportTable(ctx.tree)
        hash_defs = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "__hash__"
        ]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(ctx, node, table)
        for defn in hash_defs:
            for node in ast.walk(defn):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "id() inside __hash__: object addresses vary "
                        "between runs",
                        "hash the object's stable identity (pid, name, "
                        "tuple of fields) instead",
                    )

    def _resolve(
        self, call: ast.Call, table: _ImportTable
    ) -> Optional[Tuple[str, str]]:
        """The (module, function) a call resolves to, if trackable."""
        func = call.func
        if isinstance(func, ast.Name):
            return table.names.get(func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                module = table.modules.get(value.id)
                if module is not None:
                    return (module, func.attr)
                # `from datetime import datetime` then datetime.now()
                imported = table.names.get(value.id)
                if imported == ("datetime", "datetime") or imported == (
                    "datetime",
                    "date",
                ):
                    return ("datetime." + imported[1], func.attr)
            elif isinstance(value, ast.Attribute) and isinstance(
                value.value, ast.Name
            ):
                # `import datetime` then datetime.datetime.now()
                module = table.modules.get(value.value.id)
                if module == "datetime" and value.attr in (
                    "datetime",
                    "date",
                ):
                    return ("datetime." + value.attr, func.attr)
        return None

    def _check_call(
        self, ctx: ModuleContext, call: ast.Call, table: _ImportTable
    ) -> Iterator[Finding]:
        resolved = self._resolve(call, table)
        if resolved is None:
            # hash(... id(...) ...) needs no import tracking
            if (
                isinstance(call.func, ast.Name)
                and call.func.id == "hash"
                and any(
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "id"
                    for arg in call.args
                    for inner in ast.walk(arg)
                )
            ):
                yield self.finding(
                    ctx,
                    call,
                    "hash(id(...)): object addresses vary between runs",
                    "hash the object's stable identity instead",
                )
            return
        module, name = resolved
        if module == "time" and name in TIME_FUNCS:
            yield self.finding(
                ctx,
                call,
                f"wall-clock read time.{name}() in replayable code",
                CLOCK_HINT,
            )
        elif module.startswith("datetime") and name in DATETIME_FUNCS:
            yield self.finding(
                ctx,
                call,
                f"wall-clock read {module}.{name}() in replayable code",
                CLOCK_HINT,
            )
        elif module == "os" and name == "urandom":
            yield self.finding(
                ctx,
                call,
                "os.urandom() is unseedable",
                SEED_HINT,
            )
        elif module == "random":
            if name in GLOBAL_RNG_FUNCS:
                yield self.finding(
                    ctx,
                    call,
                    f"random.{name}() uses the process-global RNG",
                    SEED_HINT,
                )
            elif name == "Random" and not _has_seed(call):
                yield self.finding(
                    ctx,
                    call,
                    "random.Random() constructed without a seed",
                    SEED_HINT,
                )
            elif name == "SystemRandom":
                yield self.finding(
                    ctx,
                    call,
                    "random.SystemRandom() is unseedable",
                    SEED_HINT,
                )
