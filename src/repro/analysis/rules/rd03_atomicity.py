"""RD03 — shared memory only through the atomic read/write/cas API.

The Section 5 algorithms (RCons, CASCons, the splitter) are proved
against *atomic registers and CAS*: every primitive is one serialized
step of the interleaving scheduler, which is what makes the cells
linearizable by construction and the E7 operation census meaningful.
Code in ``repro/sm/`` that reaches around
:class:`repro.sm.memory.SharedMemory`'s API breaks both properties at
once: the access is invisible to the scheduler (so it is not atomic in
the explored interleavings) and uncounted (so the census lies).

RD03 flags, everywhere in ``repro/sm/`` except ``memory.py`` itself:

* any access to the private cell map ``._cells`` (read or write);
* calls to ``.peek(...)`` — the declared *test helper* that skips
  operation counting; algorithm code must issue a ``("read", name)``
  operation through the scheduler instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, Rule, register


@register
class Rd03Atomicity(Rule):
    """Direct cell access bypassing the read/write/cas API."""

    id = "RD03"
    title = "atomic-only shared memory access"
    scope = ("repro/sm/",)
    exclude = ("repro/sm/memory.py",)
    example_bad = """\
value = memory._cells[name]          # invisible to the scheduler
other = memory.peek(name)            # uncounted test helper
"""
    example_good = """\
value = yield ("read", name)         # one serialized, counted step
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "_cells":
                yield self.finding(
                    ctx,
                    node,
                    "direct access to SharedMemory._cells bypasses the "
                    "atomic read/write/cas API",
                    "issue a ('read'|'write'|'cas', ...) operation "
                    "through the scheduler instead",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "peek"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "peek() skips the scheduler and the operation "
                    "census (it is a test helper)",
                    "yield a ('read', name) operation so the access is "
                    "an atomic, counted step",
                )
