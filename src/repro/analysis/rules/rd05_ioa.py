"""RD05 — I/O automaton definitions must be well-formed.

The Section 6 formalization (and the model checker driving Theorem 3's
executable counterpart) leans on two structural properties of every
automaton:

* **Signature totality.**  An IOA is input-enabled and its transition
  relation covers the whole signature; operationally, a subclass of
  :class:`repro.ioa.automaton.IOAutomaton` must define all six hooks —
  ``initial_states``, ``is_input``, ``is_output``, ``is_internal``,
  ``transitions``, ``input_step``.  A missing hook is a signature
  action with no declared transition: the base class raises
  ``NotImplementedError`` only when the model checker happens to reach
  it, i.e. the hole is found by state-space luck instead of at diff
  time.

* **Mutation-free preconditions.**  The signature predicates and the
  transition enumerators are consulted *speculatively* — during
  composition broadcast, enabledness checks and hiding — arbitrarily
  often and in arbitrary order.  If ``is_input``/``transitions``/
  ``input_step`` mutate ``self``, exploring the state space changes the
  automaton, and model-checking results become schedule-dependent.
  States must be values; hooks must be observers.

Scoped to ``repro/ioa/``.  Only classes that directly subclass
``IOAutomaton`` are held to the totality check (deeper subclassing
inherits concrete hooks the rule cannot see in one file); the purity
check also covers any class named ``*Automaton``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..findings import Finding
from ..registry import ModuleContext, Rule, register

REQUIRED_HOOKS = (
    "initial_states",
    "is_input",
    "is_output",
    "is_internal",
    "transitions",
    "input_step",
)

#: methods that must not mutate self (preconditions + transition hooks)
PURE_METHODS = frozenset(
    {
        "initial_states",
        "is_input",
        "is_output",
        "is_internal",
        "is_external",
        "in_signature",
        "transitions",
        "input_step",
    }
)

#: method names that mutate their receiver
MUTATORS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _base_names(cls: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _self_chain_root(node: ast.AST) -> Optional[ast.AST]:
    """Walk an attribute/subscript chain to its root expression."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _is_self_rooted(node: ast.AST) -> bool:
    root = _self_chain_root(node)
    return isinstance(root, ast.Name) and root.id == "self"


@register
class Rd05IoaWellFormedness(Rule):
    """Total signatures and mutation-free hooks for I/O automata."""

    id = "RD05"
    title = "IOA well-formedness"
    scope = ("repro/ioa/",)
    example_bad = """\
class Chan(IOAutomaton):
    def transitions(self, state, action):
        self.count += 1              # exploring mutates the automaton
        ...                          # (and input_step is missing)
"""
    example_good = """\
class Chan(IOAutomaton):
    def transitions(self, state, action):
        return [state.deliver(action)]   # pure observer, all 6 hooks
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            bases = _base_names(cls)
            direct_subclass = "IOAutomaton" in bases
            automaton_like = direct_subclass or cls.name.endswith(
                "Automaton"
            )
            if not automaton_like:
                continue
            methods = {
                item.name: item
                for item in cls.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if direct_subclass:
                missing = [
                    hook for hook in REQUIRED_HOOKS if hook not in methods
                ]
                if missing:
                    yield self.finding(
                        ctx,
                        cls,
                        f"automaton {cls.name} leaves signature hooks "
                        f"undeclared: {', '.join(missing)} — part of its "
                        "signature has no transition",
                        "define every hook; input_step may return the "
                        "state unchanged for ignored inputs",
                    )
            for name, method in methods.items():
                if name in PURE_METHODS:
                    yield from self._check_purity(ctx, cls, method)

    def _check_purity(
        self, ctx: ModuleContext, cls: ast.ClassDef, method: ast.AST
    ) -> Iterator[Finding]:
        label = f"{cls.name}.{getattr(method, 'name', '?')}"
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue  # a bare annotation binds nothing
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if target is not None and _is_self_rooted(target):
                        yield self.finding(
                            ctx,
                            node,
                            f"{label} mutates self — preconditions and "
                            "transition hooks must be observers",
                            "compute into locals and return a new "
                            "state/value instead",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if _is_self_rooted(target):
                        yield self.finding(
                            ctx,
                            node,
                            f"{label} deletes state on self — hooks must "
                            "be observers",
                            "keep states immutable values",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATORS
                and _is_self_rooted(node.func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{label} calls {node.func.attr}() on self state — "
                    "preconditions and transition hooks must be "
                    "observers",
                    "build the collection locally and return it",
                )
