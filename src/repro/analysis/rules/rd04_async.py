"""RD04 — asyncio hygiene in the TCP runtime.

Two failure modes that silently corrupt wire-level histories:

* **Orphan tasks.**  ``asyncio.create_task`` / ``loop.create_task`` /
  ``asyncio.ensure_future`` called as a bare statement drops the only
  reference to the task: the event loop holds it weakly, so it can be
  garbage-collected mid-flight, and its exception — if it survives long
  enough to raise one — is reported to nobody.  A reader task that dies
  this way looks exactly like a lossy network.  Retain the handle
  (assign it, append it to a task list, await it) so cancellation and
  exceptions have an owner.

* **Silent broad excepts.**  ``except Exception:`` (or worse) with a
  body that neither logs nor re-raises converts every bug in the
  handler into a dropped frame.  The transport's discipline is that
  narrowed exceptions (``ConnectionError``, ``FrameError``) may be
  swallowed where the protocol treats them as loss — anything broader
  must be logged or propagated.

Scoped to ``repro/net/`` — the layer where a swallowed error and a
lost frame are indistinguishable to the linearizability checker.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, Rule, register

SPAWNERS = frozenset({"create_task", "ensure_future"})
BROAD = frozenset({"Exception", "BaseException"})
LOG_METHODS = frozenset(
    {"exception", "error", "warning", "info", "debug", "log", "critical"}
)


def _is_spawner(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in SPAWNERS
    if isinstance(func, ast.Name):
        return func.id in SPAWNERS
    return False


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except Exception``/``BaseException`` or a
    tuple containing one of them."""
    node = handler.type
    if node is None:
        return True
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in BROAD:
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in BROAD:
            return True
    return False


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    """True iff the body logs, re-raises, or does real work."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in LOG_METHODS:
                return True
    # A body that only passes / returns / continues is a swallow; any
    # other statement counts as handling.
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Return):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring / ellipsis
        return True
    return False


@register
class Rd04AsyncHygiene(Rule):
    """Fire-and-forget tasks and silent broad excepts in net/."""

    id = "RD04"
    title = "async hygiene"
    scope = ("repro/net/",)
    example_bad = """\
asyncio.create_task(self._reader())  # orphan: GC can kill it silently
try:
    frame = decode(data)
except Exception:
    pass                             # every bug becomes a lost frame
"""
    example_good = """\
self._tasks.append(asyncio.create_task(self._reader()))
try:
    frame = decode(data)
except FrameError:
    logger.warning("bad frame from %s", src)
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _is_spawner(node.value)
            ):
                yield self.finding(
                    ctx,
                    node.value,
                    "fire-and-forget create_task: the loop keeps only a "
                    "weak reference, so the task can vanish mid-flight "
                    "and its exception is lost",
                    "retain the handle (assign it or append it to a "
                    "task list) so it can be awaited or cancelled",
                )
            elif isinstance(node, ast.ExceptHandler):
                if _is_broad(node) and not _handles_visibly(node):
                    yield self.finding(
                        ctx,
                        node,
                        "broad except swallows errors silently — a bug "
                        "here is indistinguishable from frame loss",
                        "narrow the exception types, or log before "
                        "returning",
                    )
