"""RD02 — persist-before-reply in the TCP runtime's durable roles.

The WAL discipline of :mod:`repro.net.node`: while a durable role's
handler runs, outbound messages are buffered; the role's changed
``durable_state()`` is appended (and fsync'd) to the WAL; only then are
the buffered replies released.  A reply that escapes *before* the
append is a promise a crash can erase — the exact bug class the
amnesiac-node canary exists to catch dynamically.  RD02 catches it at
diff time.

A class is *durable* when it derives from ``_DurableRole``, is
``_DurableRole`` itself, or touches ``self._wal`` or ``self._fs``
anywhere (roles built straight on the injectable filesystem seam are
held to the same discipline as WAL-backed ones).

Persist-before-reply is a **path** property, and the rule checks it as
one: the handler's CFG (:mod:`~repro.analysis.cfg`) is run through a
two-state typestate analysis — every path starts *unpersisted* and
becomes *persisted* at a persistence point.  Persistence points are

* a WAL append — ``…wal.record(...)`` / ``…wal.record_decided(...)`` /
  ``…wal.record_durable(...)`` (the group-commit entry point whose
  callback fires only after the shared fsync) — or a direct
  :class:`FaultFS` point (``…fs.append(...)`` / ``…fs.fsync(...)``);
* a call to a ``self.`` method that *transitively* performs one — so
  the append may live in a helper and still count (method summaries
  are resolved through module-local base classes);
* ``super().on_message(...)`` delegation, but only in a handler with
  no persistence points of its own (the override persists on the
  subclass's behalf; a handler that also appends is held to the
  ordering between its own appends and its replies).

And the violations, judged per reachable state rather than source
order:

* an emit — ``super().send(...)``, the release of buffered frames —
  reachable in the *unpersisted* state is a persist-before-reply
  violation: an append that exists in the source but is skipped on
  some branch no longer hides the bug;
* an emit in a handler with no persistence point at all is flagged
  too (unless delegation covered it, per the above);
* a write to a *durable attribute* — one that the class's own
  ``durable_state()`` reads — reachable in the *persisted* state
  diverges memory from disk without re-logging, so the next crash
  recovers stale state.

The rule is scoped to ``repro/net/``; volatile roles (no WAL contact)
are never analyzed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..cfg import CFG, CFGNode, build_cfg
from ..dataflow import SetUnionAnalysis, solve
from ..findings import Finding
from ..registry import ModuleContext, Rule, register

#: WAL append methods (the persistence points)
WAL_APPENDS = frozenset({"record", "record_decided", "record_durable"})

#: FaultFS methods that make bytes durable when called on an fs seam
FS_PERSISTS = frozenset({"append", "fsync"})

#: typestate values: unpersisted / persisted
_U, _P = "unpersisted", "persisted"

Pos = Tuple[int, int]


def _pos(node: ast.AST) -> Pos:
    return (node.lineno, node.col_offset)


def _is_super_call(call: ast.Call, attr: str) -> bool:
    """True for ``super().<attr>(...)``."""
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == attr
        and isinstance(call.func.value, ast.Call)
        and isinstance(call.func.value.func, ast.Name)
        and call.func.value.func.id == "super"
    )


def _attr_chain(node: ast.AST) -> List[str]:
    """The dotted names of an attribute chain, outermost last."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return names


def _is_fs_name(name: str) -> bool:
    """True for names that denote a :class:`FaultFS` seam (``fs``,
    ``_fs``, ``faultfs``, ``wal_fs`` …) — deliberately *not* any name
    merely containing "fs" (``offsets`` is a list, not a disk)."""
    lowered = name.lower()
    return (
        lowered in ("fs", "_fs")
        or "faultfs" in lowered
        or lowered.startswith("fs_")
        or lowered.endswith("_fs")
    )


def _is_wal_append(call: ast.Call) -> bool:
    """True for a persistence point: ``<wal chain>.record*(...)`` or a
    direct ``<fs chain>.append/fsync(...)`` on the FaultFS seam."""
    if not isinstance(call.func, ast.Attribute):
        return False
    chain = _attr_chain(call.func.value)
    if call.func.attr in WAL_APPENDS:
        return any("wal" in name.lower() for name in chain)
    if call.func.attr in FS_PERSISTS:
        return any(_is_fs_name(name) for name in chain)
    return False


def _self_method_call(call: ast.Call) -> Optional[str]:
    """The method name of a direct ``self.<m>(...)`` call, if any."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    return None


def _references_wal(node: ast.AST) -> bool:
    """True iff the subtree reads or writes ``self._wal``/``self._fs``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr in ("_wal", "_fs")
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            return True
    return False


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """The attribute name if ``node`` is a ``self.X`` target."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _durable_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes the class's own ``durable_state`` reads."""
    attrs: Set[str] = set()
    for item in cls.body:
        if (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "durable_state"
        ):
            for node in ast.walk(item):
                name = _self_attr_target(node)
                if name is not None and not name.startswith("_wal"):
                    attrs.add(name)
    return attrs


def _own_methods(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _flattened_methods(
    cls: ast.ClassDef, classes: Dict[str, ast.ClassDef]
) -> Dict[str, ast.AST]:
    """The class's methods, module-local bases included (nearest wins)."""
    methods: Dict[str, ast.AST] = {}
    seen: Set[str] = set()
    stack = [cls]
    while stack:
        current = stack.pop(0)
        if current.name in seen:
            continue
        seen.add(current.name)
        for name, fn in _own_methods(current).items():
            methods.setdefault(name, fn)
        for base in current.bases:
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if base_name is not None and base_name in classes:
                stack.append(classes[base_name])
    return methods


def _persisting_methods(
    cls: ast.ClassDef, classes: Dict[str, ast.ClassDef]
) -> Set[str]:
    """Methods that transitively reach a WAL append via ``self.`` calls."""
    methods = _flattened_methods(cls, classes)
    persisting: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, fn in methods.items():
            if name in persisting:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                callee = _self_method_call(node)
                if _is_wal_append(node) or (
                    callee is not None and callee in persisting
                ):
                    persisting.add(name)
                    changed = True
                    break
    return persisting


class _PersistTypestate(SetUnionAnalysis):
    """Forward typestate: which of {unpersisted, persisted} reach a node."""

    def __init__(self, persisting: Set[str], handler_persists: bool) -> None:
        self.persisting = persisting
        self.handler_persists = handler_persists

    def initial(self, cfg: CFG) -> frozenset:
        return frozenset({_U})

    def node_persists(self, node: CFGNode) -> bool:
        for expr in node.exprs:
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call):
                    continue
                if _is_wal_append(call):
                    return True
                callee = _self_method_call(call)
                if callee is not None and callee in self.persisting:
                    return True
                # delegation persists on our behalf — but only in a
                # handler with no persistence points of its own
                if not self.handler_persists and _is_super_call(
                    call, "on_message"
                ):
                    return True
        return False

    def transfer(self, node: CFGNode, fact: frozenset) -> frozenset:
        if fact and self.node_persists(node):
            return frozenset({_P})
        return fact


@register
class Rd02Durability(Rule):
    """Replies before WAL appends, and post-persist durable mutations."""

    id = "RD02"
    title = "persist-before-reply durability"
    scope = ("repro/net/",)
    example_bad = """\
class Hasty(_DurableRole):
    def on_message(self, src, message):
        if message[0] == "fast-read":
            super().send(src, ("ack",))   # path with no append!
            return
        self._wal.record(self._wal_kind, self._wal_slot, self.state)
        super().send(src, ("ack",))
"""
    example_good = """\
class Careful(_DurableRole):
    def on_message(self, src, message):
        self._wal.record(self._wal_kind, self._wal_slot, self.state)
        super().send(src, ("ack",))       # every path persisted first
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            if not self._is_durable(cls):
                continue
            durable_attrs = _durable_attrs(cls)
            persisting = _persisting_methods(cls, classes)
            for item in cls.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "on_message"
                ):
                    yield from self._check_handler(
                        ctx, cls, item, durable_attrs, persisting
                    )

    def _is_durable(self, cls: ast.ClassDef) -> bool:
        if cls.name == "_DurableRole":
            return True
        for base in cls.bases:
            if isinstance(base, ast.Name) and base.id == "_DurableRole":
                return True
            if isinstance(base, ast.Attribute) and base.attr == "_DurableRole":
                return True
        return _references_wal(cls)

    def _check_handler(
        self,
        ctx: ModuleContext,
        cls: ast.ClassDef,
        handler: "ast.FunctionDef | ast.AsyncFunctionDef",
        durable_attrs: Set[str],
        persisting: Set[str],
    ) -> Iterator[Finding]:
        # Does the handler itself reach a persistence point anywhere?
        # (Decides whether delegation counts, and which message an
        # unpersisted emit gets.)
        handler_persists = False
        for node in ast.walk(handler):
            if isinstance(node, ast.Call):
                callee = _self_method_call(node)
                if _is_wal_append(node) or (
                    callee is not None and callee in persisting
                ):
                    handler_persists = True
                    break

        cfg = build_cfg(handler)
        analysis = _PersistTypestate(persisting, handler_persists)
        entry_facts, _exit = solve(cfg, analysis)

        for node in cfg.statement_nodes():
            states = entry_facts[node.index]
            if not states:
                continue  # unreachable
            yield from self._check_node(
                ctx, cls, node, states, durable_attrs, handler_persists
            )

    def _check_node(
        self,
        ctx: ModuleContext,
        cls: ast.ClassDef,
        node: CFGNode,
        states: frozenset,
        durable_attrs: Set[str],
        handler_persists: bool,
    ) -> Iterator[Finding]:
        # in-statement persists that precede an emit in the same node
        persist_positions: List[Pos] = []
        emits: List[ast.Call] = []
        for expr in node.exprs:
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call):
                    continue
                if _is_wal_append(call):
                    persist_positions.append(_pos(call))
                elif _is_super_call(call, "send"):
                    emits.append(call)
        for call in sorted(emits, key=_pos):
            if _U not in states:
                continue
            if persist_positions and min(persist_positions) < _pos(call):
                continue  # this very statement persisted first
            if handler_persists:
                yield self.finding(
                    ctx,
                    call,
                    f"{cls.name}.on_message releases a reply before the "
                    "WAL append — a crash can erase the promised state",
                    "buffer sends while the handler runs and release "
                    "them only after wal.record(...)",
                )
            else:
                yield self.finding(
                    ctx,
                    call,
                    f"{cls.name}.on_message releases a reply with no WAL "
                    "append on the handler path",
                    "append the changed durable_state() to the WAL "
                    "(and fsync) before any super().send",
                )
        if durable_attrs and _P in states:
            for expr in node.exprs:
                if not isinstance(expr, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    expr.targets
                    if isinstance(expr, ast.Assign)
                    else [expr.target]
                )
                for target in targets:
                    for leaf in ast.walk(target):
                        name = _self_attr_target(leaf)
                        if name is not None and name in durable_attrs:
                            yield self.finding(
                                ctx,
                                expr,
                                f"{cls.name}.on_message mutates durable "
                                f"attribute {name!r} after the WAL append "
                                "— recovery would restore stale state",
                                "mutate durable attributes before "
                                "capturing durable_state(), or re-log "
                                "after the change",
                            )
