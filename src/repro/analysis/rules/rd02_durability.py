"""RD02 — persist-before-reply in the TCP runtime's durable roles.

The WAL discipline of :mod:`repro.net.node`: while a durable role's
handler runs, outbound messages are buffered; the role's changed
``durable_state()`` is appended (and fsync'd) to the WAL; only then are
the buffered replies released.  A reply that escapes *before* the
append is a promise a crash can erase — the exact bug class the
amnesiac-node canary exists to catch dynamically.  RD02 catches it at
diff time.

A class is *durable* when it derives from ``_DurableRole``, is
``_DurableRole`` itself, or touches ``self._wal`` or ``self._fs``
anywhere (roles built straight on the injectable filesystem seam are
held to the same discipline as WAL-backed ones).  Inside
each such class RD02 analyzes the handler method (``on_message``) in
source order:

* an emit — ``super().send(...)``, the release of buffered frames —
  before the first WAL append (``…wal.record(...)`` /
  ``…wal.record_decided(...)`` / ``…wal.record_durable(...)``, the
  group-commit entry point whose callback fires only after the shared
  fsync) or direct :class:`FaultFS` persistence point
  (``…fs.append(...)`` / ``…fs.fsync(...)``) is a
  persist-before-reply violation;
* an emit in a handler with *no* append at all is flagged too, unless
  the handler delegates to ``super().on_message(...)`` (whose override
  persists) before emitting;
* a write to a *durable attribute* — one that the class's own
  ``durable_state()`` reads — after the first append diverges memory
  from disk without re-logging, so the next crash recovers stale state.

The rule is scoped to ``repro/net/``; volatile roles (no WAL contact)
are never analyzed.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..registry import ModuleContext, Rule, register

#: WAL append methods (the persistence points)
WAL_APPENDS = frozenset({"record", "record_decided", "record_durable"})

#: FaultFS methods that make bytes durable when called on an fs seam
FS_PERSISTS = frozenset({"append", "fsync"})

Pos = Tuple[int, int]


def _pos(node: ast.AST) -> Pos:
    return (node.lineno, node.col_offset)


def _is_super_call(call: ast.Call, attr: str) -> bool:
    """True for ``super().<attr>(...)``."""
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == attr
        and isinstance(call.func.value, ast.Call)
        and isinstance(call.func.value.func, ast.Name)
        and call.func.value.func.id == "super"
    )


def _attr_chain(node: ast.AST) -> List[str]:
    """The dotted names of an attribute chain, outermost last."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return names


def _is_fs_name(name: str) -> bool:
    """True for names that denote a :class:`FaultFS` seam (``fs``,
    ``_fs``, ``faultfs``, ``wal_fs`` …) — deliberately *not* any name
    merely containing "fs" (``offsets`` is a list, not a disk)."""
    lowered = name.lower()
    return (
        lowered in ("fs", "_fs")
        or "faultfs" in lowered
        or lowered.startswith("fs_")
        or lowered.endswith("_fs")
    )


def _is_wal_append(call: ast.Call) -> bool:
    """True for a persistence point: ``<wal chain>.record*(...)`` or a
    direct ``<fs chain>.append/fsync(...)`` on the FaultFS seam."""
    if not isinstance(call.func, ast.Attribute):
        return False
    chain = _attr_chain(call.func.value)
    if call.func.attr in WAL_APPENDS:
        return any("wal" in name.lower() for name in chain)
    if call.func.attr in FS_PERSISTS:
        return any(_is_fs_name(name) for name in chain)
    return False


def _references_wal(node: ast.AST) -> bool:
    """True iff the subtree reads or writes ``self._wal``/``self._fs``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr in ("_wal", "_fs")
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            return True
    return False


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """The attribute name if ``node`` is a ``self.X`` target."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _durable_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes the class's own ``durable_state`` reads."""
    attrs: Set[str] = set()
    for item in cls.body:
        if (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "durable_state"
        ):
            for node in ast.walk(item):
                name = _self_attr_target(node)
                if name is not None and not name.startswith("_wal"):
                    attrs.add(name)
    return attrs


@register
class Rd02Durability(Rule):
    """Replies before WAL appends, and post-persist durable mutations."""

    id = "RD02"
    title = "persist-before-reply durability"
    scope = ("repro/net/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not self._is_durable(cls):
                continue
            durable_attrs = _durable_attrs(cls)
            for item in cls.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "on_message"
                ):
                    yield from self._check_handler(
                        ctx, cls, item, durable_attrs
                    )

    def _is_durable(self, cls: ast.ClassDef) -> bool:
        if cls.name == "_DurableRole":
            return True
        for base in cls.bases:
            if isinstance(base, ast.Name) and base.id == "_DurableRole":
                return True
            if isinstance(base, ast.Attribute) and base.attr == "_DurableRole":
                return True
        return _references_wal(cls)

    def _check_handler(
        self,
        ctx: ModuleContext,
        cls: ast.ClassDef,
        handler: ast.AST,
        durable_attrs: Set[str],
    ) -> Iterator[Finding]:
        appends: List[Pos] = []
        emits: List[Tuple[Pos, ast.Call]] = []
        delegates: List[Pos] = []
        mutations: List[Tuple[Pos, ast.AST, str]] = []
        for node in ast.walk(handler):
            if isinstance(node, ast.Call):
                if _is_wal_append(node):
                    appends.append(_pos(node))
                elif _is_super_call(node, "send"):
                    emits.append((_pos(node), node))
                elif _is_super_call(node, "on_message"):
                    delegates.append(_pos(node))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for leaf in ast.walk(target):
                        name = _self_attr_target(leaf)
                        if name is not None:
                            mutations.append((_pos(node), node, name))
        first_append = min(appends) if appends else None
        for pos, call in sorted(emits, key=lambda item: item[0]):
            if first_append is None:
                if delegates and min(delegates) < pos:
                    continue  # super().on_message persisted on our behalf
                yield self.finding(
                    ctx,
                    call,
                    f"{cls.name}.on_message releases a reply with no WAL "
                    "append on the handler path",
                    "append the changed durable_state() to the WAL "
                    "(and fsync) before any super().send",
                )
            elif pos < first_append:
                yield self.finding(
                    ctx,
                    call,
                    f"{cls.name}.on_message releases a reply before the "
                    "WAL append — a crash can erase the promised state",
                    "buffer sends while the handler runs and release "
                    "them only after wal.record(...)",
                )
        if first_append is not None and durable_attrs:
            for pos, node, name in sorted(mutations, key=lambda m: m[0]):
                if name in durable_attrs and pos > first_append:
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls.name}.on_message mutates durable attribute "
                        f"{name!r} after the WAL append — recovery would "
                        "restore stale state",
                        "mutate durable attributes before capturing "
                        "durable_state(), or re-log after the change",
                    )
