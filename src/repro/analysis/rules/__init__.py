"""The protocol-aware rule set.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  One module per rule:

* :mod:`.rd01_determinism` — no wall clocks / unseeded RNG in simulation code
* :mod:`.rd02_durability` — persist-before-reply in durable net roles
* :mod:`.rd03_atomicity` — shared-memory cells only via read/write/cas
* :mod:`.rd04_async` — no orphan tasks or silent broad excepts in net/
* :mod:`.rd05_ioa` — IOA signatures total, preconditions mutation-free
* :mod:`.rd06_monitor` — responses recorded only after an awaited reply
* :mod:`.rd07_sessions` — replicated applies route through session dedup
* :mod:`.rd08_interleaving` — no read-modify-write of shared state
  across an await (interprocedural; runs under ``lint --deep``)
"""

from . import (  # noqa: F401
    rd01_determinism,
    rd02_durability,
    rd03_atomicity,
    rd04_async,
    rd05_ioa,
    rd06_monitor,
    rd07_sessions,
    rd08_interleaving,
)
