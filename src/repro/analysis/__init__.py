"""`repro.analysis` — protocol-aware static analysis for this repo.

An AST-based lint framework whose rules encode the invariants the type
system cannot see: seeded determinism in the simulated layers (RD01),
persist-before-reply durability in the TCP runtime (RD02), atomic-only
shared-memory access in ``sm/`` (RD03), asyncio hygiene in ``net/``
(RD04), and I/O-automaton well-formedness in ``ioa/`` (RD05).

Run it as ``python -m repro lint [--format text|json] [--baseline]``;
findings can be suppressed inline with ``# repro: disable=RD01`` or
grandfathered in the committed baseline file (kept empty by policy).
See ``docs/ANALYSIS.md`` for the rule catalogue.
"""

from .baseline import load_baseline, write_baseline
from .engine import (
    LintReport,
    analyze_source,
    iter_python_files,
    package_relpath,
    run_lint,
)
from .findings import Finding
from .registry import ModuleContext, Rule, all_rules, register, rule_ids

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_source",
    "iter_python_files",
    "load_baseline",
    "package_relpath",
    "register",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
