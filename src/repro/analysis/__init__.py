"""`repro.analysis` — protocol-aware static analysis for this repo.

An AST-based lint framework whose rules encode the invariants the type
system cannot see: seeded determinism in the simulated layers (RD01),
persist-before-reply durability in the TCP runtime (RD02, checked as a
typestate property over CFG paths), atomic-only shared-memory access in
``sm/`` (RD03), asyncio hygiene in ``net/`` (RD04), I/O-automaton
well-formedness in ``ioa/`` (RD05), and — under ``--deep`` — the RD08
interleaving race detector built on the whole-program dataflow engine
(:mod:`.cfg` / :mod:`.dataflow` / :mod:`.callgraph`).

Run it as ``python -m repro lint [--deep] [--format text|json]
[--rules RD01,RD08] [--explain RDxx] [--baseline]``; findings can be
suppressed inline with ``# repro: disable=RD01`` (file-wide with
``# repro: disable-file=RD01``) or grandfathered in the committed
baseline file (kept empty by policy).  The static pass has a runtime
counterpart in :mod:`.sanitizer` — a critical-section guard that turns
actual interleavings into errors under ``REPRO_SANITIZE=1``.
See ``docs/ANALYSIS.md`` for the rule catalogue.
"""

from .baseline import BaselineError, load_baseline, write_baseline
from .callgraph import CallGraph, ProjectContext, build_project
from .cfg import CFG, CFGNode, build_cfg
from .dataflow import Analysis, SetUnionAnalysis, solve
from .engine import (
    LintReport,
    analyze_source,
    iter_python_files,
    package_relpath,
    run_lint,
)
from .findings import Finding
from .registry import (
    ModuleContext,
    Rule,
    all_rules,
    get_rule,
    register,
    rule_ids,
)
from .sanitizer import (
    InterleaveError,
    InterleaveViolation,
    assert_no_interleave,
    atomic_section,
    interleave_token,
)

__all__ = [
    "Analysis",
    "BaselineError",
    "CFG",
    "CFGNode",
    "CallGraph",
    "Finding",
    "InterleaveError",
    "InterleaveViolation",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "SetUnionAnalysis",
    "all_rules",
    "analyze_source",
    "assert_no_interleave",
    "atomic_section",
    "build_cfg",
    "build_project",
    "get_rule",
    "interleave_token",
    "iter_python_files",
    "load_baseline",
    "package_relpath",
    "register",
    "rule_ids",
    "run_lint",
    "solve",
    "write_baseline",
]
