"""Project-wide call graph with may-suspend function summaries.

``await helper()`` only yields to the event loop if ``helper`` can
actually suspend: awaiting a coroutine that never awaits anything runs
synchronously to completion, and no other task can interleave.  The
RD08 race detector therefore needs awaits to "bubble up" through
helpers — an ``await self._flush()`` is a real interleaving window iff
``_flush`` (or anything it transitively awaits) can suspend.

The summary is computed as a least fixpoint over a best-effort call
graph:

* every function/method in the project is indexed by its simple name
  (calls are resolved by name, not by type — Python's dynamism makes
  anything sharper a research project, and the rules only need a
  may-analysis);
* an async function *directly* suspends if it awaits something that is
  not a call to a known **async** function — a bare future, a task,
  ``asyncio.sleep``, a transport primitive — or iterates/enters an
  ``async for`` / ``async with`` (their ``__anext__``/``__aenter__``
  are out of reach), or is an async generator (yields suspend);
* awaiting a call whose simple name resolves only to known async
  functions inherits the OR of their summaries; any unresolved or
  ambiguous callee is conservatively assumed to suspend.

Awaiting a call to a known **sync** function is treated as suspending:
a sync callee reached through ``await`` must have returned a future or
custom awaitable, whose behavior we cannot see.

The conservative direction matters: over-approximating suspension can
only create *extra* interleaving windows for RD08 to inspect (possible
false positives, silenced by re-validation or a guard), never hide a
real race.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .cfg import Suspension, _walk_same_scope

FunctionAst = "ast.FunctionDef | ast.AsyncFunctionDef"


class FunctionInfo:
    """One function/method definition and its call-graph summary."""

    __slots__ = (
        "qualname",
        "relpath",
        "name",
        "node",
        "is_async",
        "class_name",
        "direct_suspend",
        "await_callees",
        "may_suspend",
    )

    def __init__(
        self,
        qualname: str,
        relpath: str,
        node,
        class_name: Optional[str],
    ) -> None:
        self.qualname = qualname
        self.relpath = relpath
        self.name = node.name
        self.node = node
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.class_name = class_name
        #: suspends regardless of callee summaries
        self.direct_suspend = False
        #: simple names of known-async callees this function awaits
        self.await_callees: Set[str] = set()
        #: the fixpoint summary (meaningful for async functions)
        self.may_suspend = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname}, suspend={self.may_suspend})"


def call_simple_name(call: ast.Call) -> Optional[str]:
    """The resolvable simple name of a call's target, if any."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def iter_functions(tree: ast.Module):
    """Yield ``(class_name_or_None, func_node)`` for every def in a module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in ast.walk(node):
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, item


class CallGraph:
    """Every project function, indexed for name-based resolution."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}  #: by qualname
        self.by_name: Dict[str, List[FunctionInfo]] = {}  #: by simple name

    def add_module(self, relpath: str, tree: ast.Module) -> None:
        module = relpath[:-3].replace("/", ".") if relpath.endswith(".py") else relpath
        for class_name, node in iter_functions(tree):
            scope = f"{module}.{class_name}" if class_name else module
            qualname = f"{scope}.{node.name}"
            if qualname in self.functions:
                continue  # first definition wins (overloads are rare)
            info = FunctionInfo(qualname, relpath, node, class_name)
            self.functions[qualname] = info
            self.by_name.setdefault(node.name, []).append(info)

    # -- summary computation -------------------------------------------

    def _seed(self, info: FunctionInfo) -> None:
        """Classify each await/async construct as direct or delegated."""
        node = info.node
        for sub in _walk_same_scope(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)) and info.is_async:
                info.direct_suspend = True  # async generator
            elif isinstance(sub, (ast.AsyncFor, ast.AsyncWith)):
                info.direct_suspend = True
            elif isinstance(sub, ast.Await):
                target = sub.value
                name = (
                    call_simple_name(target)
                    if isinstance(target, ast.Call)
                    else None
                )
                candidates = self.by_name.get(name, []) if name else []
                if candidates and all(c.is_async for c in candidates):
                    info.await_callees.add(name)  # summary decides
                else:
                    info.direct_suspend = True

    def compute_summaries(self) -> None:
        """Least fixpoint of may-suspend over the await-callee edges."""
        for info in self.functions.values():
            self._seed(info)
            info.may_suspend = info.direct_suspend
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                if info.may_suspend:
                    continue
                for callee in info.await_callees:
                    if any(
                        c.may_suspend for c in self.by_name.get(callee, [])
                    ):
                        info.may_suspend = True
                        changed = True
                        break

    # -- queries --------------------------------------------------------

    def name_may_suspend(self, name: Optional[str]) -> bool:
        """May an ``await <name>(...)`` suspend?  Unknown names may."""
        if name is None:
            return True
        candidates = self.by_name.get(name, [])
        if not candidates or not all(c.is_async for c in candidates):
            return True
        return any(c.may_suspend for c in candidates)


class ProjectContext:
    """What deep rules may ask about the whole program.

    Built once per ``lint --deep`` run from every parsed module and
    handed to rules through
    :class:`~repro.analysis.registry.ModuleContext`.
    """

    def __init__(self, callgraph: CallGraph) -> None:
        self.callgraph = callgraph

    def may_suspend(self, suspension: Suspension) -> bool:
        """Can this CFG suspension point actually yield to the loop?"""
        if suspension.kind != "await":
            return True  # async-for/with, yields: always real
        value = suspension.node.value
        if isinstance(value, ast.Call):
            return self.callgraph.name_may_suspend(call_simple_name(value))
        return True  # awaiting a future/task/attribute: real


def build_project(
    modules: Sequence[Tuple[str, ast.Module]],
) -> ProjectContext:
    """Parse results in, whole-program context out."""
    graph = CallGraph()
    for relpath, tree in modules:
        graph.add_module(relpath, tree)
    graph.compute_summaries()
    return ProjectContext(graph)
