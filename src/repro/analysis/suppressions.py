"""Inline suppression comments: ``# repro: disable=RD01[,RD04]``.

A trailing comment suppresses the named rules on its own line; a
comment standing alone on a line suppresses them on the next line (so a
suppression can sit above an expression too long to share a line with).
Findings carry a line *span*, so a suppression anywhere inside a
multi-line construct (say, the closing line of a wrapped ``await``)
suppresses findings anchored to it.  ``disable=all`` suppresses every
rule.

``# repro: disable-file=RD08`` anywhere in a module suppresses the
named rules for the whole file — the escape hatch for a module that is
wholesale exempt from one invariant (``disable-file=all`` exists but
should never survive review).

Suppressions are deliberate, reviewable exceptions — the report counts
them so a diff that adds one is visible.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set

from .findings import Finding

DISABLE_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s]+)")
DISABLE_FILE_RE = re.compile(r"#\s*repro:\s*disable-file=([A-Za-z0-9_,\s]+)")


def _parse_rules(raw: str) -> Set[str]:
    return {
        token.strip().upper() for token in raw.split(",") if token.strip()
    }


def disabled_lines(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids disabled there."""
    disabled: Dict[int, Set[str]] = {}
    for index, line in enumerate(lines, start=1):
        if DISABLE_FILE_RE.search(line):
            continue  # file-level directive, handled separately
        match = DISABLE_RE.search(line)
        if match is None:
            continue
        rules = _parse_rules(match.group(1))
        # A comment-only line shields the line below it; a trailing
        # comment shields its own line.
        target = index + 1 if line.lstrip().startswith("#") else index
        disabled.setdefault(target, set()).update(rules)
    return disabled


def disabled_for_file(lines: Sequence[str]) -> Set[str]:
    """The rule ids disabled for the whole module."""
    disabled: Set[str] = set()
    for line in lines:
        match = DISABLE_FILE_RE.search(line)
        if match is not None:
            disabled.update(_parse_rules(match.group(1)))
    return disabled


def split_suppressed(
    findings: Sequence[Finding], lines: Sequence[str]
) -> "tuple[List[Finding], List[Finding]]":
    """Partition findings into (active, suppressed) per the comments."""
    disabled = disabled_lines(lines)
    file_wide = disabled_for_file(lines)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        if finding.rule in file_wide or "ALL" in file_wide:
            suppressed.append(finding)
            continue
        first, last = finding.span()
        rules: Set[str] = set()
        for line_no in range(first, last + 1):
            rules |= disabled.get(line_no, set())
        if finding.rule in rules or "ALL" in rules:
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed
