"""Inline suppression comments: ``# repro: disable=RD01[,RD04]``.

A trailing comment suppresses the named rules on its own line; a
comment standing alone on a line suppresses them on the next line (so a
suppression can sit above an expression too long to share a line with).
``disable=all`` suppresses every rule.  Suppressions are deliberate,
reviewable exceptions — the report counts them so a diff that adds one
is visible.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set

from .findings import Finding

DISABLE_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s]+)")


def disabled_lines(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids disabled there."""
    disabled: Dict[int, Set[str]] = {}
    for index, line in enumerate(lines, start=1):
        match = DISABLE_RE.search(line)
        if match is None:
            continue
        rules = {
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        }
        # A comment-only line shields the line below it; a trailing
        # comment shields its own line.
        target = index + 1 if line.lstrip().startswith("#") else index
        disabled.setdefault(target, set()).update(rules)
    return disabled


def split_suppressed(
    findings: Sequence[Finding], lines: Sequence[str]
) -> "tuple[List[Finding], List[Finding]]":
    """Partition findings into (active, suppressed) per the comments."""
    disabled = disabled_lines(lines)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        rules = disabled.get(finding.line, set())
        if finding.rule in rules or "ALL" in rules:
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed
