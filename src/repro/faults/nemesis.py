"""The nemesis: declarative, seeded fault schedules for the simulator.

The paper's guarantees are quantified over *all* schedules — crashes,
message loss, duplication, asynchrony.  The seed code exercised
hand-picked fault points (a fixed ``crash_at``, a constant
``loss_rate``); this module turns fault injection into data.  A
:class:`FaultSchedule` is an immutable value: a seed plus a tuple of
:class:`FaultAction` objects, each of which knows how to arm itself
against a deployment through the small :class:`NemesisTarget` interface.
Because schedules are plain data,

* identical seeds reproduce identical chaos (the campaign's contract);
* a schedule can be *shrunk* — delta-debugging over the action tuple
  finds a minimal reproducer when a run violates linearizability
  (:mod:`repro.faults.shrink`);
* a schedule prints as one line, so a violation report is replayable
  from the printed line alone.

Action vocabulary (all times are virtual, i.e. message-delay units):

========================  =================================================
:class:`CrashServer`       crash-stop every role of one physical server
:class:`RecoverServer`     restart it with durable state (crash-recovery)
:class:`PartitionServers`  cut a server group off (symmetric or one-way),
                           healing automatically — rolling partitions are
                           just several of these with shifted groups
:class:`DelaySpike`        multiply message delays during a window
:class:`BurstLoss`         add i.i.d. loss during a window
:class:`DuplicationStorm`  add i.i.d. duplication during a window
:class:`SlowNode`          gray failure: one server alive but late — its
                           message delays multiplied during a window
:class:`TimerDrift`        gray failure: one server's timers tick fast
                           or slow relative to the cluster
:class:`ClockSkew`         gray failure: one server's local clock reads
                           offset from true time
========================  =================================================

Windows compose: overlapping bursts add their rates, overlapping spikes
multiply their factors, and the network restores exactly the baseline
when each window closes (counters, not save/restore of a global).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Callable, Hashable, Iterable, List, Tuple


class NemesisTarget:
    """What a deployment must expose for the nemesis to attack it.

    Concrete adapters (see :mod:`repro.faults.campaign`) wrap
    :class:`~repro.mp.composed.ComposedConsensus`,
    :class:`~repro.mp.multiphase.ThreePhaseConsensus` and the SMR stack.
    """

    #: number of physical servers (fault actions address servers by index)
    n_servers: int

    @property
    def sim(self):
        raise NotImplementedError

    @property
    def network(self):
        raise NotImplementedError

    def crash_server(self, index: int, at: float) -> None:
        raise NotImplementedError

    def recover_server(self, index: int, at: float) -> None:
        raise NotImplementedError

    def server_membership(
        self, indices: Iterable[int]
    ) -> Callable[[Hashable], bool]:
        """A pid predicate for "any role of any server in ``indices``".

        Must also cover roles registered *after* the partition is armed
        (the SMR layer creates per-slot processes lazily).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FaultAction:
    """Base class: one declarative perturbation with an absolute time."""

    at: float

    def apply(self, target: NemesisTarget) -> None:
        """Arm this action against ``target`` (called before the run)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One compact token for schedule lines and shrink reports."""
        name = type(self).__name__
        args = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{name}({args})"


@dataclass(frozen=True)
class CrashServer(FaultAction):
    """Crash-stop every role of physical server ``server`` at ``at``."""

    server: int = 0

    def apply(self, target: NemesisTarget) -> None:
        target.crash_server(self.server, self.at)


@dataclass(frozen=True)
class RecoverServer(FaultAction):
    """Restart server ``server`` at ``at`` with its durable state."""

    server: int = 0

    def apply(self, target: NemesisTarget) -> None:
        target.recover_server(self.server, self.at)


@dataclass(frozen=True)
class PartitionServers(FaultAction):
    """Cut ``servers`` off from the rest of the world for ``duration``.

    ``one_way=True`` blocks only messages *from* the group (an
    asymmetric link failure: the group still hears the world but cannot
    answer).  The cut heals automatically.
    """

    servers: Tuple[int, ...] = ()
    duration: float = 10.0
    one_way: bool = False

    def apply(self, target: NemesisTarget) -> None:
        target.network.partition(
            target.server_membership(self.servers),
            None,
            start=self.at,
            end=self.at + self.duration,
            symmetric=not self.one_way,
        )


@dataclass(frozen=True)
class _Window(FaultAction):
    """Shared plumbing for time-bounded network perturbations."""

    duration: float = 10.0

    def _open(self, network) -> None:
        raise NotImplementedError

    def _close(self, network) -> None:
        raise NotImplementedError

    def apply(self, target: NemesisTarget) -> None:
        network = target.network
        sim = target.sim
        sim.schedule(max(0.0, self.at - sim.now), lambda: self._open(network))
        sim.schedule(
            max(0.0, self.at + self.duration - sim.now),
            lambda: self._close(network),
        )


@dataclass(frozen=True)
class DelaySpike(_Window):
    """Multiply message delays by ``factor`` during the window."""

    factor: float = 4.0

    def _open(self, network) -> None:
        network.delay_scale *= self.factor

    def _close(self, network) -> None:
        network.delay_scale /= self.factor


@dataclass(frozen=True)
class BurstLoss(_Window):
    """Add i.i.d. message loss at ``rate`` during the window."""

    rate: float = 0.3

    def _open(self, network) -> None:
        network.extra_loss += self.rate

    def _close(self, network) -> None:
        network.extra_loss -= self.rate


@dataclass(frozen=True)
class DuplicationStorm(_Window):
    """Add i.i.d. message duplication at ``rate`` during the window."""

    rate: float = 0.5

    def _open(self, network) -> None:
        network.extra_duplicate += self.rate

    def _close(self, network) -> None:
        network.extra_duplicate -= self.rate


@dataclass(frozen=True)
class SlowNode(FaultAction):
    """Gray failure: server ``server`` stays alive and correct, but
    every message it sends or receives takes ``factor``× as long during
    the window.  Unlike :class:`DelaySpike` (cluster-wide), this skews
    *one* replica — the fast path's unanimity now waits on the straggler
    while Backup's majority does not.
    """

    server: int = 0
    factor: float = 4.0
    duration: float = 10.0

    def apply(self, target: NemesisTarget) -> None:
        target.network.slow_node(
            target.server_membership((self.server,)),
            self.factor,
            self.at,
            self.at + self.duration,
        )


@dataclass(frozen=True)
class TimerDrift(FaultAction):
    """Gray failure: server ``server``'s local tick runs at ``rate``×
    real speed during the window (timers armed while it is active fire
    ``rate``× later for rate > 1, earlier for rate < 1) — retransmit
    and coordinator-retry timers drift against the cluster.
    """

    server: int = 0
    rate: float = 2.0
    duration: float = 10.0

    def apply(self, target: NemesisTarget) -> None:
        target.network.timer_drift(
            target.server_membership((self.server,)),
            self.rate,
            self.at,
            self.at + self.duration,
        )


@dataclass(frozen=True)
class ClockSkew(FaultAction):
    """Gray failure: server ``server``'s local clock reads ``offset``
    units away from true time during the window.  Scheduling is
    untouched — the lie is visible only through ``local_now``, which is
    exactly why protocols must never gate safety on wall clocks.
    """

    server: int = 0
    offset: float = 25.0
    duration: float = 10.0

    def apply(self, target: NemesisTarget) -> None:
        target.network.clock_skew(
            target.server_membership((self.server,)),
            self.offset,
            self.at,
            self.at + self.duration,
        )


#: every concrete action class, for generation and (de)serialization
ACTION_CLASSES = (
    CrashServer,
    RecoverServer,
    PartitionServers,
    DelaySpike,
    BurstLoss,
    DuplicationStorm,
    SlowNode,
    TimerDrift,
    ClockSkew,
)


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus an ordered tuple of fault actions.

    The seed drives *everything* about a campaign run — the simulator,
    the workload and the chaos — so the schedule line printed by the
    campaign is a complete reproducer.
    """

    seed: int
    actions: Tuple[FaultAction, ...] = ()
    horizon: float = 400.0

    def inject(self, target: NemesisTarget) -> None:
        """Arm every action against ``target``."""
        for action in self.actions:
            action.apply(target)

    def subset(self, keep: Iterable[int]) -> "FaultSchedule":
        """The schedule restricted to the action positions in ``keep``
        (used by the delta-debugging shrinker)."""
        kept = frozenset(keep)
        return FaultSchedule(
            seed=self.seed,
            actions=tuple(
                a for i, a in enumerate(self.actions) if i in kept
            ),
            horizon=self.horizon,
        )

    def fault_classes(self) -> Tuple[str, ...]:
        """The sorted, deduplicated action kinds (metric aggregation)."""
        kinds = {type(a).__name__ for a in self.actions}
        return tuple(sorted(kinds)) or ("None",)

    def describe(self) -> str:
        """One replayable line: seed, horizon and every action."""
        inner = "; ".join(a.describe() for a in self.actions) or "no faults"
        return f"seed={self.seed} horizon={self.horizon} [{inner}]"


def random_schedule(
    seed: int,
    n_servers: int,
    horizon: float = 400.0,
    max_actions: int = 5,
    allow: Tuple[type, ...] = ACTION_CLASSES,
) -> FaultSchedule:
    """Draw a random fault schedule, deterministically from ``seed``.

    Constraints keep the chaos interesting rather than degenerate:

    * at most a minority of servers is ever crash-*stopped* for good —
      every crash beyond that budget is paired with a later recovery
      (so safety is always exercised through churn, and liveness
      metrics remain meaningful);
    * partitions isolate at most ``n_servers - 1`` servers;
    * window durations and rates are drawn from ranges matched to the
      default timeouts so faults actually overlap protocol activity.
    """
    rng = random.Random(seed)
    actions: List[FaultAction] = []
    n_actions = rng.randint(1, max_actions)
    minority = (n_servers - 1) // 2
    stopped_for_good = 0
    fault_span = horizon * 0.5  # leave the tail for recovery/quiescence

    for _ in range(n_actions):
        cls = rng.choice(allow)
        at = round(rng.uniform(0.0, fault_span), 1)
        if cls is CrashServer or cls is RecoverServer:
            server = rng.randrange(n_servers)
            recovers = rng.random() < 0.7
            if not recovers and stopped_for_good < minority:
                stopped_for_good += 1
                actions.append(CrashServer(at=at, server=server))
            else:
                # Crash-recover churn: down for a protocol-scale window.
                down = round(rng.uniform(5.0, fault_span / 2), 1)
                actions.append(CrashServer(at=at, server=server))
                actions.append(
                    RecoverServer(at=round(at + down, 1), server=server)
                )
        elif cls is PartitionServers:
            k = rng.randint(1, max(1, n_servers - 1))
            servers = tuple(sorted(rng.sample(range(n_servers), k)))
            actions.append(
                PartitionServers(
                    at=at,
                    servers=servers,
                    duration=round(rng.uniform(5.0, fault_span / 2), 1),
                    one_way=rng.random() < 0.25,
                )
            )
        elif cls is DelaySpike:
            actions.append(
                DelaySpike(
                    at=at,
                    duration=round(rng.uniform(5.0, fault_span / 3), 1),
                    factor=round(rng.uniform(2.0, 6.0), 1),
                )
            )
        elif cls is BurstLoss:
            actions.append(
                BurstLoss(
                    at=at,
                    duration=round(rng.uniform(5.0, fault_span / 3), 1),
                    rate=round(rng.uniform(0.1, 0.6), 2),
                )
            )
        elif cls is DuplicationStorm:
            actions.append(
                DuplicationStorm(
                    at=at,
                    duration=round(rng.uniform(5.0, fault_span / 3), 1),
                    rate=round(rng.uniform(0.2, 0.8), 2),
                )
            )
        elif cls is SlowNode:
            actions.append(
                SlowNode(
                    at=at,
                    server=rng.randrange(n_servers),
                    factor=round(rng.uniform(2.0, 8.0), 1),
                    duration=round(rng.uniform(5.0, fault_span / 2), 1),
                )
            )
        elif cls is TimerDrift:
            # log-symmetric around honest: as likely 1/3× as 3×
            rate = round(3.0 ** rng.uniform(-1.0, 1.0), 2)
            actions.append(
                TimerDrift(
                    at=at,
                    server=rng.randrange(n_servers),
                    rate=rate,
                    duration=round(rng.uniform(5.0, fault_span / 2), 1),
                )
            )
        elif cls is ClockSkew:
            actions.append(
                ClockSkew(
                    at=at,
                    server=rng.randrange(n_servers),
                    offset=round(rng.uniform(-50.0, 50.0), 1),
                    duration=round(rng.uniform(5.0, fault_span / 2), 1),
                )
            )

    actions.sort(key=lambda a: a.at)
    return FaultSchedule(seed=seed, actions=tuple(actions), horizon=horizon)
