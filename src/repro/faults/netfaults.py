"""Transport-level fault injection for the asyncio TCP runtime.

The simulator injects faults inside :class:`repro.mp.sim.Network`; the
networked substrate (:mod:`repro.net.transport`) delegates the same
decisions to a :class:`TransportFaults` object consulted once per frame,
*before* the frame reaches a socket.  Faults are therefore injected at
the transport layer of the real stack — a dropped frame never leaves
the process, a cut endpoint pair behaves like a switched-off link —
while the accounting lands in the same
:class:`~repro.mp.sim.NetworkStats` counters the simulator uses, so
report lines read identically across substrates.

Loss is i.i.d. from a seeded :class:`random.Random` (reproducible op
streams; wall-clock interleaving stays real).  Partitions cut pairs of
*endpoints* (node/client names, not pids): a cut is symmetric unless
installed one-way, and heals explicitly via :meth:`heal` — on a real
network nothing heals by virtual-time magic.
"""

from __future__ import annotations

import random
from typing import Optional, Set, Tuple


class TransportFaults:
    """Frame-level fault decisions for :class:`AsyncTransport`.

    ``verdict(src_ep, dst_ep)`` returns ``None`` (deliver), ``"lost"``
    (drop, count as loss) or ``"cut"`` (drop, count as partitioned).
    """

    def __init__(self, seed: int = 0, loss_rate: float = 0.0) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        self.rng = random.Random(seed)
        self.loss_rate = loss_rate
        self._cuts: Set[Tuple[str, str]] = set()

    def partition(self, a: str, b: str, symmetric: bool = True) -> None:
        """Cut frames from endpoint ``a`` to endpoint ``b`` (and back,
        unless ``symmetric=False`` — a one-way link failure)."""
        self._cuts.add((a, b))
        if symmetric:
            self._cuts.add((b, a))

    def isolate(self, endpoint: str, others) -> None:
        """Cut ``endpoint`` off from every endpoint in ``others``."""
        for other in others:
            if other != endpoint:
                self.partition(endpoint, other)

    def heal(
        self, a: Optional[str] = None, b: Optional[str] = None
    ) -> None:
        """Remove cuts.  No arguments heals everything; ``(a, b)`` heals
        that pair in both directions; ``(a,)`` heals every cut touching
        ``a``."""
        if a is None:
            self._cuts.clear()
            return
        if b is not None:
            self._cuts.discard((a, b))
            self._cuts.discard((b, a))
            return
        self._cuts = {
            pair for pair in self._cuts if a not in pair
        }

    def verdict(self, src_ep: str, dst_ep: str) -> Optional[str]:
        """The fate of one frame: ``None``, ``"lost"`` or ``"cut"``."""
        if (src_ep, dst_ep) in self._cuts:
            return "cut"
        if self.loss_rate and self.rng.random() < self.loss_rate:
            return "lost"
        return None
