"""Transport-level fault injection for the asyncio TCP runtime.

The simulator injects faults inside :class:`repro.mp.sim.Network`; the
networked substrate (:mod:`repro.net.transport`) delegates the same
decisions to a :class:`TransportFaults` object consulted once per frame,
*before* the frame reaches a socket.  Faults are therefore injected at
the transport layer of the real stack — a dropped frame never leaves
the process, a cut endpoint pair behaves like a switched-off link —
while the accounting lands in the same
:class:`~repro.mp.sim.NetworkStats` counters the simulator uses, so
report lines read identically across substrates.

Loss is i.i.d. from a seeded :class:`random.Random` (reproducible op
streams; wall-clock interleaving stays real), and :meth:`burst_loss`
opens additive loss windows that expire on the fault clock — the
transport analogue of the simulator nemesis's ``BurstLoss``.
Partitions cut pairs of *endpoints* (node/client names, not pids): a
cut is symmetric unless installed one-way, and heals either explicitly
via :meth:`heal` or automatically when installed with a ``duration`` —
the heal time is checked lazily against ``clock`` on the next frame,
so a healed pair reconnects without any timer machinery.  This matches
the simulator nemesis's partition/heal pairs: a seeded schedule fully
determines when every cut opens and closes.

:meth:`slow` models the *slow-node* gray failure on the real stack:
every frame touching a slow endpoint is held for a fixed delay before
reaching a socket (the transport asks :meth:`frame_delay` per frame and
defers the write), so one replica can be alive, correct, and late —
the failure mode the clean fail-stop model cannot express.
"""

from __future__ import annotations

import math
import random
import time
from typing import Dict, List, Optional, Tuple


class TransportFaults:
    """Frame-level fault decisions for :class:`AsyncTransport`.

    ``verdict(src_ep, dst_ep)`` returns ``None`` (deliver), ``"lost"``
    (drop, count as loss) or ``"cut"`` (drop, count as partitioned).
    """

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        self.rng = random.Random(seed)
        self.loss_rate = loss_rate
        self.clock = clock
        #: directed endpoint pair → heal time (``math.inf`` = explicit)
        self._cuts: Dict[Tuple[str, str], float] = {}
        #: additive loss windows: (rate, expiry time)
        self._bursts: List[Tuple[float, float]] = []
        #: slow-node windows: endpoint → (added delay seconds, expiry)
        self._slow: Dict[str, Tuple[float, float]] = {}
        #: duplicate-delivery windows: (rate, expiry time)
        self._dup_bursts: List[Tuple[float, float]] = []
        #: frames delivered twice (observability)
        self.duplicated = 0

    def partition(
        self,
        a: str,
        b: str,
        symmetric: bool = True,
        duration: Optional[float] = None,
    ) -> None:
        """Cut frames from endpoint ``a`` to endpoint ``b`` (and back,
        unless ``symmetric=False`` — a one-way link failure).  With
        ``duration`` the cut heals itself ``duration`` seconds from
        now; without, it lasts until :meth:`heal`."""
        heal_at = math.inf if duration is None else self.clock() + duration
        self._cuts[(a, b)] = heal_at
        if symmetric:
            self._cuts[(b, a)] = heal_at

    def isolate(
        self, endpoint: str, others, duration: Optional[float] = None
    ) -> None:
        """Cut ``endpoint`` off from every endpoint in ``others``."""
        for other in others:
            if other != endpoint:
                self.partition(endpoint, other, duration=duration)

    def heal(
        self, a: Optional[str] = None, b: Optional[str] = None
    ) -> None:
        """Remove cuts.  No arguments heals everything; ``(a, b)`` heals
        that pair in both directions; ``(a,)`` heals every cut touching
        ``a``."""
        if a is None:
            self._cuts.clear()
            return
        if b is not None:
            self._cuts.pop((a, b), None)
            self._cuts.pop((b, a), None)
            return
        self._cuts = {
            pair: heal_at
            for pair, heal_at in self._cuts.items()
            if a not in pair
        }

    def burst_loss(self, rate: float, duration: float) -> None:
        """Add i.i.d. loss at ``rate`` for the next ``duration`` seconds
        (windows compose additively, like the simulator's BurstLoss)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self._bursts.append((rate, self.clock() + duration))

    def effective_loss_rate(self) -> float:
        """Baseline loss plus every still-open burst window."""
        if self._bursts:
            now = self.clock()
            self._bursts = [
                burst for burst in self._bursts if burst[1] > now
            ]
        return min(
            1.0, self.loss_rate + sum(rate for rate, _ in self._bursts)
        )

    def burst_duplicate(self, rate: float, duration: float) -> None:
        """Duplicate frames i.i.d. at ``rate`` for ``duration`` seconds.

        The transport analogue of at-least-once delivery gone wrong: a
        duplicated frame is forwarded *twice* to its destination
        (retransmit after a lost ack, a replaying middlebox).  A
        correct replica stack must tolerate this — duplicate decrees
        fold once through the session seam — which is exactly what the
        retry-storm campaign and the wire-level duplicate-delivery
        property tests assert.  Windows compose additively, like
        :meth:`burst_loss`.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self._dup_bursts.append((rate, self.clock() + duration))

    def effective_duplicate_rate(self) -> float:
        """Sum of every still-open duplicate-delivery window."""
        if self._dup_bursts:
            now = self.clock()
            self._dup_bursts = [
                burst for burst in self._dup_bursts if burst[1] > now
            ]
        return min(1.0, sum(rate for rate, _ in self._dup_bursts))

    def should_duplicate(self, src_ep: str, dst_ep: str) -> bool:
        """Whether to deliver this frame a second time (counted)."""
        rate = self.effective_duplicate_rate()
        if rate and self.rng.random() < rate:
            self.duplicated += 1
            return True
        return False

    def slow(
        self, endpoint: str, delay: float, duration: Optional[float] = None
    ) -> None:
        """Make ``endpoint`` a slow node: every frame it sends or
        receives is held ``delay`` seconds before hitting the wire.
        With ``duration`` the slowness expires on the fault clock; a
        repeat call overwrites (endpoints have one bottleneck, not a
        stack of them)."""
        if delay < 0:
            raise ValueError("slow-node delay must be non-negative")
        expiry = math.inf if duration is None else self.clock() + duration
        self._slow[endpoint] = (delay, expiry)

    def quicken(self, endpoint: str) -> None:
        """Lift a slow-node window before its expiry."""
        self._slow.pop(endpoint, None)

    def frame_delay(self, src_ep: str, dst_ep: str) -> float:
        """Seconds to hold a frame on the ``src_ep → dst_ep`` link — the
        worse of the two endpoints' active slow-node windows (a slow
        node drags both its inbound and outbound links)."""
        if not self._slow:
            return 0.0
        now = self.clock()
        delay = 0.0
        for endpoint in (src_ep, dst_ep):
            window = self._slow.get(endpoint)
            if window is None:
                continue
            if window[1] <= now:
                del self._slow[endpoint]
                continue
            delay = max(delay, window[0])
        return delay

    def verdict(self, src_ep: str, dst_ep: str) -> Optional[str]:
        """The fate of one frame: ``None``, ``"lost"`` or ``"cut"``."""
        heal_at = self._cuts.get((src_ep, dst_ep))
        if heal_at is not None:
            if self.clock() < heal_at:
                return "cut"
            del self._cuts[(src_ep, dst_ep)]
        rate = self.effective_loss_rate()
        if rate and self.rng.random() < rate:
            return "lost"
        return None
