"""Fault injection: nemesis schedules, campaigns, shrinking, mutants.

The resilience layer of the reproduction.  :mod:`repro.faults.nemesis`
defines declarative, seeded fault schedules; :mod:`repro.faults.campaign`
runs them against the real deployments and checks every trace for
linearizability; :mod:`repro.faults.shrink` reduces violating schedules
to minimal reproducers; :mod:`repro.faults.mutants` supplies
intentionally broken processes that prove the harness catches real bugs.
:mod:`repro.faults.netfaults` injects loss, loss bursts and
partition-then-heal windows at the TCP transport layer, and
:mod:`repro.faults.netcampaign` drives the same seeded-schedule /
check-every-history / shrink-on-violation discipline against the *live*
socket cluster, including kill/restart churn and the WAL-disabled
amnesiac-node canary.  :func:`~repro.faults.netcampaign.run_retry_storm`
is the exactly-once campaign: duplicate-delivery bursts, client
blackouts and kill/restart churn against retrying/hedging clients on a
counter object, with a mechanical applied-exactly-once witness and a
dedup-disabled mutant canary.
:class:`~repro.faults.netcampaign.RacySlotPipeline` is the
interleaving-race mutant: its slot claims suspend mid-critical-section,
and the campaign run with ``race_mutant=True, sanitize=True`` must see
the runtime interleaving sanitizer catch it live — the dynamic
cross-check of the static RD08 lint rule.
"""

from .campaign import (
    CAMPAIGN_BACKOFF,
    CampaignReport,
    CampaignTarget,
    ComposedTarget,
    MultiphaseTarget,
    RunResult,
    SMRTarget,
    TARGETS,
    Violation,
    run_campaign,
)
from .mutants import AmnesiacAcceptor
from .nemesis import (
    ACTION_CLASSES,
    BurstLoss,
    ClockSkew,
    CrashServer,
    DelaySpike,
    DuplicationStorm,
    FaultAction,
    FaultSchedule,
    NemesisTarget,
    PartitionServers,
    RecoverServer,
    SlowNode,
    TimerDrift,
    random_schedule,
)
from .netfaults import TransportFaults
from .shrink import shrink_schedule

#: netcampaign names resolved lazily (PEP 562): the module imports
#: repro.net, which imports repro.faults.netfaults back — importing it
#: eagerly here would deadlock package initialization when repro.net is
#: imported first.
_NETCAMPAIGN_NAMES = frozenset(
    {
        "KillNode",
        "NET_ACTION_CLASSES",
        "NetCampaignReport",
        "NetDupBurst",
        "NetLossBurst",
        "NetPartition",
        "NetRunResult",
        "NetSchedule",
        "NetSlowNode",
        "NetViolation",
        "RacySlotPipeline",
        "RestartNode",
        "RetryStormResult",
        "WALBitFlip",
        "WALNoSpace",
        "WALTearTail",
        "asymmetric_bridge",
        "random_net_schedule",
        "retry_storm_schedule",
        "run_net_campaign",
        "run_retry_storm",
    }
)


def __getattr__(name):
    if name in _NETCAMPAIGN_NAMES:
        from . import netcampaign

        return getattr(netcampaign, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "ACTION_CLASSES",
    "AmnesiacAcceptor",
    "BurstLoss",
    "CAMPAIGN_BACKOFF",
    "CampaignReport",
    "CampaignTarget",
    "ClockSkew",
    "ComposedTarget",
    "CrashServer",
    "DelaySpike",
    "DuplicationStorm",
    "FaultAction",
    "FaultSchedule",
    "KillNode",
    "MultiphaseTarget",
    "NET_ACTION_CLASSES",
    "NemesisTarget",
    "NetCampaignReport",
    "NetDupBurst",
    "NetLossBurst",
    "NetPartition",
    "NetRunResult",
    "NetSchedule",
    "NetSlowNode",
    "NetViolation",
    "PartitionServers",
    "RacySlotPipeline",
    "RecoverServer",
    "RestartNode",
    "RetryStormResult",
    "RunResult",
    "SMRTarget",
    "SlowNode",
    "TARGETS",
    "TimerDrift",
    "TransportFaults",
    "Violation",
    "WALBitFlip",
    "WALNoSpace",
    "WALTearTail",
    "asymmetric_bridge",
    "random_net_schedule",
    "random_schedule",
    "retry_storm_schedule",
    "run_campaign",
    "run_net_campaign",
    "run_retry_storm",
    "shrink_schedule",
]
