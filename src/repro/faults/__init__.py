"""Fault injection: nemesis schedules, campaigns, shrinking, mutants.

The resilience layer of the reproduction.  :mod:`repro.faults.nemesis`
defines declarative, seeded fault schedules; :mod:`repro.faults.campaign`
runs them against the real deployments and checks every trace for
linearizability; :mod:`repro.faults.shrink` reduces violating schedules
to minimal reproducers; :mod:`repro.faults.mutants` supplies
intentionally broken processes that prove the harness catches real bugs.
"""

from .campaign import (
    CAMPAIGN_BACKOFF,
    CampaignReport,
    CampaignTarget,
    ComposedTarget,
    MultiphaseTarget,
    RunResult,
    SMRTarget,
    TARGETS,
    Violation,
    run_campaign,
)
from .mutants import AmnesiacAcceptor
from .nemesis import (
    ACTION_CLASSES,
    BurstLoss,
    CrashServer,
    DelaySpike,
    DuplicationStorm,
    FaultAction,
    FaultSchedule,
    NemesisTarget,
    PartitionServers,
    RecoverServer,
    random_schedule,
)
from .shrink import shrink_schedule

__all__ = [
    "ACTION_CLASSES",
    "AmnesiacAcceptor",
    "BurstLoss",
    "CAMPAIGN_BACKOFF",
    "CampaignReport",
    "CampaignTarget",
    "ComposedTarget",
    "CrashServer",
    "DelaySpike",
    "DuplicationStorm",
    "FaultAction",
    "FaultSchedule",
    "MultiphaseTarget",
    "NemesisTarget",
    "PartitionServers",
    "RecoverServer",
    "RunResult",
    "SMRTarget",
    "TARGETS",
    "Violation",
    "random_schedule",
    "run_campaign",
    "shrink_schedule",
]
