"""Nemesis campaigns: randomized fault schedules, every trace checked.

A *campaign* runs N seeded :class:`~repro.faults.nemesis.FaultSchedule`
instances against real deployments — Quorum+Backup
(:class:`~repro.mp.composed.ComposedConsensus`), the three-phase stack
(:class:`~repro.mp.multiphase.ThreePhaseConsensus`), and the replicated
KV store over speculative SMR
(:class:`~repro.smr.kvstore.ReplicatedKVStore`) — and validates **every
observed trace** with the repository's own linearizability checker, in
the reduction-to-checking spirit of Bouajjani et al.  Alongside the
safety verdicts it aggregates graceful-degradation metrics (commit rate,
switch rate, give-up rate, latency percentiles) per fault class, and on
any violation shrinks the schedule with delta-debugging to a minimal
reproducer printed with its seed.

Everything is deterministic: a run is a pure function of
``(target, schedule)``, and the schedule prints as a single replayable
line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import engine
from ..core.adt import consensus_adt
from ..core.fastcheck import check_linearizable
from ..core.linearizability import SearchBudgetExceeded
from ..core.traces import strip_phase_tags
from ..mp.backoff import BackoffPolicy
from ..mp.composed import ComposedConsensus
from ..mp.multiphase import ThreePhaseConsensus
from ..mp.paxos import PaxosAcceptor
from ..mp.sim import NetworkStats
from ..smr.kvstore import ReplicatedKVStore
from ..smr.universal import kv_store_adt
from .mutants import AmnesiacAcceptor
from .nemesis import (
    ACTION_CLASSES,
    BurstLoss,
    CrashServer,
    FaultSchedule,
    NemesisTarget,
    PartitionServers,
    RecoverServer,
    random_schedule,
)
from .shrink import shrink_schedule

CONSENSUS = consensus_adt()
KV = kv_store_adt()

#: the campaign's adaptive-timeout policy: exponential backoff with
#: deterministic jitter and a finite retry budget, so a dead majority
#: surfaces as ``gave_up`` well before the schedule horizon.
CAMPAIGN_BACKOFF = BackoffPolicy(
    base=6.0, factor=2.0, cap=80.0, jitter=0.25, max_retries=5
)


def _workload_rng(schedule: FaultSchedule) -> random.Random:
    """A workload stream independent of the simulator's own rng."""
    return random.Random(f"workload-{schedule.seed}")


@dataclass
class RunResult:
    """Verdict and degradation metrics of one (target, schedule) run."""

    target: str
    schedule: FaultSchedule
    ok: bool
    inconclusive: bool = False
    reason: str = ""
    total: int = 0
    committed: int = 0
    switched: int = 0
    gave_up: int = 0
    latencies: List[float] = field(default_factory=list)
    stats: Optional[NetworkStats] = None

    @property
    def commit_rate(self) -> float:
        """Fraction of issued operations that committed by the horizon."""
        return self.committed / self.total if self.total else 1.0

    @property
    def switch_rate(self) -> float:
        """Fraction of issued operations that left their first phase."""
        return self.switched / self.total if self.total else 0.0

    #: how many worst-hit links a report line names explicitly
    LINKS_SHOWN = 3

    @staticmethod
    def _pid_label(pid) -> str:
        """Compact link-endpoint label: ('acc', 3, 1) → acc/3/1."""
        if isinstance(pid, tuple):
            return "/".join(str(part) for part in pid)
        return str(pid)

    def stats_line(self) -> str:
        """Network counters as one compact token sequence.

        Aggregate totals first; then, when any link saw a fault, the
        worst-hit links by name — so a report line says not only *how
        much* was lost but *where*, and stays replayable (the per-link
        order is deterministic, see ``NetworkStats.faulty_links``).
        """
        s = self.stats or NetworkStats()
        base = (
            f"sent={s.sent} delivered={s.delivered} lost={s.lost} "
            f"dup={s.duplicated} dropped={s.dropped_crashed} "
            f"cut={s.partitioned}"
        )
        faulty = s.faulty_links()
        if not faulty:
            return base
        shown = " ".join(
            f"{self._pid_label(src)}->{self._pid_label(dst)}"
            f"(lost={ls.lost},dup={ls.duplicated},cut={ls.partitioned})"
            for (src, dst), ls in faulty[: self.LINKS_SHOWN]
        )
        return f"{base} faulty_links={len(faulty)} worst: {shown}"

    def line(self) -> str:
        """One replayable report line: verdict, metrics, NetworkStats,
        and the full schedule (seed included)."""
        verdict = (
            "INCONCLUSIVE"
            if self.inconclusive
            else ("ok" if self.ok else "VIOLATION")
        )
        return (
            f"[{self.target}] {verdict} "
            f"commit={self.committed}/{self.total} "
            f"switch={self.switched} gave_up={self.gave_up} | "
            f"{self.stats_line()} | {self.schedule.describe()}"
        )


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


# ---------------------------------------------------------------------------
# Targets: deployments the nemesis knows how to attack
# ---------------------------------------------------------------------------


class CampaignTarget:
    """One deployment kind: build it, load it, perturb it, check it."""

    name: str = "?"

    def run(
        self,
        schedule: FaultSchedule,
        mutant: bool = False,
        node_limit: Optional[int] = 200_000,
    ) -> RunResult:
        """Execute one deterministic run and check the observed trace."""
        raise NotImplementedError


class _ConsensusAdapter(NemesisTarget):
    """Nemesis view of the consensus deployments (explicit server pids)."""

    def __init__(self, system) -> None:
        self.system = system
        self.n_servers = system.n_servers

    @property
    def sim(self):
        return self.system.sim

    @property
    def network(self):
        return self.system.network

    def crash_server(self, index: int, at: float) -> None:
        self.system.crash_server(index, at)

    def recover_server(self, index: int, at: float) -> None:
        self.system.recover_server(index, at)

    def server_membership(self, indices: Iterable[int]):
        pids = frozenset(
            pid for i in indices for pid in self.system.server_pids(i)
        )
        return pids.__contains__


class ComposedTarget(CampaignTarget):
    """Quorum+Backup under nemesis: the Section 2 composed consensus."""

    name = "composed"

    def __init__(self, n_servers: int = 3, n_clients: int = 4) -> None:
        self.n_servers = n_servers
        self.n_clients = n_clients

    def run(self, schedule, mutant=False, node_limit=200_000) -> RunResult:
        system = ComposedConsensus(
            n_servers=self.n_servers,
            seed=schedule.seed,
            expected_clients=self.n_clients,
            backoff=CAMPAIGN_BACKOFF,
            acceptor_cls=AmnesiacAcceptor if mutant else PaxosAcceptor,
        )
        schedule.inject(_ConsensusAdapter(system))
        rng = _workload_rng(schedule)
        # Spread proposals across the fault span so the chaos actually
        # overlaps protocol activity (backoff stretches it further).
        outcomes = [
            system.propose(
                f"c{i}",
                f"v{i}",
                at=round(rng.uniform(0.0, schedule.horizon * 0.4), 1),
            )
            for i in range(self.n_clients)
        ]
        system.run(until=schedule.horizon)
        result = RunResult(
            target=self.name,
            schedule=schedule,
            ok=True,
            total=len(outcomes),
            committed=sum(1 for o in outcomes if o.decided_value is not None),
            switched=sum(1 for o in outcomes if o.switched),
            gave_up=sum(1 for o in outcomes if o.gave_up),
            latencies=[o.latency for o in outcomes if o.latency is not None],
            stats=system.stats,
        )
        _check(result, strip_phase_tags(system.trace()), CONSENSUS, node_limit)
        return result


class MultiphaseTarget(CampaignTarget):
    """SubQuorum → Quorum → Backup under nemesis."""

    name = "multiphase"

    def __init__(
        self,
        n_servers: int = 4,
        sub_servers: int = 2,
        n_clients: int = 4,
    ) -> None:
        self.n_servers = n_servers
        self.sub_servers = sub_servers
        self.n_clients = n_clients

    def run(self, schedule, mutant=False, node_limit=200_000) -> RunResult:
        system = ThreePhaseConsensus(
            n_servers=self.n_servers,
            sub_servers=self.sub_servers,
            seed=schedule.seed,
            expected_clients=self.n_clients,
            backoff=CAMPAIGN_BACKOFF,
        )
        schedule.inject(_ConsensusAdapter(system))
        rng = _workload_rng(schedule)
        outcomes = [
            system.propose(
                f"c{i}",
                f"v{i}",
                at=round(rng.uniform(0.0, schedule.horizon * 0.4), 1),
            )
            for i in range(self.n_clients)
        ]
        system.run(until=schedule.horizon)
        result = RunResult(
            target=self.name,
            schedule=schedule,
            ok=True,
            total=len(outcomes),
            committed=sum(1 for o in outcomes if o.decided_value is not None),
            switched=sum(1 for o in outcomes if o.switch_values),
            gave_up=sum(1 for o in outcomes if o.gave_up),
            latencies=[o.latency for o in outcomes if o.latency is not None],
            stats=system.network.stats,
        )
        _check(result, strip_phase_tags(system.trace()), CONSENSUS, node_limit)
        return result


class _SMRAdapter(NemesisTarget):
    """Nemesis view of the SMR stack (per-slot roles appear lazily)."""

    _SERVER_ROLES = frozenset({"qs", "acc", "coord"})

    def __init__(self, kv: ReplicatedKVStore) -> None:
        self.kv = kv
        self.n_servers = kv.smr.n_servers

    @property
    def sim(self):
        return self.kv.smr.sim

    @property
    def network(self):
        return self.kv.smr.network

    def crash_server(self, index: int, at: float) -> None:
        self.kv.smr.crash_server(index, at)

    def recover_server(self, index: int, at: float) -> None:
        self.kv.smr.recover_server(index, at)

    def server_membership(self, indices: Iterable[int]):
        wanted = frozenset(indices)
        roles = self._SERVER_ROLES

        def member(pid: Hashable) -> bool:
            # Slot roles are ("qs"|"acc"|"coord", slot, server); clients
            # are 2-tuples, so the arity check keeps them out.
            return (
                isinstance(pid, tuple)
                and len(pid) == 3
                and pid[0] in roles
                and pid[2] in wanted
            )

        return member


class SMRTarget(CampaignTarget):
    """The replicated KV store over speculative SMR under nemesis."""

    name = "smr"

    def __init__(self, n_servers: int = 3, n_clients: int = 4) -> None:
        self.n_servers = n_servers
        self.n_clients = n_clients

    def run(self, schedule, mutant=False, node_limit=200_000) -> RunResult:
        kv = ReplicatedKVStore(
            n_servers=self.n_servers,
            seed=schedule.seed,
            backoff=CAMPAIGN_BACKOFF,
        )
        schedule.inject(_SMRAdapter(kv))
        rng = _workload_rng(schedule)
        keys = ["x", "y"]
        for i in range(self.n_clients):
            at = round(rng.uniform(0.0, schedule.horizon * 0.4), 1)
            key = rng.choice(keys)
            op = rng.randrange(3)
            if op == 0:
                kv.put(f"c{i}", key, i, at=at)
            elif op == 1:
                kv.get(f"c{i}", key, at=at)
            else:
                kv.delete(f"c{i}", key, at=at)
        kv.run(until=schedule.horizon)
        outcomes = kv.smr.outcomes
        result = RunResult(
            target=self.name,
            schedule=schedule,
            ok=True,
            total=len(outcomes),
            committed=sum(1 for o in outcomes if o.commit_time is not None),
            switched=sum(1 for o in outcomes if o.switched_slots),
            gave_up=sum(1 for o in outcomes if o.gave_up),
            latencies=[o.latency for o in outcomes if o.latency is not None],
            stats=kv.smr.network.stats,
        )
        log = kv.smr.committed_log()
        if len(set(log)) != len(log):
            result.ok = False
            result.reason = f"duplicate command in committed log: {log!r}"
            return result
        _check(result, kv.interface_trace(), KV, node_limit)
        return result


def _check(result: RunResult, trace, adt, node_limit) -> None:
    """Run the linearizability checker and fold its verdict in.

    Uses the P-compositional fast path (:mod:`repro.core.fastcheck`) —
    the KV target decomposes per key, the consensus targets fall through
    to the monolithic search.  A blown budget (either the legacy
    ``node_limit`` exception or an ``unknown`` verdict) marks the run
    inconclusive rather than failing it.
    """
    try:
        report = check_linearizable(trace, adt, node_limit=node_limit)
    except SearchBudgetExceeded as exceeded:
        result.inconclusive = True
        result.reason = str(exceeded)
        return
    if report.unknown:
        result.inconclusive = True
        result.reason = report.result.reason
        return
    if not report.ok:
        result.ok = False
        result.reason = report.result.reason


TARGETS: Dict[str, Callable[[], CampaignTarget]] = {
    "composed": ComposedTarget,
    "multiphase": MultiphaseTarget,
    "smr": SMRTarget,
}

#: action mix for mutant hunts: recovery churn and connectivity faults,
#: which is the weather the amnesiac-acceptor bug needs to surface
MUTANT_ACTIONS = (
    CrashServer,
    RecoverServer,
    PartitionServers,
    BurstLoss,
)


@dataclass
class Violation:
    """A failing run together with its shrunk minimal reproducer."""

    result: RunResult
    shrunk: FaultSchedule
    shrunk_reason: str

    def report(self) -> str:
        lines = [
            f"VIOLATION on [{self.result.target}]: {self.result.reason}",
            f"  full schedule: {self.result.schedule.describe()}",
            f"  minimal reproducer ({len(self.shrunk.actions)} of "
            f"{len(self.result.schedule.actions)} actions): "
            f"{self.shrunk.describe()}",
            f"  minimal-run checker verdict: {self.shrunk_reason}",
        ]
        return "\n".join(lines)


@dataclass
class CampaignReport:
    """Aggregated outcome of a whole campaign."""

    results: List[RunResult] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.results)

    @property
    def inconclusive(self) -> int:
        return sum(1 for r in self.results if r.inconclusive)

    @property
    def all_linearizable(self) -> bool:
        return not self.violations

    def by_fault_class(self) -> Dict[Tuple[str, ...], List[RunResult]]:
        grouped: Dict[Tuple[str, ...], List[RunResult]] = {}
        for result in self.results:
            grouped.setdefault(
                result.schedule.fault_classes(), []
            ).append(result)
        return grouped

    def summary(self) -> str:
        """Per-fault-class graceful-degradation table plus the verdict."""
        lines = [
            f"{'fault classes':<48} {'runs':>4} {'commit':>7} "
            f"{'switch':>7} {'gave_up':>7} {'lat_p50':>8} {'lat_p95':>8} "
            f"{'lat_max':>8}"
        ]
        for classes, results in sorted(self.by_fault_class().items()):
            label = "+".join(classes)
            total = sum(r.total for r in results)
            committed = sum(r.committed for r in results)
            switched = sum(r.switched for r in results)
            gave_up = sum(r.gave_up for r in results)
            latencies = [l for r in results for l in r.latencies]
            p50 = _percentile(latencies, 0.50)
            p95 = _percentile(latencies, 0.95)
            top = max(latencies) if latencies else None

            def cell(value) -> str:
                return "-" if value is None else f"{value:.1f}"

            lines.append(
                f"{label:<48} {len(results):>4} "
                f"{committed / total if total else 1.0:>7.2f} "
                f"{switched / total if total else 0.0:>7.2f} "
                f"{gave_up / total if total else 0.0:>7.2f} "
                f"{cell(p50):>8} {cell(p95):>8} {cell(top):>8}"
            )
        lines.append(
            f"runs={self.runs} violations={len(self.violations)} "
            f"inconclusive={self.inconclusive}"
        )
        for violation in self.violations:
            lines.append(violation.report())
        return "\n".join(lines)


def _build_target(name: str, n_servers: int) -> CampaignTarget:
    target = TARGETS[name]()
    if name != "multiphase":
        target.n_servers = n_servers
    return target


def _run_campaign_job(
    job: Tuple[str, int, bool, Optional[int], FaultSchedule]
) -> RunResult:
    """One (target, schedule) run, rebuilt from picklable parameters.

    Module-level so spawn-started pool workers can import it; the target
    object itself never crosses the process boundary.
    """
    name, n_servers, mutant, node_limit, schedule = job
    target = _build_target(name, n_servers)
    return target.run(schedule, mutant=mutant, node_limit=node_limit)


def run_campaign(
    n_schedules: int = 50,
    base_seed: int = 0,
    targets: Sequence[str] = ("composed", "multiphase", "smr"),
    n_servers: int = 3,
    horizon: float = 400.0,
    max_actions: int = 5,
    mutant: bool = False,
    shrink: bool = True,
    node_limit: Optional[int] = 200_000,
    verbose: bool = False,
    emit: Callable[[str], None] = print,
    jobs: int = 1,
) -> CampaignReport:
    """Run ``n_schedules`` random nemesis schedules against each target.

    Every observed trace is checked for linearizability.  Violations are
    shrunk (unless ``shrink=False``) to minimal fault schedules via
    delta-debugging and included in the report with their seeds.  With
    ``mutant=True`` the composed target swaps in the amnesiac acceptor
    (the injected safety bug) and the action mix favours recovery churn.

    ``jobs > 1`` fans the (target, schedule) runs out across processes
    via :func:`repro.engine.parallel_map`.  Each run is a pure function
    of its seed, and results are consumed in submission order, so the
    report — every verdict, metric, and emitted line — is byte-identical
    to a ``jobs=1`` run.  Shrinking of any violations happens serially in
    the parent afterwards (violations are rare; shrinking is adaptive and
    inherently sequential).
    """
    report = CampaignReport()
    allow = MUTANT_ACTIONS if mutant else ACTION_CLASSES
    jobs_list: List[Tuple[str, int, bool, Optional[int], FaultSchedule]] = []
    for name in targets:
        target_servers = _build_target(name, n_servers).n_servers
        for k in range(n_schedules):
            schedule = random_schedule(
                seed=base_seed + k,
                n_servers=target_servers,
                horizon=horizon,
                max_actions=max_actions,
                allow=allow,
            )
            jobs_list.append(
                (name, n_servers, mutant, node_limit, schedule)
            )
    results = engine.parallel_map(_run_campaign_job, jobs_list, jobs=jobs)
    for job, result in zip(jobs_list, results):
        name, _, _, _, schedule = job
        report.results.append(result)
        if verbose:
            emit(result.line())
        if not result.ok and not result.inconclusive:
            target = _build_target(name, n_servers)
            shrunk = schedule
            if shrink:

                def still_fails(candidate: FaultSchedule) -> bool:
                    probe = target.run(
                        candidate, mutant=mutant, node_limit=node_limit
                    )
                    return not probe.ok and not probe.inconclusive

                shrunk = shrink_schedule(schedule, still_fails)
            final = target.run(
                shrunk, mutant=mutant, node_limit=node_limit
            )
            report.violations.append(
                Violation(
                    result=result,
                    shrunk=shrunk,
                    shrunk_reason=final.reason,
                )
            )
            emit(report.violations[-1].report())
    return report
