"""Delta-debugging a failing fault schedule to a minimal reproducer.

When a campaign run violates linearizability, the raw schedule usually
contains several actions that are irrelevant to the bug.  Zeller's ddmin
algorithm over the action tuple finds a *1-minimal* subset: removing any
single remaining action makes the failure disappear.  The schedule's
seed is held fixed throughout, so every probe run is deterministic and
the shrunk schedule — printed as one line — replays the violation
exactly.

The predicate is "does this schedule still fail?", re-running the whole
deployment per probe; with campaign-sized systems a probe is a few
milliseconds, so the classic O(n^2) worst case is immaterial.
"""

from __future__ import annotations

from typing import Callable, List

from .nemesis import FaultSchedule


def shrink_schedule(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
    max_probes: int = 1000,
) -> FaultSchedule:
    """Shrink ``schedule`` to a 1-minimal failing sub-schedule.

    ``still_fails(candidate)`` must return True iff the candidate
    schedule reproduces the original failure.  The input schedule is
    assumed failing; if it is not, it is returned unchanged.
    """
    if not still_fails(schedule):
        return schedule

    indices: List[int] = list(range(len(schedule.actions)))
    probes = 0

    def fails(keep: List[int]) -> bool:
        nonlocal probes
        probes += 1
        if probes > max_probes:
            raise RuntimeError(
                f"shrinking exceeded {max_probes} probe runs"
            )
        return still_fails(schedule.subset(keep))

    granularity = 2
    while len(indices) >= 2:
        chunk = max(1, len(indices) // granularity)
        chunks = [
            indices[i : i + chunk] for i in range(0, len(indices), chunk)
        ]
        reduced = False
        # Try each chunk alone, then each complement.
        for candidate in chunks:
            if len(candidate) < len(indices) and fails(candidate):
                indices = candidate
                granularity = 2
                reduced = True
                break
        if not reduced:
            for candidate in chunks:
                complement = [i for i in indices if i not in candidate]
                if complement and fails(complement):
                    indices = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(indices):
                break
            granularity = min(len(indices), granularity * 2)

    return schedule.subset(indices)
