"""Nemesis campaigns against the *live* TCP cluster.

PR 1's campaign attacks the simulator; this module drives the same
discipline — seeded declarative fault schedules, every recorded history
checked for linearizability, ddmin shrinking of violating schedules —
against :class:`~repro.net.cluster.LocalCluster` over real sockets,
while closed-loop :class:`~repro.net.client.NetClient` traffic flows.

The action vocabulary is the crash-recovery one the runtime now
supports: :class:`KillNode`/:class:`RestartNode` pairs (restarts replay
the node's WAL), :class:`NetLossBurst` windows on
:class:`~repro.faults.netfaults.TransportFaults`, and
:class:`NetPartition` cut-then-heal windows between endpoints —
symmetric by default, or one-way with ``one_way=True`` (the asymmetric
link failure; :func:`asymmetric_bridge` composes a ring of them).
Schedules are majority-preserving by default — at most a minority of
replicas is ever down at once, so safety *and* liveness stay checkable.

On top of the crash vocabulary sit the *gray* failures the paper's
fail-stop model cannot express:

* :class:`NetSlowNode` — one replica stays alive and correct but every
  frame touching it is held before the wire (``TransportFaults.slow``);
* :class:`WALTearTail` — kill a node and tear the final bytes off its
  at-rest WAL (crash mid-append); the restart must *tolerate* the tear
  and serve the intact prefix;
* :class:`WALBitFlip` — kill a node and flip one seeded bit inside a
  complete WAL record body; the restart must *fail-stop*
  (:exc:`~repro.net.wal.WALCorruptionError`), counted in
  ``NetRunResult.failstops``, never serving from the corrupt fold;
* :class:`WALNoSpace` — arm injected ``ENOSPC`` on one node's
  :class:`~repro.net.faultfs.FaultyFS` for a bounded run of appends;
  the node backs off and retries instead of crashing or replying
  without durability.

Two design points make violations observable rather than theoretical:

* every client keeps its **own** decided-slot cache (unlike the
  loadgen's shared log): if amnesia lets consensus fork, two clients
  hold different logs and their recorded responses conflict;
* every :class:`RestartNode` spawns a fresh **late-reader** client that
  probes the log from slot 0 — the reader's quorum round mixes the
  survivors' durable sticky accepts with the restarted node's answers,
  which is exactly where a node that forgot its acceptance can steal a
  settled slot and serve a forked prefix.

The ``amnesiac`` knob disables the WAL on one replica.  With it unset,
a campaign of kills, restarts, loss bursts and partitions must end with
every history linearizable; with it set, the same machinery must
*catch* the durability bug as a checker violation and shrink the fault
schedule — typically down to the kill/restart pair of the amnesiac
node.  That closed loop (mechanism → end-to-end checked guarantee) is
the point of the whole layer.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import tempfile
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..analysis import sanitizer
from ..analysis.sanitizer import InterleaveError, atomic_section
from ..core.adt import counter_adt
from ..mp.backoff import BackoffPolicy
from ..core.fastcheck import check_linearizable
from ..monitor import MonitorTap, StreamingMonitor
from ..net.client import (
    DEFAULT_QUORUM_TIMEOUT,
    HistoryRecorder,
    NetClient,
    OperationTimeout,
)
from ..net.cluster import LocalCluster
from ..net.faultfs import FaultyFS, flip_record_body, tear_tail
from ..net.loadgen import (
    DEFAULT_KEYS,
    MONITOR_CONFIG_LIMIT,
    MONITOR_NODE_LIMIT,
    _command_stream,
)
from ..net.overload import Overloaded
from ..net.pipeline import PipelineClient, SlotPipeline
from ..net.wal import WALCorruptionError
from ..smr.sessions import dedup_commands, seq_uid
from ..smr.universal import UniversalFrontend, batch_commands, kv_store_adt
from .netfaults import TransportFaults
from .shrink import shrink_schedule

#: seeded pause between a client's ops (seconds).  Nonzero gaps matter:
#: they open single-client-in-flight windows in which slots decide on
#: the uncontended Quorum fast path, the one code path whose durability
#: rests on the sticky acceptance alone (Backup-decided slots are also
#: protected by the acceptor triple).
OP_GAP = (0.005, 0.045)

#: wall-clock grace beyond the schedule horizon before a run is
#: abandoned as wedged (drivers cancelled, history still checked)
RUN_GRACE = 10.0


# ----------------------------------------------------------------------
# schedule vocabulary
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NetFaultAction:
    """Base class: one live-cluster perturbation at wall-clock ``at``
    seconds after the run starts."""

    at: float

    def describe(self) -> str:
        """One compact token for schedule lines and shrink reports."""
        name = type(self).__name__
        args = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{name}({args})"


@dataclass(frozen=True)
class KillNode(NetFaultAction):
    """Crash replica ``node``: listener closed, connections severed."""

    node: int = 0


@dataclass(frozen=True)
class RestartNode(NetFaultAction):
    """Relaunch replica ``node`` from its WAL directory."""

    node: int = 0


@dataclass(frozen=True)
class NetLossBurst(NetFaultAction):
    """Add i.i.d. frame loss at ``rate`` for ``duration`` seconds."""

    duration: float = 0.5
    rate: float = 0.2


@dataclass(frozen=True)
class NetPartition(NetFaultAction):
    """Cut endpoints ``a``/``b`` for ``duration`` seconds, then heal.

    With ``one_way=True`` only the ``a → b`` direction is cut — the
    asymmetric link failure: ``b`` keeps hearing from ``a`` and replies
    into a void.
    """

    a: str = "clients"
    b: str = "node0"
    duration: float = 0.5
    one_way: bool = False


@dataclass(frozen=True)
class NetDupBurst(NetFaultAction):
    """Deliver frames *twice* i.i.d. at ``rate`` for ``duration``
    seconds (``TransportFaults.burst_duplicate``) — at-least-once
    delivery gone wrong: retransmits after lost acks, a replaying
    middlebox.  Correctness under this action is exactly the
    session-dedup guarantee: a redelivered decree folds once."""

    duration: float = 0.5
    rate: float = 0.2


@dataclass(frozen=True)
class NetSlowNode(NetFaultAction):
    """Make replica ``node`` a slow node for ``duration`` seconds: every
    frame it sends or receives is held ``delay`` seconds before the
    socket.  The node stays alive and correct — just late."""

    node: int = 0
    delay: float = 0.05
    duration: float = 1.0


@dataclass(frozen=True)
class WALTearTail(NetFaultAction):
    """Kill replica ``node`` and tear the last ``cut`` bytes off its
    at-rest WAL — the crash-mid-append torn write.  A later
    :class:`RestartNode` must tolerate the tear: replay truncates the
    incomplete record and serves the intact prefix."""

    node: int = 0
    cut: int = 3


@dataclass(frozen=True)
class WALBitFlip(NetFaultAction):
    """Kill replica ``node`` and flip one seeded bit inside a complete
    record body of its at-rest WAL.  A later :class:`RestartNode` must
    **fail-stop** — the restart raises
    :exc:`~repro.net.wal.WALCorruptionError`, the node stays dead, and
    the run counts a ``failstop`` instead of a restart."""

    node: int = 0


@dataclass(frozen=True)
class WALNoSpace(NetFaultAction):
    """Exhaust replica ``node``'s disk for its next ``count`` WAL
    appends (injected ``ENOSPC`` via :class:`FaultyFS`).  The node must
    back off and retry, never replying before the record is durable."""

    node: int = 0
    count: int = 4


#: every concrete action class, for generation and reports
NET_ACTION_CLASSES = (
    KillNode,
    RestartNode,
    NetLossBurst,
    NetDupBurst,
    NetPartition,
    NetSlowNode,
    WALTearTail,
    WALBitFlip,
    WALNoSpace,
)


def asymmetric_bridge(
    at: float,
    endpoints: Tuple[str, ...] = ("node0", "node1", "node2"),
    duration: float = 0.5,
) -> Tuple[NetPartition, ...]:
    """A ring of one-way cuts: each endpoint cannot send to the next,
    yet every pair stays mutually reachable through the asymmetric
    remainder — the classic gray partition in which no node looks dead
    from everywhere at once."""
    return tuple(
        NetPartition(
            at=at,
            a=endpoints[i],
            b=endpoints[(i + 1) % len(endpoints)],
            duration=duration,
            one_way=True,
        )
        for i in range(len(endpoints))
    )


@dataclass(frozen=True)
class NetSchedule:
    """A seed plus an ordered tuple of live-cluster fault actions.

    The seed drives the workload streams, the transport fault RNG and
    the schedule itself, so the line :meth:`describe` prints is a
    complete reproducer (modulo real-network timing, which is the point
    of running on sockets).
    """

    seed: int
    actions: Tuple[NetFaultAction, ...] = ()
    horizon: float = 4.0
    majority_preserving: bool = True

    def subset(self, keep: Iterable[int]) -> "NetSchedule":
        """The schedule restricted to the action positions in ``keep``
        (the delta-debugging shrinker's hook)."""
        kept = frozenset(keep)
        return NetSchedule(
            seed=self.seed,
            actions=tuple(
                a for i, a in enumerate(self.actions) if i in kept
            ),
            horizon=self.horizon,
            majority_preserving=self.majority_preserving,
        )

    def fault_classes(self) -> Tuple[str, ...]:
        """The sorted, deduplicated action kinds (metric aggregation)."""
        kinds = {type(a).__name__ for a in self.actions}
        return tuple(sorted(kinds)) or ("None",)

    def describe(self) -> str:
        """One replayable line: seed, horizon and every action."""
        inner = "; ".join(a.describe() for a in self.actions) or "no faults"
        return f"seed={self.seed} horizon={self.horizon} [{inner}]"


def random_net_schedule(
    seed: int,
    n_servers: int = 3,
    horizon: float = 4.0,
    max_kills: int = 2,
    max_net_actions: int = 2,
    majority_preserving: bool = True,
    must_restart: Optional[int] = None,
    storage_faults: bool = False,
) -> NetSchedule:
    """Draw a live-cluster fault schedule, deterministically from ``seed``.

    Kills always come paired with a later restart, and pairs are placed
    so at most a minority of replicas is down at any instant (unless
    ``majority_preserving=False``).  ``must_restart`` forces one
    kill/restart pair for that node — the amnesiac-canary campaigns use
    it so the node under suspicion is guaranteed to lose its memory
    mid-run.  Network perturbations draw from loss bursts, partitions
    (sometimes one-way) and slow-node windows.  ``storage_faults=True``
    additionally converts one down-window into a
    :class:`WALTearTail`/:class:`RestartNode` pair, so the recovered
    node replays a torn log under traffic.  Action times land in the
    first part of the horizon so the tail is left for recovery and late
    readers.
    """
    rng = random.Random(f"netcampaign:{seed}")
    minority = max(1, (n_servers - 1) // 2)
    span = max(0.8, min(horizon * 0.5, 2.0))
    actions: List[NetFaultAction] = []
    down: List[Tuple[float, float, int]] = []  # (start, end, node)

    def fits(start: float, end: float, node: int) -> bool:
        overlapping = [
            iv for iv in down if not (iv[1] <= start or iv[0] >= end)
        ]
        if any(iv[2] == node for iv in overlapping):
            return False
        if majority_preserving and len(overlapping) + 1 > minority:
            return False
        return True

    def add_pair(node: int, tear: bool = False) -> bool:
        at = round(rng.uniform(0.2, span), 2)
        duration = round(rng.uniform(0.3, 0.7), 2)
        if not fits(at, at + duration, node):
            return False
        down.append((at, at + duration, node))
        if tear:
            actions.append(
                WALTearTail(at=at, node=node, cut=rng.randrange(1, 8))
            )
        else:
            actions.append(KillNode(at=at, node=node))
        actions.append(RestartNode(at=round(at + duration, 2), node=node))
        return True

    if must_restart is not None:
        while not add_pair(must_restart):
            pass
    if storage_faults:
        while not add_pair(rng.randrange(n_servers), tear=True):
            pass
    for _ in range(rng.randint(0, max_kills)):
        add_pair(rng.randrange(n_servers))

    endpoints = ["clients"] + [f"node{i}" for i in range(n_servers)]
    for _ in range(rng.randint(0, max_net_actions)):
        at = round(rng.uniform(0.1, span), 2)
        kind = rng.random()
        if kind < 0.4:
            actions.append(
                NetLossBurst(
                    at=at,
                    duration=round(rng.uniform(0.2, 0.6), 2),
                    rate=round(rng.uniform(0.05, 0.3), 2),
                )
            )
        elif kind < 0.75:
            a, b = rng.sample(endpoints, 2)
            actions.append(
                NetPartition(
                    at=at,
                    a=a,
                    b=b,
                    duration=round(rng.uniform(0.2, 0.6), 2),
                    one_way=rng.random() < 0.3,
                )
            )
        else:
            actions.append(
                NetSlowNode(
                    at=at,
                    node=rng.randrange(n_servers),
                    delay=round(rng.uniform(0.02, 0.08), 3),
                    duration=round(rng.uniform(0.4, 1.0), 2),
                )
            )

    if not actions:
        actions.append(NetLossBurst(at=0.3, duration=0.4, rate=0.15))
    actions.sort(key=lambda a: a.at)
    return NetSchedule(
        seed=seed,
        actions=tuple(actions),
        horizon=horizon,
        majority_preserving=majority_preserving,
    )


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class NetRunResult:
    """One live-cluster run: what happened, and the checker's verdict."""

    schedule: NetSchedule
    verdict: str = "unknown"
    strategy: str = ""
    reason: Optional[str] = None
    committed: int = 0
    pending: int = 0
    successors: int = 0
    kills: int = 0
    restarts: int = 0
    skipped_kills: int = 0
    failstops: int = 0
    late_readers: int = 0
    fast: int = 0
    slow: int = 0
    duration: float = 0.0
    amnesiac: Optional[int] = None
    pipelined: bool = False
    decrees: int = 0
    batched_ops: int = 0
    monitored: bool = False
    monitor_verdict: Optional[str] = None
    monitor_reason: Optional[str] = None
    monitor_events: int = 0
    monitor_witness: Optional[Dict[str, Any]] = None
    #: the run drove the RacySlotPipeline mutant (awaits mid-claim)
    race_mutant: bool = False
    #: the runtime interleaving sanitizer was armed for this run
    sanitized: bool = False
    #: interleavings the sanitizer recorded during the run
    sanitizer_violations: int = 0

    @property
    def ok(self) -> bool:
        return self.verdict == "linearizable"

    @property
    def violation(self) -> bool:
        return self.verdict == "violation"

    @property
    def sanitizer_caught(self) -> bool:
        """True iff the armed sanitizer observed at least one interleave."""
        return self.sanitized and self.sanitizer_violations > 0

    def line(self) -> str:
        """One replayable report line, campaign.py style."""
        tag = "OK " if self.ok else ("BUG" if self.violation else "???")
        extra = f" amnesiac=node{self.amnesiac}" if self.amnesiac is not None else ""
        if self.failstops:
            extra += f" failstops={self.failstops}"
        if self.pipelined:
            extra += (
                f" pipelined decrees={self.decrees}"
                f" batched={self.batched_ops}"
            )
        if self.monitored:
            extra += f" monitor={self.monitor_verdict}"
        if self.race_mutant:
            extra += " race-mutant"
        if self.sanitized:
            extra += f" sanitizer={self.sanitizer_violations}"
        return (
            f"[{tag}] {self.verdict:<13} committed={self.committed:<3} "
            f"pending={self.pending} successors={self.successors} "
            f"kills={self.kills} restarts={self.restarts} "
            f"late={self.late_readers} fast={self.fast} slow={self.slow} "
            f"t={self.duration:.2f}s{extra} :: {self.schedule.describe()}"
        )

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schedule": self.schedule.describe(),
            "verdict": self.verdict,
            "strategy": self.strategy,
            "reason": self.reason,
            "committed": self.committed,
            "pending": self.pending,
            "successors": self.successors,
            "kills": self.kills,
            "restarts": self.restarts,
            "skipped_kills": self.skipped_kills,
            "failstops": self.failstops,
            "late_readers": self.late_readers,
            "fast": self.fast,
            "slow": self.slow,
            "duration": self.duration,
            "amnesiac": self.amnesiac,
            "pipelined": self.pipelined,
            "decrees": self.decrees,
            "batched_ops": self.batched_ops,
            "monitored": self.monitored,
            "monitor_verdict": self.monitor_verdict,
            "monitor_reason": self.monitor_reason,
            "monitor_events": self.monitor_events,
            "race_mutant": self.race_mutant,
            "sanitized": self.sanitized,
            "sanitizer_violations": self.sanitizer_violations,
        }


@dataclass
class NetViolation:
    """A linearizability violation plus its shrunk reproducer."""

    result: NetRunResult
    shrunk: NetSchedule
    shrunk_reason: Optional[str] = None

    def report(self) -> str:
        lines = [
            "linearizability violation on the live cluster",
            f"  run     : {self.result.line()}",
            f"  reason  : {self.result.reason}",
            f"  shrunk  : {self.shrunk.describe()} "
            f"({len(self.shrunk.actions)}/{len(self.result.schedule.actions)}"
            f" actions)",
        ]
        if self.shrunk_reason:
            lines.append(f"  replayed: {self.shrunk_reason}")
        return "\n".join(lines)


@dataclass
class NetCampaignReport:
    """Aggregate outcome of a live-cluster campaign."""

    runs: List[NetRunResult] = field(default_factory=list)
    violations: List[NetViolation] = field(default_factory=list)

    @property
    def all_linearizable(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        ok = sum(1 for r in self.runs if r.ok)
        inconclusive = sum(
            1 for r in self.runs if not r.ok and not r.violation
        )
        lines = [
            f"net campaign: {len(self.runs)} runs, {ok} linearizable, "
            f"{len(self.violations)} violations, "
            f"{inconclusive} inconclusive",
        ]
        for violation in self.violations:
            lines.append(violation.report())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


@dataclass
class _RunConfig:
    """Everything about a run that is not the schedule."""

    replicas: int = 3
    clients: int = 3
    ops_per_client: int = 8
    keys: Tuple[str, ...] = DEFAULT_KEYS
    op_timeout: float = 2.0
    quorum_timeout: float = DEFAULT_QUORUM_TIMEOUT
    amnesiac: Optional[int] = None
    wal_fsync: bool = True
    #: drive main traffic through a shared SlotPipeline (batched,
    #: windowed decrees) instead of one NetClient probe per op.  Late
    #: readers always stay on NetClients with private decided-slot
    #: caches — they are the fork detectors.
    pipelined: bool = False
    codec: Optional[str] = None
    window: int = 8
    batch: int = 16
    group_commit: bool = False
    #: run a live StreamingMonitor on the recorded history: the drivers
    #: stop as soon as it flips to violation (fail-fast, mid-run), and
    #: the run result carries the online verdict next to the post-hoc
    #: one.  The amnesiac-canary campaigns assert the two agree.
    monitor: bool = False
    #: substitute :class:`RacySlotPipeline` for the main-traffic
    #: pipeline (implies ``pipelined``): its slot claims suspend
    #: mid-critical-section, the lost-update shape RD08 flags statically
    race_mutant: bool = False
    #: arm the runtime interleaving sanitizer for the run; the result
    #: reports how many interleavings it recorded
    sanitize: bool = False


class RacySlotPipeline(SlotPipeline):
    """A :class:`~repro.net.pipeline.SlotPipeline` with a seeded race.

    Every :meth:`enqueue` spawns a pair of claim tasks that read
    ``_next_slot``, suspend, and write the stale value back — each is a
    no-op alone, but when two interleave (they always do: the pair
    starts in the same loop tick) the write-back rolls back slots the
    real pump claimed meanwhile, so later decrees land on slots already
    in flight.  The claim sits inside the same ``"slot-claim"``
    :func:`~repro.analysis.sanitizer.atomic_section` the real pipeline
    declares, which is the point of the mutant: statically it is an
    RD08 canary (a copy of this shape is linted in the test suite), and
    dynamically the armed sanitizer must record the interleave the
    moment the second task enters the held section.

    This class lives here rather than in :mod:`repro.faults.mutants`
    because it imports :mod:`repro.net`, which would recreate the
    circular package initialization the lazy ``netcampaign`` loader in
    ``faults/__init__`` exists to avoid.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._racy_tasks: List[asyncio.Task] = []

    def enqueue(self, tagged: Tuple) -> asyncio.Future:
        future = super().enqueue(tagged)
        for _ in range(2):
            task = self.transport.loop.create_task(self._racy_claim())
            self._racy_tasks.append(task)
            task.add_done_callback(self._racy_tasks.remove)
        return future

    async def _racy_claim(self) -> None:
        try:
            with atomic_section(self, "slot-claim"):
                claimed = self._next_slot
                await asyncio.sleep(0)  # the interleaving window
                self._next_slot = claimed
        except InterleaveError:
            # Recorded on the sanitizer's violation list; swallowed so
            # the run (and the checker's history) survives the catch.
            pass

    def _claim_slot(self) -> int:
        try:
            return super()._claim_slot()
        except InterleaveError:
            # The pump barged into a claim a racy task left suspended —
            # the violation is recorded; fall back to a bare unguarded
            # bump so the run keeps making progress.
            slot = self._next_slot
            while slot in self.log:
                slot += 1
            self._next_slot = slot + 1
            return slot


async def _run_schedule(
    schedule: NetSchedule, config: _RunConfig
) -> Tuple[NetRunResult, HistoryRecorder]:
    """One live run: cluster up, traffic + nemesis, check, tear down."""
    loop = asyncio.get_running_loop()
    result = NetRunResult(
        schedule=schedule,
        amnesiac=config.amnesiac,
        race_mutant=config.race_mutant,
    )
    majority = config.replicas // 2 + 1
    sanitizer_was_enabled = sanitizer.enabled()
    if config.sanitize:
        # Per-run isolation: violations recorded by this run must not
        # leak into the next schedule's count (or vice versa).
        sanitizer.reset()
        sanitizer.enable()
    with tempfile.TemporaryDirectory(prefix="repro-net-wal-") as wal_root:
        faults = TransportFaults(seed=schedule.seed)
        # Nodes targeted by WALNoSpace get a FaultyFS under their WAL so
        # the nemesis can exhaust the "disk" mid-run; everything else
        # writes through the passthrough seam.
        wal_fs = {
            action.node: FaultyFS(seed=schedule.seed)
            for action in schedule.actions
            if isinstance(action, WALNoSpace)
        }
        cluster = LocalCluster(
            n_servers=config.replicas,
            faults=faults,
            wal_root=wal_root,
            amnesiac=()
            if config.amnesiac is None
            else (config.amnesiac,),
            wal_fsync=config.wal_fsync,
            wal_fs=wal_fs or None,
            codec=config.codec,
            group_commit=config.group_commit,
        )
        await cluster.start()
        transport = cluster.client_transport("clients")
        tap: Optional[MonitorTap] = None
        if config.monitor:
            tap = MonitorTap(
                StreamingMonitor(
                    kv_store_adt(),
                    node_limit=MONITOR_NODE_LIMIT,
                    config_limit=MONITOR_CONFIG_LIMIT,
                )
            )
        recorder = HistoryRecorder(
            clock=lambda: transport.now, tap=tap
        )
        frontend = UniversalFrontend(kv_store_adt())
        all_clients: List[Union[NetClient, PipelineClient]] = []
        late_tasks: List[asyncio.Task] = []
        pipeline: Optional[SlotPipeline] = None
        if config.pipelined or config.race_mutant:
            pipeline_cls = (
                RacySlotPipeline if config.race_mutant else SlotPipeline
            )
            pipeline = pipeline_cls(
                "main",
                config.replicas,
                transport,
                window=config.window,
                max_batch=config.batch,
                quorum_timeout=config.quorum_timeout,
            )

        def make_client(name: str) -> NetClient:
            # Per-client decided-slot caches: a forked consensus must
            # surface as conflicting recorded responses, not be papered
            # over by a shared log.
            client = NetClient(
                name,
                config.replicas,
                transport,
                {},
                recorder,
                frontend,
                quorum_timeout=config.quorum_timeout,
                op_timeout=config.op_timeout,
            )
            all_clients.append(client)
            return client

        def make_driver(name: str) -> Union[NetClient, PipelineClient]:
            # Main traffic rides the batching pipeline when configured;
            # the closed-loop contract (invoke-before-effect, timeout →
            # pending + poisoned identity) is identical either way, so
            # the checker sees the same kind of history.
            if pipeline is None:
                return make_client(name)
            client = PipelineClient(
                name,
                pipeline,
                recorder,
                op_timeout=config.op_timeout,
            )
            all_clients.append(client)
            return client

        async def drive(index: int) -> None:
            client = make_driver(f"c{index}")
            rng = random.Random(f"netload:{schedule.seed}:{index}")
            stream = _command_stream(rng, config.keys)
            for _ in range(config.ops_per_client):
                if tap is not None and tap.violated:
                    return  # fail-fast: the monitor already has a witness
                await asyncio.sleep(rng.uniform(*OP_GAP))
                command = next(stream)
                try:
                    await client.submit(command)
                    result.committed += 1
                except OperationTimeout:
                    result.successors += 1
                    client = client.successor()
                    all_clients.append(client)

        async def read_back(index: int) -> None:
            # A late reader starts with an empty log and probes from
            # slot 0: its responses replay the whole decided prefix,
            # which is where a recovered-but-amnesiac node forks history.
            client = make_client(f"late{index}")
            for key in config.keys:
                if tap is not None and tap.violated:
                    return
                try:
                    await client.submit(("get", key))
                    result.committed += 1
                except OperationTimeout:
                    result.successors += 1
                    client = client.successor()
                    all_clients.append(client)

        async def kill_guarded(node: int) -> bool:
            """Kill ``node`` unless it is already down or the kill would
            take the majority with it (shrink probes may have dropped a
            partner restart; a wedged run teaches nothing)."""
            alive = cluster.alive()
            if node not in alive:
                return True  # already down: the at-rest mutation may proceed
            if schedule.majority_preserving and len(alive) - 1 < majority:
                result.skipped_kills += 1
                return False
            await cluster.kill(node)
            result.kills += 1
            return True

        async def nemesis() -> None:
            start = loop.time()
            for action in sorted(schedule.actions, key=lambda a: a.at):
                delay = start + action.at - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                if isinstance(action, KillNode):
                    alive = cluster.alive()
                    if action.node not in alive:
                        continue
                    if (
                        schedule.majority_preserving
                        and len(alive) - 1 < majority
                    ):
                        result.skipped_kills += 1
                        continue
                    await cluster.kill(action.node)
                    result.kills += 1
                elif isinstance(action, RestartNode):
                    if action.node in cluster.alive():
                        continue
                    try:
                        await cluster.restart(action.node)
                    except WALCorruptionError:
                        # Provably corrupt stable storage: the node
                        # fail-stops instead of recovering.  It stays
                        # dead for the rest of the run — no late
                        # reader, the survivors carry the majority.
                        result.failstops += 1
                        continue
                    result.restarts += 1
                    result.late_readers += 1
                    late_tasks.append(
                        loop.create_task(read_back(result.late_readers))
                    )
                elif isinstance(action, NetLossBurst):
                    faults.burst_loss(action.rate, action.duration)
                elif isinstance(action, NetDupBurst):
                    faults.burst_duplicate(action.rate, action.duration)
                elif isinstance(action, NetPartition):
                    faults.partition(
                        action.a,
                        action.b,
                        symmetric=not action.one_way,
                        duration=action.duration,
                    )
                elif isinstance(action, NetSlowNode):
                    faults.slow(
                        f"node{action.node}",
                        action.delay,
                        duration=action.duration,
                    )
                elif isinstance(action, WALTearTail):
                    if await kill_guarded(action.node):
                        tear_tail(
                            os.path.join(
                                wal_root, f"node{action.node}", "wal.log"
                            ),
                            cut=action.cut,
                        )
                elif isinstance(action, WALBitFlip):
                    if await kill_guarded(action.node):
                        flip_record_body(
                            os.path.join(
                                wal_root, f"node{action.node}", "wal.log"
                            ),
                            seed=schedule.seed,
                        )
                elif isinstance(action, WALNoSpace):
                    fs = wal_fs.get(action.node)
                    if fs is not None:
                        fs.fail_appends(action.count)

        start = transport.now
        budget = schedule.horizon + config.op_timeout + RUN_GRACE
        tasks = [loop.create_task(nemesis())] + [
            loop.create_task(drive(i)) for i in range(config.clients)
        ]
        try:
            await asyncio.wait_for(
                asyncio.gather(*tasks), timeout=budget
            )
            if late_tasks:
                await asyncio.wait_for(
                    asyncio.gather(*late_tasks), timeout=budget
                )
        except asyncio.TimeoutError:
            for task in tasks + late_tasks:
                task.cancel()
            await asyncio.gather(
                *tasks, *late_tasks, return_exceptions=True
            )
            result.reason = "run exceeded its wall-clock budget"
        result.duration = transport.now - start
        await cluster.stop()
        if tap is not None:
            monitor_report = await tap.close()
            result.monitored = True
            result.monitor_verdict = monitor_report.verdict
            result.monitor_reason = monitor_report.reason
            result.monitor_events = monitor_report.events
            result.monitor_witness = monitor_report.witness

    if pipeline is not None:
        result.pipelined = True
        result.decrees = pipeline.decrees
        result.batched_ops = pipeline.batched_ops
    result.pending = len(recorder.pending_clients())
    ops = [r for c in all_clients for r in c.results]
    result.fast = sum(1 for r in ops if r.path == "fast")
    result.slow = sum(1 for r in ops if r.path == "slow")

    if config.sanitize:
        result.sanitized = True
        result.sanitizer_violations = len(sanitizer.violations())
        if not sanitizer_was_enabled:
            sanitizer.disable()

    check = check_linearizable(recorder.trace(), kv_store_adt())
    result.strategy = check.strategy
    if check.unknown:
        result.verdict = "unknown"
        result.reason = result.reason or check.result.reason
    elif check.ok:
        result.verdict = "linearizable"
    else:
        result.verdict = "violation"
        result.reason = check.result.reason
    return result, recorder


def _write_artifact(
    directory: str, name: str, payload: Dict[str, Any]
) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=repr)
    return path


def run_net_campaign(
    n_schedules: int = 3,
    base_seed: int = 0,
    replicas: int = 3,
    clients: int = 3,
    ops_per_client: int = 8,
    horizon: float = 4.0,
    op_timeout: float = 2.0,
    quorum_timeout: float = DEFAULT_QUORUM_TIMEOUT,
    keys: Tuple[str, ...] = DEFAULT_KEYS,
    amnesiac: Optional[int] = None,
    majority_preserving: bool = True,
    shrink: bool = True,
    schedules: Optional[List[NetSchedule]] = None,
    artifact_dir: Optional[str] = None,
    wal_fsync: bool = True,
    pipelined: bool = False,
    codec: Optional[str] = None,
    window: int = 8,
    batch: int = 16,
    group_commit: bool = False,
    monitor: bool = False,
    race_mutant: bool = False,
    sanitize: bool = False,
    emit=print,
) -> NetCampaignReport:
    """Run seeded chaos campaigns against live localhost clusters.

    Each schedule boots a fresh :class:`LocalCluster` (WAL-backed; the
    ``amnesiac`` replica, if any, gets none), drives closed-loop client
    traffic while the nemesis kills/restarts replicas and perturbs the
    transport, then feeds the recorded wire-level history through
    :func:`~repro.core.fastcheck.check_linearizable`.  A violating
    schedule is delta-debugged to a 1-minimal reproducer by re-running
    the live cluster per probe (``shrink=False`` skips this).  Explicit
    ``schedules`` override generation — the CI canary passes a directed
    kill/restart pair.  With ``artifact_dir`` every run writes its
    history + verdict JSON, and every violation its shrunk schedule.

    ``pipelined=True`` swaps the main traffic onto a shared batching
    :class:`~repro.net.pipeline.SlotPipeline` (``window``/``batch``
    sized; ``codec``/``group_commit`` configure the cluster), which is
    how CI proves group commit and decree batching compose with the
    chaos vocabulary.  Late readers stay on probing ``NetClient``\\ s
    with private decided-slot caches either way — they are the fork
    detectors.

    ``monitor=True`` attaches a live
    :class:`~repro.monitor.StreamingMonitor` to every run's recorder:
    drivers stop the moment it flips to violation (the bug is caught
    *during* the run, not at post-hoc check time), each
    :class:`NetRunResult` carries the online verdict next to the
    post-hoc one, and with ``artifact_dir`` a monitor-caught violation
    writes its shrunken witness as ``net-monitor-witness-{seed}.json``.

    ``race_mutant=True`` swaps the main-traffic pipeline for
    :class:`RacySlotPipeline` (implying ``pipelined``), whose slot
    claims suspend inside their critical section; ``sanitize=True``
    arms the runtime interleaving sanitizer so each result reports the
    interleavings it recorded (``NetRunResult.sanitizer_caught``).  The
    CI canary runs both together and demands a catch — the dynamic
    cross-check of the static RD08 rule.
    """
    config = _RunConfig(
        replicas=replicas,
        clients=clients,
        ops_per_client=ops_per_client,
        keys=keys,
        op_timeout=op_timeout,
        quorum_timeout=quorum_timeout,
        amnesiac=amnesiac,
        wal_fsync=wal_fsync,
        pipelined=pipelined or race_mutant,
        codec=codec,
        window=window,
        batch=batch,
        group_commit=group_commit,
        monitor=monitor,
        race_mutant=race_mutant,
        sanitize=sanitize,
    )
    if schedules is None:
        schedules = [
            random_net_schedule(
                seed=base_seed + k,
                n_servers=replicas,
                horizon=horizon,
                majority_preserving=majority_preserving,
                must_restart=amnesiac,
            )
            for k in range(n_schedules)
        ]
    report = NetCampaignReport()
    for schedule in schedules:
        result, recorder = asyncio.run(_run_schedule(schedule, config))
        report.runs.append(result)
        emit(result.line())
        if artifact_dir:
            _write_artifact(
                artifact_dir,
                f"net-run-{schedule.seed}.json",
                {
                    "report": result.to_jsonable(),
                    "history": recorder.to_jsonable(),
                },
            )
        if artifact_dir and result.monitor_verdict == "violation":
            _write_artifact(
                artifact_dir,
                f"net-monitor-witness-{schedule.seed}.json",
                {
                    "verdict": result.monitor_verdict,
                    "reason": result.monitor_reason,
                    "events": result.monitor_events,
                    "witness": result.monitor_witness,
                    "schedule": schedule.describe(),
                },
            )
        if not result.violation:
            continue

        shrunk, shrunk_reason = schedule, result.reason
        if shrink:
            emit("  shrinking the failing schedule (live re-runs)...")

            def still_fails(candidate: NetSchedule) -> bool:
                probe, _ = asyncio.run(_run_schedule(candidate, config))
                return probe.violation

            shrunk = shrink_schedule(schedule, still_fails)
            replay, _ = asyncio.run(_run_schedule(shrunk, config))
            shrunk_reason = replay.reason
        violation = NetViolation(
            result=result, shrunk=shrunk, shrunk_reason=shrunk_reason
        )
        report.violations.append(violation)
        emit(violation.report())
        if artifact_dir:
            _write_artifact(
                artifact_dir,
                f"net-violation-{schedule.seed}.json",
                {
                    "report": result.to_jsonable(),
                    "shrunk": shrunk.describe(),
                    "shrunk_reason": shrunk_reason,
                },
            )
    return report


# ----------------------------------------------------------------------
# the retry-storm campaign (exactly-once under duplicates and retries)
# ----------------------------------------------------------------------


def retry_storm_schedule(
    seed: int, n_servers: int = 3, horizon: float = 3.0
) -> NetSchedule:
    """A directed schedule that manufactures every duplicate source at
    once: a long duplicate-delivery window (redelivered decrees), loss
    bursts violent enough to force op timeouts → client retries →
    re-proposed decrees, and one kill/restart pair so retried ops also
    fail over to a successor coordinator.  Deterministic in ``seed``.
    """
    rng = random.Random(f"retrystorm:{seed}")
    span = min(horizon * 0.5, 1.6)
    actions: List[NetFaultAction] = [
        # duplicates run through most of the storm window
        NetDupBurst(
            at=0.1,
            duration=round(span + 0.8, 2),
            rate=round(rng.uniform(0.15, 0.3), 2),
        ),
        NetLossBurst(
            at=round(rng.uniform(0.15, 0.35), 2),
            duration=round(rng.uniform(0.4, 0.7), 2),
            rate=round(rng.uniform(0.3, 0.45), 2),
        ),
        NetLossBurst(
            at=round(rng.uniform(0.8, 1.1), 2),
            duration=round(rng.uniform(0.3, 0.5), 2),
            rate=round(rng.uniform(0.25, 0.4), 2),
        ),
    ]
    # a short total blackout of the client endpoint: every in-flight
    # attempt times out, so clients must retry (and the retried op's
    # first decree — already on the replicas — often still decides,
    # manufacturing the duplicate-decree case the session seam folds)
    blackout_at = round(rng.uniform(0.25, 0.5), 2)
    blackout = round(rng.uniform(0.25, 0.4), 2)
    for j in range(n_servers):
        actions.append(
            NetPartition(
                at=blackout_at,
                a="clients",
                b=f"node{j}",
                duration=blackout,
            )
        )
    node = rng.randrange(n_servers)
    kill_at = round(rng.uniform(0.4, 0.8), 2)
    actions.append(KillNode(at=kill_at, node=node))
    actions.append(
        RestartNode(at=round(kill_at + rng.uniform(0.5, 0.9), 2), node=node)
    )
    actions.sort(key=lambda a: a.at)
    return NetSchedule(seed=seed, actions=tuple(actions), horizon=horizon)


@dataclass
class RetryStormResult:
    """One retry-storm run on a replicated counter."""

    schedule: NetSchedule
    dedup: bool = True
    verdict: str = "unknown"
    strategy: str = ""
    reason: Optional[str] = None
    committed: int = 0
    pending: int = 0
    successors: int = 0
    retries: int = 0
    hedges: int = 0
    shed: int = 0
    kills: int = 0
    restarts: int = 0
    #: frames the transport delivered twice
    dup_frames: int = 0
    #: duplicate decree occurrences the session seam folded away
    duplicates_folded: int = 0
    #: the pipeline's applied counter state at the end of the run
    applied_count: int = 0
    #: distinct (session-deduplicated) increments in the decided log
    distinct_incs: int = 0
    #: raw increment occurrences in the decided log (≥ distinct_incs)
    raw_incs: int = 0
    duration: float = 0.0
    monitored: bool = False
    monitor_verdict: Optional[str] = None
    monitor_reason: Optional[str] = None
    monitor_events: int = 0
    monitor_witness: Optional[Dict[str, Any]] = None

    @property
    def exactly_once(self) -> bool:
        """The mechanical witness: the applied counter equals the
        distinct increments decided — every acked increment applied
        exactly once, however many decrees carried it."""
        return self.applied_count == self.distinct_incs

    @property
    def ok(self) -> bool:
        return self.verdict == "linearizable" and self.exactly_once

    @property
    def caught(self) -> bool:
        """Whether the checker (post-hoc or online) flagged this run —
        what the dedup-disabled mutant canary must achieve."""
        return (
            self.verdict == "violation"
            or self.monitor_verdict == "violation"
        )

    def line(self) -> str:
        tag = "OK " if self.ok else ("BUG" if self.caught else "???")
        extra = "" if self.dedup else " MUTANT(dedup-off)"
        if self.monitored:
            extra += f" monitor={self.monitor_verdict}"
        return (
            f"[{tag}] {self.verdict:<13} committed={self.committed:<3} "
            f"pending={self.pending} retries={self.retries} "
            f"hedges={self.hedges} shed={self.shed} "
            f"dup_frames={self.dup_frames} folded={self.duplicates_folded} "
            f"applied={self.applied_count}/{self.distinct_incs}"
            f"(raw {self.raw_incs}) t={self.duration:.2f}s{extra} "
            f":: {self.schedule.describe()}"
        )

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schedule": self.schedule.describe(),
            "dedup": self.dedup,
            "verdict": self.verdict,
            "strategy": self.strategy,
            "reason": self.reason,
            "committed": self.committed,
            "pending": self.pending,
            "successors": self.successors,
            "retries": self.retries,
            "hedges": self.hedges,
            "shed": self.shed,
            "kills": self.kills,
            "restarts": self.restarts,
            "dup_frames": self.dup_frames,
            "duplicates_folded": self.duplicates_folded,
            "applied_count": self.applied_count,
            "distinct_incs": self.distinct_incs,
            "raw_incs": self.raw_incs,
            "exactly_once": self.exactly_once,
            "duration": self.duration,
            "monitored": self.monitored,
            "monitor_verdict": self.monitor_verdict,
            "monitor_reason": self.monitor_reason,
            "monitor_events": self.monitor_events,
        }


async def _run_retry_storm(
    schedule: NetSchedule,
    replicas: int = 3,
    clients: int = 4,
    ops_per_client: int = 10,
    op_timeout: float = 2.5,
    attempt_timeout: float = 0.3,
    hedge_after: float = 0.2,
    quorum_timeout: float = 0.08,
    dedup: bool = True,
    monitor: bool = True,
) -> RetryStormResult:
    """One retry-storm run: a replicated counter under duplicate
    delivery, forced timeouts with safe retry + hedging, and a
    coordinator kill/restart.  ``dedup=False`` is the mutant."""
    loop = asyncio.get_running_loop()
    result = RetryStormResult(schedule=schedule, dedup=dedup)
    adt = counter_adt()
    majority = replicas // 2 + 1
    with tempfile.TemporaryDirectory(prefix="repro-storm-wal-") as wal_root:
        faults = TransportFaults(seed=schedule.seed)
        cluster = LocalCluster(
            n_servers=replicas, faults=faults, wal_root=wal_root
        )
        await cluster.start()
        transport = cluster.client_transport("clients")
        tap: Optional[MonitorTap] = None
        if monitor:
            tap = MonitorTap(
                StreamingMonitor(
                    counter_adt(),
                    node_limit=MONITOR_NODE_LIMIT,
                    config_limit=MONITOR_CONFIG_LIMIT,
                )
            )
        recorder = HistoryRecorder(clock=lambda: transport.now, tap=tap)
        # window sized so retried decrees actually propose while the
        # originals are still in flight (that concurrency is what
        # manufactures the duplicate-decree case the seam must fold)
        pipeline = SlotPipeline(
            "storm",
            replicas,
            transport,
            adt=adt,
            window=4 * clients,
            quorum_timeout=quorum_timeout,
            dedup=dedup,
            # snappy per-slot Backup retries: a slot stuck behind the
            # blackout must decide quickly after the heal, or it
            # head-of-line-blocks every later response past the gap
            backoff=BackoffPolicy(
                base=0.08, factor=2.0, cap=0.5, jitter=0.5, max_retries=14
            ),
        )
        # a deep retry budget: the op deadline is the binding limit,
        # so a storm-tossed op keeps re-proposing until time runs out
        storm_backoff = BackoffPolicy(
            base=0.05, factor=2.0, cap=0.4, jitter=0.5, max_retries=16
        )

        async def drive(index: int) -> None:
            client = PipelineClient(
                f"c{index}",
                pipeline,
                recorder,
                op_timeout=op_timeout,
                attempt_timeout=attempt_timeout,
                hedge_after=hedge_after,
                retry_backoff=storm_backoff,
            )
            rng = random.Random(f"storm:{schedule.seed}:{index}")
            done = 0
            while done < ops_per_client:
                if tap is not None and tap.violated:
                    break
                await asyncio.sleep(rng.uniform(*OP_GAP))
                command = (
                    ("inc", 1) if rng.random() < 0.7 else ("cread",)
                )
                try:
                    await client.submit(command)
                    result.committed += 1
                    done += 1
                except Overloaded:
                    # honestly shed: not recorded, identity intact —
                    # yield and try again later
                    result.shed += 1
                    await asyncio.sleep(0.05)
                except OperationTimeout:
                    result.successors += 1
                    result.retries += client.retries
                    result.hedges += client.hedges
                    client = client.successor()
                    done += 1  # the op is pending, not retriable
            result.retries += client.retries
            result.hedges += client.hedges

        async def nemesis() -> None:
            start = loop.time()
            for action in sorted(schedule.actions, key=lambda a: a.at):
                delay = start + action.at - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                if isinstance(action, NetDupBurst):
                    faults.burst_duplicate(action.rate, action.duration)
                elif isinstance(action, NetLossBurst):
                    faults.burst_loss(action.rate, action.duration)
                elif isinstance(action, NetPartition):
                    faults.partition(
                        action.a,
                        action.b,
                        symmetric=not action.one_way,
                        duration=action.duration,
                    )
                elif isinstance(action, KillNode):
                    alive = cluster.alive()
                    if (
                        action.node in alive
                        and len(alive) - 1 >= majority
                    ):
                        await cluster.kill(action.node)
                        result.kills += 1
                elif isinstance(action, RestartNode):
                    if action.node not in cluster.alive():
                        await cluster.restart(action.node)
                        result.restarts += 1

        start = transport.now
        budget = schedule.horizon + op_timeout + RUN_GRACE
        tasks = [loop.create_task(nemesis())] + [
            loop.create_task(drive(i)) for i in range(clients)
        ]
        try:
            await asyncio.wait_for(asyncio.gather(*tasks), timeout=budget)
        except asyncio.TimeoutError:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            result.reason = "run exceeded its wall-clock budget"
        result.duration = transport.now - start
        await cluster.stop()
        if tap is not None:
            monitor_report = await tap.close()
            result.monitored = True
            result.monitor_verdict = monitor_report.verdict
            result.monitor_reason = monitor_report.reason
            result.monitor_events = monitor_report.events
            result.monitor_witness = monitor_report.witness

    result.pending = len(recorder.pending_clients())
    result.dup_frames = faults.duplicated
    result.duplicates_folded = pipeline.duplicates
    # the mechanical exactly-once witness, straight off the *applied*
    # contiguous decided prefix (slots past a decide gap never folded
    # into the state, so they don't participate)
    decided = [
        c
        for slot in range(pipeline._applied_upto)
        for c in batch_commands(pipeline.log[slot])
    ]
    incs = [c for c in decided if c[:1] == ("inc",)]
    result.raw_incs = len(incs)
    result.distinct_incs = len(
        {seq_uid(c) or id(c) for c in dedup_commands(incs)}
    )
    result.applied_count = pipeline._state

    check = check_linearizable(recorder.trace(), counter_adt())
    result.strategy = check.strategy
    if check.unknown:
        result.verdict = "unknown"
        result.reason = result.reason or check.result.reason
    elif check.ok:
        result.verdict = "linearizable"
    else:
        result.verdict = "violation"
        result.reason = check.result.reason
    return result


def run_retry_storm(
    n_schedules: int = 3,
    base_seed: int = 0,
    replicas: int = 3,
    clients: int = 4,
    ops_per_client: int = 10,
    horizon: float = 3.0,
    op_timeout: float = 2.5,
    attempt_timeout: float = 0.3,
    hedge_after: float = 0.2,
    dedup: bool = True,
    monitor: bool = True,
    artifact_dir: Optional[str] = None,
    emit=print,
) -> List[RetryStormResult]:
    """The exactly-once campaign: seeded retry storms on a counter.

    Each seed boots a live cluster and drives increments/reads through
    a sessioned :class:`SlotPipeline` while the nemesis duplicates
    frames, bursts loss hard enough to force op timeouts (and therefore
    safe retries, hedges and coordinator failover), and kills/restarts
    a replica.  Every run is monitored live (``monitor=True``) and
    checked post-hoc against the counter ADT, and additionally carries
    the mechanical witness ``applied_count == distinct_incs``.

    ``dedup=False`` runs the *mutant*: the session seam disabled, so a
    duplicate decree double-applies — the campaign then exists to prove
    the checker **catches** it (``result.caught``), closing the loop
    from mechanism to end-to-end checked guarantee.
    """
    results: List[RetryStormResult] = []
    for k in range(n_schedules):
        schedule = retry_storm_schedule(
            seed=base_seed + k, n_servers=replicas, horizon=horizon
        )
        result = asyncio.run(
            _run_retry_storm(
                schedule,
                replicas=replicas,
                clients=clients,
                ops_per_client=ops_per_client,
                op_timeout=op_timeout,
                attempt_timeout=attempt_timeout,
                hedge_after=hedge_after,
                dedup=dedup,
                monitor=monitor,
            )
        )
        results.append(result)
        emit(result.line())
        if artifact_dir:
            _write_artifact(
                artifact_dir,
                f"retry-storm-{schedule.seed}.json",
                {"report": result.to_jsonable()},
            )
            if result.monitor_witness is not None:
                _write_artifact(
                    artifact_dir,
                    f"retry-storm-witness-{schedule.seed}.json",
                    {
                        "verdict": result.monitor_verdict,
                        "reason": result.monitor_reason,
                        "witness": result.monitor_witness,
                        "schedule": schedule.describe(),
                    },
                )
    return results
