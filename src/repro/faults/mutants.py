"""Intentionally broken processes: the campaign's canaries.

A resilience harness that never catches anything proves nothing.  These
mutants re-introduce classic distributed-systems bugs so that the
campaign (and CI) can demonstrate end-to-end that randomized nemesis
schedules + the linearizability checker actually detect safety
violations — and that the shrinker reduces the offending schedule to a
minimal reproducer.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from ..mp.paxos import PaxosAcceptor

# RacySlotPipeline — the interleaving-race mutant — lives in
# :mod:`repro.faults.netcampaign` beside the campaign that drives it:
# it subclasses the live pipeline, and importing repro.net from here
# would recreate the circular package initialization the lazy
# netcampaign loader in ``faults/__init__`` exists to avoid.


class AmnesiacAcceptor(PaxosAcceptor):
    """A Paxos acceptor that forgets its state on recovery.

    Classical Paxos requires the acceptor triple ``(promised,
    accepted_ballot, accepted_value)`` to live on stable storage.  This
    mutant recovers blank, so after a crash-recover cycle it may promise
    a stale ballot or report "nothing accepted" to a new coordinator —
    letting a second value be chosen after a first one was already
    decided.  Under a schedule that decides, then crash-recovers the
    acceptor and removes the rest of the original accept quorum, two
    clients decide different values: a linearizability violation the
    campaign must catch.
    """

    def durable_state(self) -> Tuple[int, int, Optional[Hashable]]:
        return (-1, -1, None)  # "stable storage" that was never written

    def on_recover(self, durable) -> None:
        self.promised, self.accepted_ballot, self.accepted_value = durable
