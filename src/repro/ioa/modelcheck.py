"""Scope-sweep driver for the model-checked composition theorem (§6).

The library home of the E6 construction: build
``SpecAutomaton(m,n) ‖ SpecAutomaton(n,o) ‖ environment`` with the
connecting switches hidden, and check trace inclusion against
``SpecAutomaton(m,o)``.  ``benchmarks/bench_ioa.py`` renders the table;
this module owns the construction so it can also be fanned out across
processes: automata are closures and do not pickle, so
:func:`parallel_scope_table` ships only the picklable scope dicts and
each worker rebuilds its automata locally (see :mod:`repro.engine`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from ..core.actions import Switch
from .automaton import IOAutomaton, compose_automata, hide
from .execution import reachable_states
from .refinement import check_trace_inclusion, phase_tag_blind
from .spec_automaton import ClientEnvironment, SpecAutomaton


def build_composition_scope(scope: Dict) -> Tuple[IOAutomaton, IOAutomaton]:
    """The (impl, spec) pair of one scope dict.

    ``scope`` has keys ``clients`` (tuple), ``inputs`` (tuple) and
    ``budget`` (int) — picklable, so a scope can cross process
    boundaries even though the automata it describes cannot.
    """
    clients = tuple(scope["clients"])
    spec12 = SpecAutomaton(1, 2, clients)
    spec23 = SpecAutomaton(2, 3, clients)
    env = ClientEnvironment(
        clients, tuple(scope["inputs"]), m=1, budget=scope["budget"]
    )
    impl = hide(
        compose_automata(spec12, spec23, env),
        lambda a: isinstance(a, Switch) and a.phase == 2,
    )
    spec = SpecAutomaton(1, 3, clients)
    return impl, spec


def composition_scope_row(scope: Dict) -> Dict:
    """Model-check one scope; returns the E6 table row."""
    impl, spec = build_composition_scope(scope)
    t0 = time.time()
    states = len(reachable_states(impl))
    ok, cex, pairs = check_trace_inclusion(
        impl, spec, normalize=phase_tag_blind
    )
    elapsed = time.time() - t0
    return {
        "clients": len(scope["clients"]),
        "inputs": len(scope["inputs"]),
        "budget": scope["budget"],
        "impl_states": states,
        "pairs": pairs,
        "included": ok,
        "seconds": elapsed,
        "counterexample": str(cex) if cex else "",
    }


def parallel_scope_table(
    scopes: Sequence[Dict], jobs: int = 1
) -> List[Dict]:
    """E6 rows for ``scopes``, one process per scope when ``jobs > 1``.

    Row order follows ``scopes`` regardless of which worker finishes
    first, so the table is identical to a serial run.
    """
    from .. import engine

    return engine.parallel_map(
        composition_scope_row, [dict(scope) for scope in scopes], jobs=jobs
    )
