"""State-invariant checking for I/O automata.

The Isabelle proof of the composition theorem rests on 15 state invariants
of the composed automaton; this module provides the executable analogue —
exhaustive invariant checking over the reachable state space — plus an
inductive-invariant check (initiation + consecution), which mirrors how
such invariants are proved in a theorem prover.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from .automaton import Action, IOAutomaton, State
from .execution import Environment, successors


Invariant = Callable[[State], bool]


@dataclass(frozen=True)
class InvariantViolation:
    """A reachable state violating an invariant, with a witness path."""

    invariant: str
    state: State
    path: Tuple[Action, ...]

    def __str__(self) -> str:
        return (
            f"invariant {self.invariant!r} violated at {self.state!r} "
            f"via {list(self.path)!r}"
        )


def check_invariants(
    automaton: IOAutomaton,
    invariants: Sequence[Tuple[str, Invariant]],
    environment: Optional[Environment] = None,
    max_states: Optional[int] = None,
) -> Tuple[int, List[InvariantViolation]]:
    """Check named invariants over all reachable states (BFS).

    Returns ``(states_explored, violations)``; exploration continues past
    a violation so all broken invariants are reported, but each invariant
    reports only its first (shortest-path) violation.
    """
    frontier = deque(
        (state, ()) for state in automaton.initial_states()
    )
    seen: Set[State] = {state for state, _ in frontier}
    broken: Set[str] = set()
    violations: List[InvariantViolation] = []

    def inspect(state: State, path: Tuple[Action, ...]) -> None:
        for name, predicate in invariants:
            if name in broken:
                continue
            if not predicate(state):
                broken.add(name)
                violations.append(InvariantViolation(name, state, path))

    for state, path in list(frontier):
        inspect(state, path)
    while frontier:
        state, path = frontier.popleft()
        for action, successor in successors(automaton, state, environment):
            if successor in seen:
                continue
            if max_states is not None and len(seen) >= max_states:
                return len(seen), violations
            seen.add(successor)
            new_path = path + (action,)
            inspect(successor, new_path)
            frontier.append((successor, new_path))
    return len(seen), violations


def check_inductive(
    automaton: IOAutomaton,
    invariant: Invariant,
    candidate_states: Iterable[State],
    environment: Optional[Environment] = None,
) -> Tuple[bool, Optional[State]]:
    """Inductiveness check: initiation plus consecution.

    ``candidate_states`` supplies the states on which consecution is
    tested (typically the reachable set, or a superset sampled from the
    invariant itself).  Returns ``(ok, counterexample_state)``.
    """
    for state in automaton.initial_states():
        if not invariant(state):
            return False, state
    for state in candidate_states:
        if not invariant(state):
            continue  # consecution only constrains states inside the invariant
        for _, successor in successors(automaton, state, environment):
            if not invariant(successor):
                return False, state
    return True, None
