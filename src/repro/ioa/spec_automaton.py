"""The specification automaton of Section 6.

This is speculative linearizability instantiated for the *universal ADT*
(output function = identity: a response carries the full history) with the
singleton ``rinit`` (a switch value *is* the history it represents) — the
paper's model of generic State Machine Replication.

The automaton's state (quoted from the paper):

* ``hist`` — the longest linearization made visible to a client;
* per client, a phase in {Sleep, Pending, Ready, Aborted};
* per client, ``pending(c)`` — the last input submitted by ``c``;
* ``init_hists`` — the init histories received;
* two booleans ``aborted`` and ``initialized``.

Inputs are invocations and incoming switch calls; the locally controlled
actions are the paper's A1-A4:

* **A1** (internal) — once some client has joined, set ``hist`` to the
  longest common prefix of the received init histories;
* **A2** (output) — linearize a pending input: append it to ``hist`` and
  respond with the new ``hist``;
* **A3** (internal) — set ``aborted``;
* **A4** (output) — once aborted, move a pending client to Aborted and
  emit a switch whose value extends ``hist`` with pending inputs only.

For a first phase (``m == 1``) there are no init actions: the automaton
starts initialized with the empty history and all clients Ready.

States are immutable dataclasses; actions are the :mod:`repro.core`
action types, so traces of the automaton are directly checkable with the
trace-level speculative-linearizability checker — the tests use this to
validate the two formalizations against each other.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..core.actions import Input, Invocation, Response, Switch
from ..core.sequences import longest_common_prefix
from .automaton import Action, IOAutomaton, State

SLEEP = "sleep"
PENDING = "pending"
READY = "ready"
ABORTED = "aborted"

History = Tuple[Input, ...]


@dataclass(frozen=True)
class SpecState:
    """Immutable state of the specification automaton.

    Client-indexed components are tuples aligned with the automaton's
    fixed client ordering.
    """

    hist: History
    status: Tuple[str, ...]
    pending: Tuple[Optional[Input], ...]
    pending_tag: Tuple[Optional[int], ...]
    init_hists: FrozenSet[History]
    aborted: bool
    initialized: bool


class SpecAutomaton(IOAutomaton):
    """The SLin(m, n) specification automaton over the universal ADT.

    ``clients`` fixes the (finite) client universe; ``max_abort_extras``
    bounds how many pending inputs an A4 abort value may append beyond
    ``hist`` (the paper allows any subset of the pending inputs — small
    scopes keep exploration finite without losing the interesting
    behaviours, since at most ``len(clients)`` inputs can be pending).
    """

    def __init__(
        self,
        m: int,
        n: int,
        clients: Iterable[Hashable],
        max_abort_extras: Optional[int] = None,
    ) -> None:
        if not m < n:
            raise ValueError("phase bounds must satisfy m < n")
        self.m = m
        self.n = n
        self.clients = tuple(clients)
        self.index = {c: i for i, c in enumerate(self.clients)}
        self.max_abort_extras = max_abort_extras
        self.name = f"SLinSpec({m},{n})"

    # -- signature ---------------------------------------------------------

    def is_input(self, action: Action) -> bool:
        if isinstance(action, Invocation):
            return (
                action.client in self.index
                and self.m <= action.phase < self.n
            )
        if isinstance(action, Switch):
            return (
                self.m != 1
                and action.client in self.index
                and action.phase == self.m
            )
        return False

    def is_output(self, action: Action) -> bool:
        if isinstance(action, Response):
            return (
                action.client in self.index
                and self.m <= action.phase < self.n
            )
        if isinstance(action, Switch):
            return action.client in self.index and action.phase == self.n
        return False

    def is_internal(self, action: Action) -> bool:
        return action in (("A1", self.m, self.n), ("A3", self.m, self.n))

    # -- states --------------------------------------------------------------

    def initial_states(self) -> Iterable[SpecState]:
        first_phase = self.m == 1
        yield SpecState(
            hist=(),
            status=tuple(
                READY if first_phase else SLEEP for _ in self.clients
            ),
            pending=tuple(None for _ in self.clients),
            pending_tag=tuple(None for _ in self.clients),
            init_hists=frozenset(),
            aborted=False,
            initialized=first_phase,
        )

    # -- input transitions ---------------------------------------------------

    def input_step(self, state: SpecState, action: Action) -> SpecState:
        i = self.index[action.client]
        if isinstance(action, Invocation):
            if state.status[i] != READY:
                return state  # input-enabled no-op
            return replace(
                state,
                status=_set(state.status, i, PENDING),
                pending=_set(state.pending, i, action.input),
                pending_tag=_set(state.pending_tag, i, action.phase),
            )
        if isinstance(action, Switch):
            if state.status[i] != SLEEP:
                return state
            return replace(
                state,
                status=_set(state.status, i, PENDING),
                pending=_set(state.pending, i, action.input),
                pending_tag=_set(state.pending_tag, i, self.m),
                init_hists=state.init_hists | {tuple(action.value)},
            )
        return state

    # -- locally controlled transitions ---------------------------------------

    def _pending_inputs(self, state: SpecState) -> List[Input]:
        """Pending inputs: last submitted inputs of Pending clients that
        are not present in ``hist`` (the paper's definition)."""
        result = []
        for i, status in enumerate(state.status):
            if status == PENDING and state.pending[i] not in state.hist:
                result.append(state.pending[i])
        return result

    def _abortable_inputs(self, state: SpecState) -> List[Input]:
        """Inputs an A4 abort value may append beyond ``hist``.

        Besides the pending inputs, the last submitted input of an
        already-*Aborted* client qualifies: trace-level Validity
        (Definition 28) admits any previously invoked input, and Abort
        Order is unaffected because commit histories are frozen prefixes
        of ``hist`` once the phase has aborted.  Without this, a
        composition in which two clients abort in sequence — the second
        carrying the first's still-unserved input, learned through the
        next phase's ``lcp`` — would escape the specification.
        """
        result = []
        for i, status in enumerate(state.status):
            if (
                status in (PENDING, ABORTED)
                and state.pending[i] is not None
                and state.pending[i] not in state.hist
            ):
                result.append(state.pending[i])
        return result

    def transitions(
        self, state: SpecState
    ) -> Iterable[Tuple[Action, SpecState]]:
        # A1: initialize hist from the received init histories.
        if not state.initialized and any(
            s != SLEEP for s in state.status
        ):
            hist = longest_common_prefix(state.init_hists)
            yield (
                ("A1", self.m, self.n),
                replace(state, hist=hist, initialized=True),
            )

        # A2: select a possible linearization — hist extended with some
        # pending inputs, ending with the responder's — and realize it.
        # (The paper introduces A2 as appending one pending input, then
        # notes that "any extension of history hist with some pending
        # requests is a linearization of the current trace" and that "step
        # A2 may be interpreted as selecting a possible linearization and
        # producing an output that realizes it"; the general form is
        # required for the composition theorem, since a first phase's
        # abort value may carry pending inputs into the next phase's hist
        # without any response having been emitted.)
        if state.initialized and not state.aborted:
            pool = self._pending_inputs(state)
            for i, client in enumerate(self.clients):
                if state.status[i] != PENDING:
                    continue
                own = state.pending[i]
                if own in state.hist:
                    continue
                others = [x for x in dict.fromkeys(pool) if x != own]
                for extension in self._a2_extensions(others):
                    new_hist = state.hist + extension + (own,)
                    action = Response(
                        client,
                        state.pending_tag[i],
                        own,
                        new_hist,
                    )
                    yield action, replace(
                        state,
                        hist=new_hist,
                        status=_set(state.status, i, READY),
                    )

        # A3: abort the phase.
        if not state.aborted:
            yield ("A3", self.m, self.n), replace(state, aborted=True)

        # A4: emit a switch for a pending client with an abort value that
        # extends hist by pending (or previously aborted) inputs.  For a
        # later phase (m != 1) the value must *strictly* extend hist:
        # Init Order demands abort histories strictly extend the lcp of
        # the init histories, and hist is that lcp (or an extension of
        # it).  A pending client with no strict extension available (its
        # own input is already inside hist and nothing else is pending)
        # simply cannot abort — a sound narrowing that mirrors the A2
        # guard keeping such clients unserved.
        if state.aborted and state.initialized:
            # Dedupe by value: an abort value may extend hist by each
            # distinct input at most once.  Two clients pending on the
            # same input contribute one budget slot at the trace level
            # (Definition 25 combines switch contributions by pointwise
            # max), so emitting the input twice would escape the trace
            # property.
            extras_pool = list(dict.fromkeys(self._abortable_inputs(state)))
            min_extras = 1 if self.m != 1 else 0
            for i, client in enumerate(self.clients):
                if state.status[i] != PENDING:
                    continue
                for value in self._abort_values(state, extras_pool, min_extras):
                    action = Switch(client, self.n, state.pending[i], value)
                    yield action, replace(
                        state,
                        status=_set(state.status, i, ABORTED),
                    )

    def _a2_extensions(
        self, others: List[Input]
    ) -> Iterable[Tuple[Input, ...]]:
        """Sequences of distinct other-client pending inputs that an A2
        step may linearize ahead of the responder's input."""
        limit = (
            len(others)
            if self.max_abort_extras is None
            else min(len(others), self.max_abort_extras)
        )
        for size in range(limit + 1):
            yield from itertools.permutations(others, size)

    def _abort_values(
        self, state: SpecState, extras_pool: List[Input], min_extras: int = 0
    ) -> Iterable[History]:
        """All abort values: hist extended by a sequence of distinct
        pending inputs (bounded by ``max_abort_extras``); ``min_extras``
        enforces strict extension for later phases."""
        limit = (
            len(extras_pool)
            if self.max_abort_extras is None
            else min(len(extras_pool), self.max_abort_extras)
        )
        seen = set()
        for size in range(min_extras, limit + 1):
            for combo in itertools.permutations(extras_pool, size):
                value = state.hist + combo
                if value not in seen:
                    seen.add(value)
                    yield value


def _set(items: Tuple, index: int, value) -> Tuple:
    """Functional tuple update."""
    return items[:index] + (value,) + items[index + 1 :]


class ClientEnvironment(IOAutomaton):
    """Sequential clients driving a (composition of) speculation phase(s).

    Each client repeatedly invokes inputs from ``input_pool`` at its
    current phase tag, waiting for a response before the next invocation
    (the paper's sequential-client assumption).  A client's tag starts at
    ``m`` and follows the phase where it last received a response, so a
    client that was switched to a later phase continues there.  ``budget``
    bounds the number of invocations per client to keep state spaces
    finite.
    """

    def __init__(
        self,
        clients: Iterable[Hashable],
        input_pool: Iterable[Input],
        m: int,
        budget: int = 2,
    ) -> None:
        self.clients = tuple(clients)
        self.index = {c: i for i, c in enumerate(self.clients)}
        self.input_pool = tuple(input_pool)
        self.m = m
        self.budget = budget
        self.name = "clients"

    def initial_states(self) -> Iterable[State]:
        # Per client: (busy?, tag, invocations used)
        yield tuple((False, self.m, 0) for _ in self.clients)

    def is_input(self, action: Action) -> bool:
        return (
            isinstance(action, (Response, Switch))
            and action.client in self.index
        )

    def is_output(self, action: Action) -> bool:
        return (
            isinstance(action, Invocation) and action.client in self.index
        )

    def is_internal(self, action: Action) -> bool:
        return False

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        for i, client in enumerate(self.clients):
            busy, tag, used = state[i]
            if busy or used >= self.budget:
                continue
            for input in self.input_pool:
                action = Invocation(client, tag, input)
                yield action, _set(state, i, (True, tag, used + 1))

    def input_step(self, state: State, action: Action) -> State:
        i = self.index[action.client]
        busy, tag, used = state[i]
        if isinstance(action, Response):
            return _set(state, i, (False, action.phase, used))
        if isinstance(action, Switch):
            # The client's pending invocation moved to phase `action.phase`;
            # it stays busy until that phase responds.
            return _set(state, i, (True, action.phase, used))
        return state


class InitEnvironment(IOAutomaton):
    """Environment for a *standalone* later phase (``m != 1``).

    Emits one init switch per client, drawing the init history and the
    pending input from finite pools; used to explore a single
    ``SpecAutomaton(m, n)`` with ``m > 1`` in isolation.
    """

    def __init__(
        self,
        clients: Iterable[Hashable],
        m: int,
        init_histories: Iterable[History],
        input_pool: Iterable[Input],
    ) -> None:
        self.clients = tuple(clients)
        self.index = {c: i for i, c in enumerate(self.clients)}
        self.m = m
        self.init_histories = tuple(tuple(h) for h in init_histories)
        self.input_pool = tuple(input_pool)
        self.name = "init-env"

    def initial_states(self) -> Iterable[State]:
        yield tuple(False for _ in self.clients)  # switched-in flags

    def is_input(self, action: Action) -> bool:
        return False

    def is_output(self, action: Action) -> bool:
        return (
            isinstance(action, Switch)
            and action.phase == self.m
            and action.client in self.index
        )

    def is_internal(self, action: Action) -> bool:
        return False

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        for i, client in enumerate(self.clients):
            if state[i]:
                continue
            for history in self.init_histories:
                for input in self.input_pool:
                    action = Switch(client, self.m, input, history)
                    yield action, _set(state, i, True)

    def input_step(self, state: State, action: Action) -> State:
        return state
