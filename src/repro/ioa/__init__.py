"""I/O-automata formalization of speculative linearizability (Section 6).

Executable counterpart of the paper's Isabelle/HOL development: the
framework (:mod:`repro.ioa.automaton`), state exploration
(:mod:`repro.ioa.execution`), invariant checking
(:mod:`repro.ioa.invariants`), refinement and trace-inclusion checking
(:mod:`repro.ioa.refinement`), and the specification automaton with its
client environments (:mod:`repro.ioa.spec_automaton`).
"""

from .automaton import (
    ComposedAutomaton,
    FunctionalAutomaton,
    HidingAutomaton,
    IOAutomaton,
    compose_automata,
    hide,
)
from .execution import (
    Execution,
    StateSpaceBound,
    Step,
    executions,
    external_traces,
    reachable_states,
    run_schedule,
)
from .invariants import (
    InvariantViolation,
    check_inductive,
    check_invariants,
)
from .modelcheck import (
    build_composition_scope,
    composition_scope_row,
    parallel_scope_table,
)
from .refinement import (
    InclusionCounterexample,
    RefinementCounterexample,
    check_refinement_mapping,
    check_trace_inclusion,
)
from .spec_automaton import (
    ABORTED,
    ClientEnvironment,
    InitEnvironment,
    PENDING,
    READY,
    SLEEP,
    SpecAutomaton,
    SpecState,
)

__all__ = [
    "ABORTED",
    "ClientEnvironment",
    "ComposedAutomaton",
    "Execution",
    "FunctionalAutomaton",
    "HidingAutomaton",
    "IOAutomaton",
    "InclusionCounterexample",
    "InitEnvironment",
    "InvariantViolation",
    "PENDING",
    "READY",
    "RefinementCounterexample",
    "SLEEP",
    "SpecAutomaton",
    "SpecState",
    "StateSpaceBound",
    "Step",
    "build_composition_scope",
    "check_inductive",
    "check_invariants",
    "check_refinement_mapping",
    "check_trace_inclusion",
    "compose_automata",
    "composition_scope_row",
    "executions",
    "external_traces",
    "hide",
    "parallel_scope_table",
    "reachable_states",
    "run_schedule",
]
