"""Executions, reachability and trace enumeration for I/O automata.

The exploration engine behind the model-checked results of Section 6:
breadth-first search over the (closed) state space, with executions and
their external traces enumerated up to a depth bound.  Closed systems
(every action locally controlled) explore directly; open systems take an
*environment* callback supplying candidate input actions per state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Set, Tuple

from .automaton import Action, IOAutomaton, State

Environment = Callable[[State], Iterable[Action]]


@dataclass(frozen=True)
class Step:
    """One transition of an execution: (pre-state, action, post-state)."""

    pre: State
    action: Action
    post: State


@dataclass(frozen=True)
class Execution:
    """An execution fragment: a start state and the steps taken from it."""

    start: State
    steps: Tuple[Step, ...]

    @property
    def final(self) -> State:
        """The last state of the execution."""
        return self.steps[-1].post if self.steps else self.start

    def trace(self, automaton: IOAutomaton) -> Tuple[Action, ...]:
        """The external trace: the subsequence of external actions."""
        return tuple(
            step.action
            for step in self.steps
            if automaton.is_external(step.action)
        )

    def extend(self, action: Action, post: State) -> "Execution":
        """Return a new execution with one more step appended."""
        return Execution(
            self.start, self.steps + (Step(self.final, action, post),)
        )


def successors(
    automaton: IOAutomaton,
    state: State,
    environment: Optional[Environment] = None,
) -> Iterator[Tuple[Action, State]]:
    """All one-step successors: locally controlled plus environment inputs."""
    yield from automaton.transitions(state)
    if environment is not None:
        for action in environment(state):
            yield action, automaton.input_step(state, action)


def reachable_states(
    automaton: IOAutomaton,
    environment: Optional[Environment] = None,
    max_states: Optional[int] = None,
) -> Set[State]:
    """BFS over the reachable state space.

    ``max_states`` bounds the exploration (raising :class:`StateSpaceBound`
    when exceeded) so callers can protect themselves against scope blowup.
    """
    frontier = deque(automaton.initial_states())
    seen: Set[State] = set(frontier)
    while frontier:
        state = frontier.popleft()
        for _, successor in successors(automaton, state, environment):
            if successor not in seen:
                if max_states is not None and len(seen) >= max_states:
                    raise StateSpaceBound(
                        f"exploration exceeded {max_states} states"
                    )
                seen.add(successor)
                frontier.append(successor)
    return seen


class StateSpaceBound(RuntimeError):
    """The exploration exceeded its configured state budget."""


def executions(
    automaton: IOAutomaton,
    max_depth: int,
    environment: Optional[Environment] = None,
) -> Iterator[Execution]:
    """Enumerate all executions of length up to ``max_depth`` (DFS).

    Every prefix is itself yielded, so the result is prefix-closed — the
    natural shape for safety checking.
    """

    def dfs(execution: Execution, depth: int) -> Iterator[Execution]:
        yield execution
        if depth == 0:
            return
        for action, post in successors(
            automaton, execution.final, environment
        ):
            yield from dfs(execution.extend(action, post), depth - 1)

    for start in automaton.initial_states():
        yield from dfs(Execution(start, ()), max_depth)


def external_traces(
    automaton: IOAutomaton,
    max_depth: int,
    environment: Optional[Environment] = None,
) -> Set[Tuple[Action, ...]]:
    """The set of external traces of executions up to ``max_depth``."""
    return {
        execution.trace(automaton)
        for execution in executions(automaton, max_depth, environment)
    }


def run_schedule(
    automaton: IOAutomaton,
    schedule: Iterable[Action],
    state: Optional[State] = None,
) -> Optional[Execution]:
    """Drive the automaton along an explicit action schedule.

    Each scheduled action must be either an enabled locally-controlled
    action (any matching transition is taken — the first one found) or an
    input action.  Returns ``None`` when a scheduled action is not
    enabled.
    """
    if state is None:
        starts = list(automaton.initial_states())
        if not starts:
            return None
        state = starts[0]
    execution = Execution(state, ())
    for action in schedule:
        if automaton.is_input(action):
            post = automaton.input_step(execution.final, action)
            execution = execution.extend(action, post)
            continue
        for enabled, post in automaton.transitions(execution.final):
            if enabled == action:
                execution = execution.extend(action, post)
                break
        else:
            return None
    return execution
