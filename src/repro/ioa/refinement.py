"""Refinement and trace inclusion between I/O automata.

The paper proves Theorem 3 in the automaton model by exhibiting a
refinement mapping from the composition of two specification automata to a
single specification automaton.  This module provides both directions of
that methodology, made executable:

* :func:`check_trace_inclusion` — decides external-trace inclusion over
  the explored region by the standard subset construction: the checker
  walks the implementation while tracking the set of specification states
  reachable over the same external trace (closing under internal steps).
  No human-supplied mapping is needed; this is the workhorse behind the
  model-checked composition theorem of ``bench_ioa.py`` and the tests.

* :func:`check_refinement_mapping` — verifies a user-supplied refinement
  mapping ``r``: every start state maps to a start state, and every
  implementation step maps to a specification execution fragment with the
  same external trace (internal steps map to stuttering).  This is the
  executable analogue of the Isabelle proof obligation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .automaton import Action, IOAutomaton, State
from .execution import Environment, successors


@dataclass(frozen=True)
class InclusionCounterexample:
    """An implementation step the specification cannot match."""

    impl_state: State
    spec_states: FrozenSet[State]
    action: Action
    trace: Tuple[Action, ...]

    def __str__(self) -> str:
        return (
            f"spec cannot match external action {self.action!r} after "
            f"trace {list(self.trace)!r}"
        )


def _internal_closure(
    spec: IOAutomaton, states: FrozenSet[State], max_states: int = 100000
) -> FrozenSet[State]:
    """Close a set of spec states under internal transitions."""
    frontier = deque(states)
    closed: Set[State] = set(states)
    while frontier:
        state = frontier.popleft()
        for action, successor in spec.transitions(state):
            if spec.is_internal(action) and successor not in closed:
                if len(closed) >= max_states:
                    raise RuntimeError("internal closure exceeded bound")
                closed.add(successor)
                frontier.append(successor)
    return frozenset(closed)


def _advance(
    spec: IOAutomaton,
    states: FrozenSet[State],
    action: Action,
    normalize: Optional[Callable[[Action], Action]] = None,
) -> FrozenSet[State]:
    """Spec states reachable by performing external ``action`` (then
    closing under internal steps).

    When ``normalize`` is given, a spec output matches the implementation
    action if their normalizations agree — used to compare actions modulo
    the phase tags of invocations/responses, which the trace-level
    definition leaves unconstrained (Definition 34 pairs an invocation
    with "res(_, _, in, _)": any tag).
    """
    after: Set[State] = set()
    target = normalize(action) if normalize else action
    for state in states:
        if spec.is_input(action):
            after.add(spec.input_step(state, action))
        else:
            for enabled, successor in spec.transitions(state):
                key = normalize(enabled) if normalize else enabled
                if key == target:
                    after.add(successor)
    if not after:
        return frozenset()
    return _internal_closure(spec, frozenset(after))


def check_trace_inclusion(
    impl: IOAutomaton,
    spec: IOAutomaton,
    environment: Optional[Environment] = None,
    max_states: Optional[int] = None,
    external: Optional[Callable[[Action], bool]] = None,
    normalize: Optional[Callable[[Action], Action]] = None,
) -> Tuple[bool, Optional[InclusionCounterexample], int]:
    """Check ``traces(impl) ⊆ traces(spec)`` over external actions.

    ``external`` overrides the notion of visible action (defaults to
    ``impl.is_external``); implementation actions that are not visible are
    treated as stuttering on the specification side.  ``normalize`` maps
    actions to the equivalence class used for matching (see
    :func:`phase_tag_blind`).  Returns ``(ok, counterexample,
    pairs_explored)``.

    Visited pairs are deduplicated by ``(impl state, spec-state set)`` —
    diamond-shaped automata explore linearly, not exponentially (see the
    regression test in ``tests/test_refinement_perf.py``).  The witness
    trace of a counterexample is rebuilt from parent pointers only on
    failure; carrying a growing action tuple per frontier entry cost
    O(edges × depth) copying on healthy runs.  Spec-set advances are
    memoized per ``(spec set, action)``, which collapses the repeated
    closure computations a diamond's re-converging paths would otherwise
    redo.
    """
    if external is None:
        external = impl.is_external

    spec_start = _internal_closure(
        spec, frozenset(spec.initial_states())
    )
    # Parent-pointer forest over dequeued pairs: nodes[i] is
    # (parent index, external action taken into this node or None).
    nodes: List[Tuple[int, Optional[Action]]] = []
    frontier: deque = deque()
    for state in impl.initial_states():
        nodes.append((-1, None))
        frontier.append((state, spec_start, len(nodes) - 1))
    seen: Set[Tuple[State, FrozenSet[State]]] = {
        (state, spec_set) for state, spec_set, _ in frontier
    }

    def rebuild(node: int) -> Tuple[Action, ...]:
        actions: List[Action] = []
        while node != -1:
            parent, action = nodes[node]
            if action is not None:
                actions.append(action)
            node = parent
        return tuple(reversed(actions))

    advance_cache: Dict[
        Tuple[FrozenSet[State], Action], FrozenSet[State]
    ] = {}
    explored = 0
    while frontier:
        impl_state, spec_set, node = frontier.popleft()
        explored += 1
        for action, successor in successors(impl, impl_state, environment):
            if external(action):
                cache_key = (spec_set, action)
                new_spec = advance_cache.get(cache_key)
                if new_spec is None:
                    new_spec = _advance(spec, spec_set, action, normalize)
                    advance_cache[cache_key] = new_spec
                if not new_spec:
                    return (
                        False,
                        InclusionCounterexample(
                            impl_state, spec_set, action, rebuild(node)
                        ),
                        explored,
                    )
                step: Optional[Action] = action
            else:
                new_spec = spec_set
                step = None
            key = (successor, new_spec)
            if key not in seen:
                if max_states is not None and len(seen) >= max_states:
                    raise RuntimeError(
                        f"inclusion check exceeded {max_states} pairs"
                    )
                seen.add(key)
                nodes.append((node, step))
                frontier.append((successor, new_spec, len(nodes) - 1))
    return True, None, explored


@dataclass(frozen=True)
class RefinementCounterexample:
    """An implementation step with no matching spec fragment under ``r``."""

    impl_pre: State
    impl_post: State
    action: Action

    def __str__(self) -> str:
        return (
            f"step {self.action!r} from {self.impl_pre!r} has no matching "
            f"specification fragment"
        )


def check_refinement_mapping(
    impl: IOAutomaton,
    spec: IOAutomaton,
    mapping: Callable[[State], State],
    environment: Optional[Environment] = None,
    max_internal: int = 4,
    max_states: Optional[int] = None,
) -> Tuple[bool, Optional[RefinementCounterexample], int]:
    """Verify a refinement mapping over the reachable implementation states.

    Proof obligations (Lynch & Vaandrager):

    * for every start state ``s``, ``mapping(s)`` is reachable from a spec
      start state by internal steps;
    * for every reachable step ``s -a-> s'``: from ``mapping(s)`` the spec
      can reach ``mapping(s')`` by a fragment whose external trace is
      ``[a]`` if ``a`` is external and ``[]`` otherwise, using at most
      ``max_internal`` internal steps around the visible one.
    """

    def fragment_exists(
        u: State, target: State, visible: Optional[Action]
    ) -> bool:
        # BFS over (spec state, visible action consumed?) up to a budget
        # of internal steps.
        frontier = deque([(u, visible is None, 0)])
        seen = {(u, visible is None)}
        while frontier:
            state, consumed, depth = frontier.popleft()
            if consumed and state == target:
                return True
            if depth >= max_internal + (0 if visible is None else 1):
                continue
            for action, successor in spec.transitions(state):
                if spec.is_internal(action):
                    key = (successor, consumed)
                    if key not in seen:
                        seen.add(key)
                        frontier.append((successor, consumed, depth + 1))
                elif not consumed and action == visible:
                    key = (successor, True)
                    if key not in seen:
                        seen.add(key)
                        frontier.append((successor, True, depth + 1))
            if visible is not None and not consumed and spec.is_input(visible):
                successor = spec.input_step(state, visible)
                key = (successor, True)
                if key not in seen:
                    seen.add(key)
                    frontier.append((successor, True, depth + 1))
        return False

    spec_starts = _internal_closure(spec, frozenset(spec.initial_states()))
    for start in impl.initial_states():
        if mapping(start) not in spec_starts:
            return (
                False,
                RefinementCounterexample(start, start, None),
                0,
            )

    frontier = deque(impl.initial_states())
    seen: Set[State] = set(frontier)
    explored = 0
    while frontier:
        state = frontier.popleft()
        explored += 1
        for action, successor in successors(impl, state, environment):
            visible = action if impl.is_external(action) else None
            if not fragment_exists(mapping(state), mapping(successor), visible):
                return (
                    False,
                    RefinementCounterexample(state, successor, action),
                    explored,
                )
            if successor not in seen:
                if max_states is not None and len(seen) >= max_states:
                    raise RuntimeError(
                        f"refinement check exceeded {max_states} states"
                    )
                seen.add(successor)
                frontier.append(successor)
    return True, None, explored


def phase_tag_blind(action: Action) -> Action:
    """Normalization erasing the phase tag of invocations and responses.

    The trace-level speculative-linearizability property does not relate
    a response's tag to its invocation's (Definition 34), and a composed
    implementation answers a switched client from a later sub-phase.
    Matching actions through this normalization compares exactly what the
    trace property constrains.  Switch tags are *kept*: they distinguish
    init from abort actions.
    """
    from ..core.actions import Invocation, Response

    if isinstance(action, Invocation):
        return ("inv", action.client, action.input)
    if isinstance(action, Response):
        return ("res", action.client, action.input, action.output)
    return action
