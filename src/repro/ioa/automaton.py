"""I/O automata (Lynch & Tuttle), the model of Section 6 of the paper.

An I/O automaton has a signature partitioning its actions into inputs,
outputs and internal actions, a set of start states, and a transition
relation.  Automata are *input-enabled*: every input action is accepted in
every state (possibly as a no-op).

This implementation targets explicit-state model checking of small scopes,
the executable counterpart of the paper's Isabelle/HOL development:

* states are hashable values produced on demand (``initial_states`` /
  ``transitions`` / ``input_step``), so the state space is generated
  lazily;
* composition (:func:`compose_automata`) synchronizes a component's
  output with the inputs of every component sharing the action;
* hiding (:func:`hide`) reclassifies output actions as internal, used to
  hide the intermediate switch actions when comparing a composition of
  two speculation phases against a single phase (Theorem 3's statement
  projects them away).
"""

from __future__ import annotations

from typing import (
    Callable,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
)

Action = Hashable
State = Hashable


class IOAutomaton:
    """Base class for I/O automata.

    Subclasses implement the five hooks below.  ``transitions`` yields the
    *locally controlled* (output + internal) steps enabled in a state;
    ``input_step`` gives the (deterministic here, per the paper's
    specification automaton) effect of receiving an input action.
    """

    name: str = "ioa"

    def initial_states(self) -> Iterable[State]:
        """The non-empty set of start states."""
        raise NotImplementedError

    def is_input(self, action: Action) -> bool:
        """True iff ``action`` is an input action of this automaton."""
        raise NotImplementedError

    def is_output(self, action: Action) -> bool:
        """True iff ``action`` is an output action of this automaton."""
        raise NotImplementedError

    def is_internal(self, action: Action) -> bool:
        """True iff ``action`` is an internal action of this automaton."""
        raise NotImplementedError

    def is_external(self, action: Action) -> bool:
        """External actions: inputs and outputs (visible in traces)."""
        return self.is_input(action) or self.is_output(action)

    def in_signature(self, action: Action) -> bool:
        """Membership in the full action set of the signature."""
        return (
            self.is_input(action)
            or self.is_output(action)
            or self.is_internal(action)
        )

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        """Enabled locally-controlled steps: (action, successor) pairs."""
        raise NotImplementedError

    def input_step(self, state: State, action: Action) -> State:
        """Successor after receiving input ``action`` (input-enabled).

        Automata that ignore an input in some state return the state
        unchanged — the step still happens, it just has no effect.
        """
        raise NotImplementedError


class FunctionalAutomaton(IOAutomaton):
    """An automaton assembled from plain callables (used by tests)."""

    def __init__(
        self,
        name: str,
        initial: Iterable[State],
        is_input: Callable[[Action], bool],
        is_output: Callable[[Action], bool],
        is_internal: Callable[[Action], bool],
        transitions: Callable[[State], Iterable[Tuple[Action, State]]],
        input_step: Callable[[State, Action], State],
    ) -> None:
        self.name = name
        self._initial = tuple(initial)
        self._is_input = is_input
        self._is_output = is_output
        self._is_internal = is_internal
        self._transitions = transitions
        self._input_step = input_step

    def initial_states(self) -> Iterable[State]:
        return self._initial

    def is_input(self, action: Action) -> bool:
        return self._is_input(action)

    def is_output(self, action: Action) -> bool:
        return self._is_output(action)

    def is_internal(self, action: Action) -> bool:
        return self._is_internal(action)

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        return self._transitions(state)

    def input_step(self, state: State, action: Action) -> State:
        return self._input_step(state, action)


class ComposedAutomaton(IOAutomaton):
    """Parallel composition of compatible I/O automata.

    Compatibility: no action is an output of two components, and no
    internal action of one component appears in another's signature.
    States are tuples of component states.  When a component performs an
    output or external input, every other component with the action in
    its input signature moves simultaneously (the IOA synchronization
    rule).
    """

    def __init__(self, components: Sequence[IOAutomaton], name: str = "") -> None:
        self.components = tuple(components)
        self.name = name or "||".join(c.name for c in components)

    def initial_states(self) -> Iterable[State]:
        def product(i: int) -> Iterator[Tuple[State, ...]]:
            if i == len(self.components):
                yield ()
                return
            for s in self.components[i].initial_states():
                for rest in product(i + 1):
                    yield (s,) + rest

        return product(0)

    def is_output(self, action: Action) -> bool:
        return any(c.is_output(action) for c in self.components)

    def is_input(self, action: Action) -> bool:
        if self.is_output(action):
            return False
        return any(c.is_input(action) for c in self.components)

    def is_internal(self, action: Action) -> bool:
        return any(c.is_internal(action) for c in self.components)

    def _broadcast(
        self, state: Tuple[State, ...], action: Action, mover: int, moved: State
    ) -> Tuple[State, ...]:
        """Apply ``action`` to every component whose input set contains it,
        with component ``mover`` already moved to ``moved``."""
        parts: List[State] = []
        for i, component in enumerate(self.components):
            if i == mover:
                parts.append(moved)
            elif component.is_input(action):
                parts.append(component.input_step(state[i], action))
            else:
                parts.append(state[i])
        return tuple(parts)

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        for i, component in enumerate(self.components):
            for action, successor in component.transitions(state[i]):
                yield action, self._broadcast(state, action, i, successor)

    def input_step(self, state: State, action: Action) -> State:
        parts: List[State] = []
        for i, component in enumerate(self.components):
            if component.is_input(action):
                parts.append(component.input_step(state[i], action))
            else:
                parts.append(state[i])
        return tuple(parts)


def compose_automata(*components: IOAutomaton, name: str = "") -> ComposedAutomaton:
    """Compose automata; see :class:`ComposedAutomaton`."""
    return ComposedAutomaton(components, name=name)


class HidingAutomaton(IOAutomaton):
    """Reclassify selected output actions of an automaton as internal.

    Standard IOA hiding: used to internalize the tag-``n`` switch actions
    of a two-phase composition before comparing it to the single-phase
    specification over phases ``(m, o)``.
    """

    def __init__(
        self, inner: IOAutomaton, hidden: Callable[[Action], bool]
    ) -> None:
        self.inner = inner
        self._hidden = hidden
        self.name = f"hide({inner.name})"

    def initial_states(self) -> Iterable[State]:
        return self.inner.initial_states()

    def is_input(self, action: Action) -> bool:
        return self.inner.is_input(action)

    def is_output(self, action: Action) -> bool:
        return self.inner.is_output(action) and not self._hidden(action)

    def is_internal(self, action: Action) -> bool:
        return self.inner.is_internal(action) or (
            self.inner.is_output(action) and self._hidden(action)
        )

    def transitions(self, state: State) -> Iterable[Tuple[Action, State]]:
        return self.inner.transitions(state)

    def input_step(self, state: State, action: Action) -> State:
        return self.inner.input_step(state, action)


def hide(inner: IOAutomaton, hidden: Callable[[Action], bool]) -> HidingAutomaton:
    """Hide the outputs selected by ``hidden``; see :class:`HidingAutomaton`."""
    return HidingAutomaton(inner, hidden)
