"""Process-parallel execution engine for campaigns, sweeps and checks.

Every workload in this repository is a pure function of explicit seeds —
a nemesis run is determined by ``(target, schedule)``, a sweep shard by
its scope and shard index — so fanning out across processes cannot
change any verdict, only the wall-clock.  This module provides the one
primitive everything parallel builds on:

:func:`parallel_map` — an order-preserving, spawn-safe ``map`` over a
process pool.  Guarantees:

* **deterministic result order** — results arrive in item order no
  matter which worker finished first (``Pool.map`` semantics), so a
  parallel campaign report is byte-identical to the serial one;
* **spawn safety** — workers are started with the ``spawn`` method (no
  forked locks/rngs; each worker imports ``repro`` fresh), which means
  ``task`` must be a module-level function and items must be picklable;
* **serial fallback** — with ``jobs <= 1`` (or a single item) the task
  runs inline in this process through the *same* code path, so
  ``--jobs 1`` is the reference behavior, not a different implementation.

Consumers: :func:`repro.faults.campaign.run_campaign` (``jobs=``),
:func:`repro.core.enumeration.parallel_composition_sweep`, and
:func:`repro.ioa.modelcheck.parallel_scope_table`.  The in-process
checker itself is *not* process-parallelized: ADTs are closures and do
not pickle; parallelism lives at the run/shard granularity where every
task is rebuilt from picklable parameters inside the worker.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def default_jobs() -> int:
    """The default worker count: ``REPRO_JOBS`` env var, else the CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def parallel_map(
    task: Callable[[Item], Result],
    items: Iterable[Item],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[Result]:
    """Map ``task`` over ``items`` across ``jobs`` processes, in order.

    ``task`` must be an importable module-level function and every item
    picklable (the ``spawn`` start method is used).  ``jobs=None`` means
    :func:`default_jobs`; ``jobs <= 1`` or fewer than two items runs
    serially in-process.  ``chunksize`` tunes work-stealing granularity
    (default: ~4 chunks per worker).
    """
    work = list(items)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(max(1, jobs), len(work)) if work else 1
    if jobs <= 1:
        return [task(item) for item in work]
    if chunksize is None:
        chunksize = max(1, len(work) // (jobs * 4))
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=jobs) as pool:
        return pool.map(task, work, chunksize)
