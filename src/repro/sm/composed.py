"""RCons composed with CASCons: shared-memory speculative consensus (§2.5).

"We obtain such an object by composing a register-based speculation phase
called RCons and a CAS-based speculation phase called CASCons" — an
object that uses only registers in contention-free executions but always
executes correctly.

:func:`build_clients` produces the generator programs for a set of
proposing clients; each program runs RCons and, on a switch, immediately
continues into CASCons, emitting phase-tagged actions into a shared
:class:`~repro.core.recording.TraceRecorder`.  :func:`run_composed`
executes them under a chosen scheduling regime and reports the trace,
per-client outcomes and the primitive-operation census (registers vs CAS)
used by experiment E7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.adt import decide, propose
from ..core.recording import TraceRecorder
from ..core.traces import Trace
from .cascons import cascons_switch_program
from .memory import OpCounts, SharedMemory
from .rcons import rcons_program
from .scheduler import InterleavingScheduler, Program, explore_schedules


@dataclass
class SMOutcome:
    """Per-client result of a shared-memory consensus run."""

    client: Hashable
    value: Hashable
    decided_value: Optional[Hashable] = None
    switched: bool = False
    switch_value: Optional[Hashable] = None

    @property
    def path(self) -> str:
        """'fast' (decided in RCons) or 'slow' (via CASCons)."""
        if self.decided_value is None:
            return "none"
        return "slow" if self.switched else "fast"


def composed_client_program(
    client: Hashable,
    value: Hashable,
    recorder: TraceRecorder,
    outcome: SMOutcome,
) -> Program:
    """One client's full run: invoke, RCons, optional switch + CASCons."""
    recorder.invoke(client, 1, propose(value))
    kind, result = yield from rcons_program(client, value)
    if kind == "decide":
        outcome.decided_value = result
        recorder.respond(client, 1, propose(value), decide(result))
        return
    outcome.switched = True
    outcome.switch_value = result
    recorder.switch(client, 2, propose(value), result)
    kind2, winner = yield from cascons_switch_program(result)
    outcome.decided_value = winner
    recorder.respond(client, 2, propose(value), decide(winner))


def build_clients(
    proposals: Sequence[Tuple[Hashable, Hashable]],
) -> Tuple[SharedMemory, Dict[Hashable, Program], TraceRecorder, Dict[Hashable, SMOutcome]]:
    """Construct memory, programs, recorder and outcome slots.

    ``proposals`` is a list of ``(client, value)`` pairs; the returned
    pieces plug directly into the scheduler (or into
    :func:`repro.sm.scheduler.explore_schedules` via a setup closure).
    """
    memory = SharedMemory()
    recorder = TraceRecorder(phase_bounds=(1, 3))
    outcomes = {
        client: SMOutcome(client=client, value=value)
        for client, value in proposals
    }
    programs = {
        client: composed_client_program(
            client, value, recorder, outcomes[client]
        )
        for client, value in proposals
    }
    return memory, programs, recorder, outcomes


@dataclass
class SMRun:
    """The full result of one shared-memory execution."""

    trace: Trace
    outcomes: Dict[Hashable, SMOutcome]
    counts: OpCounts
    schedule: List[Hashable]

    @property
    def decisions(self) -> set:
        """The set of decided values (a singleton iff agreement held)."""
        return {
            o.decided_value
            for o in self.outcomes.values()
            if o.decided_value is not None
        }


def run_composed(
    proposals: Sequence[Tuple[Hashable, Hashable]],
    mode: str = "random",
    seed: int = 0,
    schedule: Optional[Sequence[Hashable]] = None,
) -> SMRun:
    """Run RCons+CASCons under a scheduling regime.

    ``mode``: ``"random"`` (seeded adversary), ``"sequential"``
    (contention-free, the fast-path regime), ``"round_robin"``, or
    ``"schedule"`` with an explicit thread schedule.
    """
    memory, programs, recorder, outcomes = build_clients(proposals)
    scheduler = InterleavingScheduler(memory, programs)
    if mode == "random":
        steps = scheduler.run_random(random.Random(seed))
    elif mode == "sequential":
        steps = scheduler.run_sequential()
    elif mode == "round_robin":
        steps = scheduler.run_round_robin()
    elif mode == "schedule":
        if schedule is None:
            raise ValueError("mode='schedule' requires a schedule")
        finished = scheduler.run_schedule(schedule)
        if not finished:
            raise ValueError("schedule did not run all clients to completion")
        steps = scheduler.steps_taken
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return SMRun(
        trace=recorder.trace(),
        outcomes=outcomes,
        counts=memory.counts,
        schedule=list(steps),
    )


def explore_composed(
    proposals: Sequence[Tuple[Hashable, Hashable]],
    max_schedules: Optional[int] = None,
):
    """Exhaustively enumerate every interleaving of the composed object.

    Yields an :class:`SMRun` per complete schedule.  Each run rebuilds
    the object from scratch, so recorded traces are per-schedule.
    """
    collected: Dict[int, Tuple[TraceRecorder, Dict[Hashable, SMOutcome]]] = {}

    def setup():
        memory, programs, recorder, outcomes = build_clients(proposals)
        collected[id(memory)] = (recorder, outcomes)
        return memory, programs

    for schedule, memory in explore_schedules(setup, max_schedules):
        recorder, outcomes = collected.pop(id(memory))
        yield SMRun(
            trace=recorder.trace(),
            outcomes=outcomes,
            counts=memory.counts,
            schedule=schedule,
        )
        collected.clear()
