"""Shared-memory substrate and the Section 2.5 algorithms.

An atomic-step interleaving machine (:mod:`repro.sm.memory`,
:mod:`repro.sm.scheduler`) hosts Lamport's splitter
(:mod:`repro.sm.splitter`), the register-based RCons phase
(:mod:`repro.sm.rcons`), the CAS-based CASCons phase
(:mod:`repro.sm.cascons`) and their composition
(:mod:`repro.sm.composed`).
"""

from .cascons import cascons_propose_program, cascons_switch_program
from .composed import (
    SMOutcome,
    SMRun,
    build_clients,
    composed_client_program,
    explore_composed,
    run_composed,
)
from .memory import OpCounts, SharedMemory
from .rcons import rcons_program
from .scheduler import (
    InterleavingScheduler,
    count_schedules,
    explore_schedules,
)
from .splitter import splitter

__all__ = [
    "InterleavingScheduler",
    "OpCounts",
    "SMOutcome",
    "SMRun",
    "SharedMemory",
    "build_clients",
    "cascons_propose_program",
    "cascons_switch_program",
    "composed_client_program",
    "count_schedules",
    "explore_composed",
    "explore_schedules",
    "rcons_program",
    "run_composed",
    "splitter",
]
