"""Simulated shared memory: atomic registers and compare-and-swap.

The substrate beneath the Section 2.5 algorithms (RCons / CASCons).  The
paper's model is an asynchronous shared-memory multiprocessor whose
registers and CAS are linearizable primitives; here each primitive is an
*atomic step* of an interleaving machine (:mod:`repro.sm.scheduler`), so
exploring interleavings covers exactly the executions the model permits.

Operation counters distinguish register reads/writes from CAS operations:
the motivation for RCons is that "CAS may be slower than an atomic
register access", so experiment E7 censuses which primitive each
execution actually used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Tuple


@dataclass
class OpCounts:
    """Primitive-operation counters for one execution."""

    reads: int = 0
    writes: int = 0
    cas: int = 0

    @property
    def register_ops(self) -> int:
        """Total plain register operations."""
        return self.reads + self.writes

    @property
    def total(self) -> int:
        """All primitive operations."""
        return self.reads + self.writes + self.cas

    def snapshot(self) -> Tuple[int, int, int]:
        """(reads, writes, cas) as an immutable tuple."""
        return (self.reads, self.writes, self.cas)


class SharedMemory:
    """A map of named atomic cells supporting read, write and CAS.

    All cells initially hold ``None`` (the paper's ⊥).  Each operation is
    one atomic step; the scheduler serializes steps, which is what makes
    the cells linearizable by construction.
    """

    def __init__(self) -> None:
        self._cells: Dict[Hashable, Any] = {}
        self.counts = OpCounts()

    def read(self, name: Hashable) -> Any:
        """Atomically read cell ``name``."""
        self.counts.reads += 1
        return self._cells.get(name)

    def write(self, name: Hashable, value: Any) -> None:
        """Atomically write ``value`` to cell ``name``."""
        self.counts.writes += 1
        self._cells[name] = value

    def cas(self, name: Hashable, expected: Any, new: Any) -> Any:
        """Atomic compare-and-swap; returns the cell's value *after* the
        operation (the winning value, as used by CASCons in Figure 3)."""
        self.counts.cas += 1
        current = self._cells.get(name)
        if current == expected:
            self._cells[name] = new
            return new
        return current

    def peek(self, name: Hashable) -> Any:
        """Inspect a cell without counting an operation (test helper)."""
        return self._cells.get(name)

    def execute(self, op: Tuple) -> Any:
        """Dispatch one operation tuple — the scheduler's step function.

        Operation forms: ``("read", name)``, ``("write", name, value)``,
        ``("cas", name, expected, new)``.
        """
        kind = op[0]
        if kind == "read":
            return self.read(op[1])
        if kind == "write":
            self.write(op[1], op[2])
            return None
        if kind == "cas":
            return self.cas(op[1], op[2], op[3])
        raise ValueError(f"unknown memory operation {op!r}")
