"""RCons — register-based speculative consensus (Figure 2).

RCons solves consensus **using only registers** when the execution is
contention-free, circumventing the wait-free impossibility (Herlihy) by
*switching* to the CAS-based phase whenever contention is detected:

.. code-block:: text

    Function propose(val):
        v <- val
        if D != ⊥:               return D          # someone decided
        if splitter() = true:
            V <- v
            if ¬Contention:
                D <- v;          return v           # uncontended win
            else:
                return switch-to-CASCons(v)
        else:
            Contention <- true
            if V != ⊥: v <- V
            return switch-to-CASCons(v)

Registers: ``V`` (winner's value), ``D`` (decision), ``Contention``
(losers raise it), plus the splitter's ``X``/``Y``.  The generator
returns an *outcome*: ``("decide", v)`` or ``("switch", v)``; the
composed runtime (:mod:`repro.sm.composed`) interprets switches by
running CASCons.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Tuple

from .splitter import splitter

Outcome = Tuple[str, Hashable]


def rcons_program(
    client: Hashable,
    value: Hashable,
    prefix: str = "rcons",
) -> Generator[Tuple, Any, Outcome]:
    """The RCons ``propose(value)`` of Figure 2 as a schedulable program.

    ``prefix`` namespaces the shared registers (``<prefix>.V`` etc.) so
    multiple objects can share one memory.
    """
    v = value
    reg_v = (prefix, "V")
    reg_d = (prefix, "D")
    reg_contention = (prefix, "Contention")

    decision = yield ("read", reg_d)
    if decision is not None:
        return ("decide", decision)

    won = yield from splitter(client, (prefix, "X"), (prefix, "Y"))
    if won:
        yield ("write", reg_v, v)
        contention = yield ("read", reg_contention)
        if not contention:
            yield ("write", reg_d, v)
            return ("decide", v)
        return ("switch", v)

    yield ("write", reg_contention, True)
    current = yield ("read", reg_v)
    if current is not None:
        v = current
    return ("switch", v)
