"""Lamport's wait-free splitter (Figure 2, lines 26-36).

The splitter guarantees that at most one process returns ``True``, and
that in a contention-free execution exactly one process returns ``True``.
It is implemented with two plain registers ``X`` (last entrant) and ``Y``
(door closed), as in the paper's listing:

.. code-block:: text

    Function splitter():
        X <- c
        if Y = true:  return false
        Y <- true
        if X = c:     return true
        else:         return false

The function below is a generator *subroutine*: algorithms embed it with
``result = yield from splitter(...)`` so that each register access remains
an individually scheduled atomic step.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Tuple


def splitter(
    client: Hashable,
    x_name: Hashable = "X",
    y_name: Hashable = "Y",
) -> Generator[Tuple, Any, bool]:
    """Run the splitter for ``client``; returns True for the (unique)
    winner.  ``x_name``/``y_name`` select the backing registers so that
    several splitter instances can coexist in one memory."""
    yield ("write", x_name, client)
    door_closed = yield ("read", y_name)
    if door_closed:
        return False
    yield ("write", y_name, True)
    last_entrant = yield ("read", x_name)
    return last_entrant == client
