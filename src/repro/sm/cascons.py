"""CASCons — CAS-based speculative consensus (Figure 3).

The straightforward hardware-consensus phase RCons falls back to:

.. code-block:: text

    Object CASCons
        // Shared register D, initially ⊥
        Function switch-to-CASCons(val):  return CAS(D, ⊥, val)
        Function propose(val):            return D

``switch-to-CASCons`` races the switch values through a single CAS: the
first value installed wins and every caller receives the winner (our CAS
primitive returns the register's value after the operation).  ``propose``
is only reachable once the consensus has already been won — clients first
enter the phase through a switch — so it simply reads ``D``.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Tuple

Outcome = Tuple[str, Hashable]


def cascons_switch_program(
    value: Hashable,
    prefix: str = "cascons",
) -> Generator[Tuple, Any, Outcome]:
    """``switch-to-CASCons(value)``: one CAS decides."""
    winner = yield ("cas", (prefix, "D"), None, value)
    return ("decide", winner)


def cascons_propose_program(
    value: Hashable,
    prefix: str = "cascons",
) -> Generator[Tuple, Any, Outcome]:
    """``propose(value)`` for clients already past the switch: read ``D``.

    Figure 3's comment: "Since processes have to call switch-to-CASCons
    first, we know that the consensus has already been won, hence just
    return D."
    """
    winner = yield ("read", (prefix, "D"))
    return ("decide", winner)
