"""Interleaving scheduler for shared-memory programs.

Client algorithms are written as Python *generators* that yield memory
operations (tuples understood by
:meth:`repro.sm.memory.SharedMemory.execute`) and receive the operation's
result at the next resumption.  Code between two yields runs atomically —
exactly the granularity of the paper's model, where only the shared-memory
primitives are atomic and everything else is process-local.

Three execution modes:

* :meth:`InterleavingScheduler.run_random` — a seeded uniformly random
  scheduler (an adversary drawn at random);
* :meth:`InterleavingScheduler.run_schedule` — replay an explicit thread
  schedule (used by exhaustive exploration and by regression tests that
  pin a specific adversary);
* :func:`explore_schedules` — exhaustive DFS over *all* interleavings of
  a (small) program set, the shared-memory analogue of model checking.
  Every complete schedule is passed to a collector; the RCons/CASCons
  tests use this to verify linearizability over every interleaving of 2-3
  clients.
"""

from __future__ import annotations

import random
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from .memory import SharedMemory

Program = Generator[Tuple, Any, None]


class InterleavingScheduler:
    """Serializes steps of a set of generator programs over one memory."""

    def __init__(
        self,
        memory: SharedMemory,
        programs: Dict[Hashable, Program],
    ) -> None:
        self.memory = memory
        self.programs = dict(programs)
        self._pending: Dict[Hashable, Tuple] = {}
        self._alive: List[Hashable] = []
        for name, program in self.programs.items():
            try:
                self._pending[name] = next(program)
                self._alive.append(name)
            except StopIteration:
                pass
        self.steps_taken: List[Hashable] = []

    @property
    def runnable(self) -> Tuple[Hashable, ...]:
        """Threads that still have a pending operation."""
        return tuple(self._alive)

    def step(self, name: Hashable) -> bool:
        """Execute one atomic step of thread ``name``.

        Returns True if the thread is still alive afterwards.
        """
        if name not in self._pending:
            raise ValueError(f"thread {name!r} is not runnable")
        op = self._pending.pop(name)
        result = self.memory.execute(op)
        self.steps_taken.append(name)
        try:
            self._pending[name] = self.programs[name].send(result)
            return True
        except StopIteration:
            self._alive.remove(name)
            return False

    def run_random(self, rng: random.Random) -> List[Hashable]:
        """Run to completion under a uniformly random scheduler."""
        while self._alive:
            self.step(rng.choice(self._alive))
        return self.steps_taken

    def run_round_robin(self) -> List[Hashable]:
        """Run to completion cycling through threads in name order."""
        while self._alive:
            for name in sorted(self._alive, key=repr):
                if name in self._pending:
                    self.step(name)
        return self.steps_taken

    def run_sequential(self) -> List[Hashable]:
        """Run each thread to completion before starting the next.

        This is the paper's contention-free regime: "the time intervals
        delimited by corresponding invocations and responses do not
        overlap".
        """
        for name in sorted(self.programs, key=repr):
            while name in self._pending:
                self.step(name)
        return self.steps_taken

    def run_schedule(self, choices: Iterable[Hashable]) -> bool:
        """Replay an explicit schedule; returns True if all threads
        finished by the end of the schedule."""
        for name in choices:
            if name in self._pending:
                self.step(name)
        return not self._alive


def explore_schedules(
    setup: Callable[[], Tuple[SharedMemory, Dict[Hashable, Program]]],
    max_schedules: Optional[int] = None,
) -> Iterator[Tuple[List[Hashable], SharedMemory]]:
    """Exhaustively enumerate all interleavings of a program set.

    ``setup`` freshly constructs the memory and programs (exploration
    replays prefixes, so construction must be repeatable and
    deterministic).  Yields ``(schedule, memory)`` for every complete
    interleaving, in DFS order; ``max_schedules`` caps the enumeration.
    """
    produced = 0

    def replay(prefix: List[Hashable]) -> InterleavingScheduler:
        memory, programs = setup()
        scheduler = InterleavingScheduler(memory, programs)
        scheduler.run_schedule(prefix)
        return scheduler

    def dfs(prefix: List[Hashable]) -> Iterator[Tuple[List[Hashable], SharedMemory]]:
        nonlocal produced
        if max_schedules is not None and produced >= max_schedules:
            return
        scheduler = replay(prefix)
        runnable = sorted(scheduler.runnable, key=repr)
        if not runnable:
            produced += 1
            yield list(prefix), scheduler.memory
            return
        for name in runnable:
            yield from dfs(prefix + [name])

    yield from dfs([])


def count_schedules(
    setup: Callable[[], Tuple[SharedMemory, Dict[Hashable, Program]]],
    max_schedules: Optional[int] = None,
) -> int:
    """Number of complete interleavings (bounded by ``max_schedules``)."""
    return sum(1 for _ in explore_schedules(setup, max_schedules))
