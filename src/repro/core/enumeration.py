"""Exhaustive enumeration of well-formed phase traces (small scopes).

The theorems of the paper are universally quantified over traces.  The
simulators exercise *algorithm-generated* traces; this module closes the
gap by enumerating **every** well-formed trace of a speculation phase up
to a length bound over a finite universe of clients and values — the
trace-level analogue of the automaton model checking in
:mod:`repro.ioa`.  The test-suite and benchmarks sweep these universes
through the speculative-linearizability checker and the composition
theorem.

Enumeration is incremental: each client is a small state machine (idle /
open / switched-out / done), so only well-formed continuations are ever
generated — the search space is the set of well-formed traces, not the
set of all action strings.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from .actions import Action, Invocation, Response, Switch
from .traces import Trace

IDLE = "idle"
OPEN = "open"
GONE = "gone"  # aborted out of the phase


def enumerate_phase_traces(
    m: int,
    n: int,
    clients: Sequence[Hashable],
    inputs: Sequence,
    outputs: Sequence,
    switch_values: Sequence,
    max_len: int,
    max_ops_per_client: int = 2,
) -> Iterator[Trace]:
    """All (m, n)-well-formed traces up to ``max_len`` actions.

    * clients in a first phase (``m == 1``) start idle and invoke at tag
      ``m``; in a later phase they first switch in (tag ``m``) carrying
      an input and a switch value;
    * an open operation may complete with any output (tag ``m``) or
      abort (tag ``n``) with any switch value;
    * ``max_ops_per_client`` bounds per-client operations.

    The enumeration includes traces with pending operations (every
    prefix of a yielded trace is itself yielded).
    """
    clients = tuple(clients)

    def continuations(state, ops_used):
        for i, client in enumerate(clients):
            status, open_input = state[i]
            if status == IDLE and ops_used[i] < max_ops_per_client:
                if m == 1 or ops_used[i] > 0:
                    for payload in inputs:
                        yield (
                            Invocation(client, m, payload),
                            i,
                            (OPEN, payload),
                            1,
                        )
                else:
                    # First action of a later-phase client: switch in.
                    for payload in inputs:
                        for value in switch_values:
                            yield (
                                Switch(client, m, payload, value),
                                i,
                                (OPEN, payload),
                                1,
                            )
            elif status == OPEN:
                for output in outputs:
                    yield (
                        Response(client, m, open_input, output),
                        i,
                        (IDLE, None),
                        0,
                    )
                for value in switch_values:
                    yield (
                        Switch(client, n, open_input, value),
                        i,
                        (GONE, None),
                        0,
                    )

    def walk(
        actions: List[Action],
        state: Tuple,
        ops_used: Tuple[int, ...],
    ) -> Iterator[Trace]:
        yield Trace(actions)
        if len(actions) >= max_len:
            return
        for action, i, new_status, op_inc in continuations(state, ops_used):
            new_state = state[:i] + (new_status,) + state[i + 1 :]
            new_ops = (
                ops_used[:i] + (ops_used[i] + op_inc,) + ops_used[i + 1 :]
            )
            actions.append(action)
            yield from walk(actions, new_state, new_ops)
            actions.pop()

    initial = tuple((IDLE, None) for _ in clients)
    yield from walk([], initial, tuple(0 for _ in clients))


def enumerate_consensus_phase_traces(
    m: int,
    n: int,
    clients: Sequence[Hashable],
    values: Sequence[Hashable],
    max_len: int,
    max_ops_per_client: int = 1,
) -> Iterator[Trace]:
    """Consensus-shaped phase traces: propose inputs, decide outputs,
    values as switch payloads."""
    from .adt import decide, propose

    return enumerate_phase_traces(
        m,
        n,
        clients,
        inputs=[propose(v) for v in values],
        outputs=[decide(v) for v in values],
        switch_values=list(values),
        max_len=max_len,
        max_ops_per_client=max_ops_per_client,
    )


def count_traces(iterator: Iterator[Trace]) -> int:
    """Length of an enumeration (drains the iterator)."""
    return sum(1 for _ in iterator)


def sweep_composition_scope(
    clients: Sequence[Hashable],
    values: Sequence[Hashable],
    max_len: int,
    shard: Optional[Tuple[int, int]] = None,
) -> dict:
    """Check Theorem 5 on every composed consensus trace of one scope.

    Returns counters: ``checked`` (traces examined), ``held`` (premises
    and conclusion hold), ``vacuous`` (some premise fails), ``falsified``
    (premises hold, conclusion fails — must be zero).

    ``shard=(index, total)`` checks only the traces whose enumeration
    position is ``index`` modulo ``total``.  Enumeration order is
    deterministic, so the shards partition the scope exactly and their
    counters sum to the unsharded run — this is the unit of work
    :func:`parallel_composition_sweep` fans out.
    """
    from .adt import consensus_adt
    from .composition import check_composition_theorem
    from .speculative import consensus_rinit

    adt = consensus_adt()
    rinit = consensus_rinit(list(values), max_extra=1)
    index, total = shard if shard is not None else (0, 1)
    checked = held = vacuous = falsified = 0
    for position, trace in enumerate(
        enumerate_composed_consensus_traces(clients, values, max_len)
    ):
        if position % total != index:
            continue
        checked += 1
        ok, why = check_composition_theorem(trace, 1, 2, 3, adt, rinit)
        if not ok:
            falsified += 1
        elif "premise fails" in why:
            vacuous += 1
        else:
            held += 1
    return {
        "checked": checked,
        "held": held,
        "vacuous": vacuous,
        "falsified": falsified,
    }


def _sweep_shard(job: Tuple) -> dict:
    """Spawn-safe worker: one shard of :func:`sweep_composition_scope`."""
    clients, values, max_len, index, total = job
    return sweep_composition_scope(
        clients, values, max_len, shard=(index, total)
    )


def parallel_composition_sweep(
    clients: Sequence[Hashable],
    values: Sequence[Hashable],
    max_len: int,
    jobs: int = 1,
) -> dict:
    """The Theorem-5 sweep of one scope, sharded across processes.

    Splits the enumeration into ``jobs`` interleaved shards (see
    :func:`sweep_composition_scope`), runs them via
    :func:`repro.engine.parallel_map`, and sums the counters — the merged
    result equals the serial sweep for any ``jobs``.
    """
    from .. import engine

    total = max(1, jobs)
    shards = [
        (tuple(clients), tuple(values), max_len, index, total)
        for index in range(total)
    ]
    partials = engine.parallel_map(_sweep_shard, shards, jobs=total)
    merged = {"checked": 0, "held": 0, "vacuous": 0, "falsified": 0}
    for partial in partials:
        for key in merged:
            merged[key] += partial[key]
    return merged


def enumerate_composed_consensus_traces(
    clients: Sequence[Hashable],
    values: Sequence[Hashable],
    max_len: int,
) -> Iterator[Trace]:
    """All well-formed (1, 3) composed consensus traces up to ``max_len``.

    Clients invoke at tag 1, may respond at tag 1, may switch through
    tag 2 (after which they may respond at tag 2 or abort at tag 3).
    This is the input space for exhaustive trace-level checking of the
    composition theorem.
    """
    from .adt import decide, propose

    clients = tuple(clients)
    inputs = [propose(v) for v in values]
    outputs = [decide(v) for v in values]

    # Client statuses: idle1 -> open1 -> (idle1 | open2 | gone)
    #                  open2 -> (done2-idle | gone)
    def continuations(state):
        for i, client in enumerate(clients):
            status, open_input = state[i]
            if status == "idle1":
                for payload in inputs:
                    yield Invocation(client, 1, payload), i, ("open1", payload)
            elif status == "open1":
                for output in outputs:
                    yield Response(client, 1, open_input, output), i, (
                        "done",
                        None,
                    )
                for value in values:
                    yield Switch(client, 2, open_input, value), i, (
                        "open2",
                        open_input,
                    )
            elif status == "open2":
                for output in outputs:
                    yield Response(client, 2, open_input, output), i, (
                        "done",
                        None,
                    )
                for value in values:
                    yield Switch(client, 3, open_input, value), i, (
                        "gone",
                        None,
                    )

    def walk(actions, state):
        yield Trace(actions)
        if len(actions) >= max_len:
            return
        for action, i, new_status in continuations(state):
            actions.append(action)
            yield from walk(
                actions, state[:i] + (new_status,) + state[i + 1 :]
            )
            actions.pop()

    initial = tuple(("idle1", None) for _ in clients)
    yield from walk([], initial)
