"""Speculative linearizability (Section 5 of the paper, Defs 16-36).

A speculation phase ``(m, n)`` accepts invocations and *init* switch
actions ``swi(c, m, in, v)`` and produces responses and *abort* switch
actions ``swi(c, n, in, v)``.  Switch values are interpreted through a
relation ``rinit`` mapping each value to a set of "equivalent" input
histories — the possible linearizations of the previous phase's execution.

Definition 19: a trace ``t`` is ``(m, n)``-speculatively linearizable iff
it is ``(m, n)``-well-formed and **for all** interpretations ``finit`` of
the init actions there **exist** an interpretation ``fabort`` of the abort
actions and a speculative linearization function ``g`` satisfying:

* **Explains**       — ``out = f_T(g(i))`` at every response;
* **Validity**       — commit/abort histories draw only on *valid inputs*:
  inputs carried by prior init actions (with the histories they interpret
  to, pointwise-max combined, Def. 25) plus inputs invoked in this phase
  (additively, Def. 26);
* **Commit Order**   — commit histories form a strict prefix chain;
* **Init Order**     — the longest common prefix of the init histories is
  a strict prefix of every commit and every abort history (vacuous when
  the trace has no init actions, in particular when ``m = 1``);
* **Abort Order**    — every commit history is a prefix of every abort
  history.

The universal quantification over ``finit`` ranges over the interpretation
sets supplied by an :class:`RInit`; for infinite ``rinit`` relations (like
the consensus example of Section 2.4) callers provide a finite,
trace-relevant candidate set.

The checker exploits two structural facts: (1) Init Order pins the master
history to start with ``lcp(init histories)``; (2) Abort Order makes every
commit history a prefix of ``lcp(abort histories)`` whenever the trace
aborts, collapsing the commit search to a prefix walk.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .actions import Input, Invocation, Switch, SwitchValue
from .adt import ADT, History
from .multisets import Multiset, elems, union_all
from .sequences import is_prefix, is_strict_prefix, longest_common_prefix
from .traces import (
    Trace,
    abort_indices,
    commit_indices,
    init_indices,
    inputs,
    is_phase_wellformed,
)


class RInit:
    """The ``rinit`` relation: switch values -> sets of input histories.

    ``interpretations(value)`` returns the (finite, for checking purposes)
    set of histories the value may stand for.  ``value_of(history)``
    implements the requirement that the inverse relation is a total onto
    function: every history is represented by exactly one switch value.

    The optional ``admissible(switch_action, history)`` predicate narrows
    the candidate set per switch *action*.  The paper's formal ``rinit``
    is client-independent, but its worked instantiation for consensus maps
    a switch of client ``c`` to "histories ... containing only invocations
    from clients other than c" (Section 2.4) — i.e. the candidate set
    depends on who switched.  The predicate carries exactly that
    refinement; checkers quantify over the admissible candidates.
    """

    def __init__(
        self,
        interpretations: Callable[[SwitchValue], Sequence[History]],
        value_of: Callable[[History], SwitchValue],
        admissible: Optional[Callable[[Switch, History], bool]] = None,
        abort_interpretations: Optional[
            Callable[[SwitchValue], Sequence[History]]
        ] = None,
        description: str = "",
    ) -> None:
        self._interpretations = interpretations
        self._value_of = value_of
        self._admissible = admissible
        self._abort_interpretations = abort_interpretations
        self.description = description

    def interpretations(self, value: SwitchValue) -> Tuple[History, ...]:
        """Candidate histories the switch value may represent."""
        return tuple(tuple(h) for h in self._interpretations(value))

    def abort_interpretations(self, value: SwitchValue) -> Tuple[History, ...]:
        """Candidate histories for *abort* actions.

        For an infinite ``rinit`` truncated to a finite candidate set,
        the abort side (existentially quantified) needs strictly longer
        candidates than the init side (universally quantified): Init
        Order demands an abort history strictly extending the longest
        common prefix of the chosen init histories, and in the real,
        infinite relation such an extension always exists.  Defaults to
        the plain interpretation set.
        """
        source = self._abort_interpretations or self._interpretations
        return tuple(tuple(h) for h in source(value))

    def interpretations_for(self, action: Switch) -> Tuple[History, ...]:
        """Candidate histories for one concrete (init) switch action."""
        candidates = self.interpretations(action.value)
        if self._admissible is None:
            return candidates
        return tuple(
            h for h in candidates if self._admissible(action, h)
        )

    def abort_interpretations_for(self, action: Switch) -> Tuple[History, ...]:
        """Candidate histories for one concrete abort switch action."""
        candidates = self.abort_interpretations(action.value)
        if self._admissible is None:
            return candidates
        return tuple(
            h for h in candidates if self._admissible(action, h)
        )

    def value_of(self, history: Sequence[Input]) -> SwitchValue:
        """The unique switch value representing ``history`` (``rinit^-1``)."""
        return self._value_of(tuple(history))

    def __repr__(self) -> str:
        return f"RInit({self.description or 'anonymous'})"


def singleton_rinit() -> RInit:
    """The Section-6 relation: each history is its own switch value.

    ``rinit(h) = {h}``; used by the universal-ADT specification automaton.
    """
    return RInit(
        interpretations=lambda value: (tuple(value),),
        value_of=lambda history: history,
        description="singleton (value = history)",
    )


def first_value_rinit(
    make_input: Callable[[Hashable], Input],
    first_of: Callable[[History], Hashable],
    histories_for: Callable[[SwitchValue], Sequence[History]],
) -> RInit:
    """An rinit keyed by the *first* logical value of a history.

    This is the shape of the consensus example (Section 2.4): the switch
    value ``v`` stands for the set of histories starting with
    ``propose(v)``; the inverse maps a history to its first proposed
    value.  ``histories_for`` supplies the finite candidate set used
    during checking.
    """
    return RInit(
        interpretations=histories_for,
        value_of=lambda history: first_of(history),
        description="first-value",
    )


def consensus_rinit(
    values: Iterable[Hashable],
    max_extra: int = 2,
) -> RInit:
    """The rinit of the paper's consensus examples (Sections 2.4 / 2.5).

    A switch value ``v`` stands for every history that starts with
    ``propose(v)``.  All such histories are equivalent for the consensus
    ADT: the first proposal determines every later decision.  The finite
    candidate set contains histories ``[p(v), p(w1), ..., p(wk)]`` with
    ``k <= max_extra`` and ``wi`` drawn from ``values``.
    """
    from .adt import propose

    universe = tuple(values)

    def histories_up_to(value: SwitchValue, extra: int) -> List[History]:
        result: List[History] = [(propose(value),)]
        pool: List[History] = [(propose(value),)]
        for _ in range(extra):
            pool = [
                h + (propose(w),) for h in pool for w in universe
            ]
            result.extend(pool)
        return result

    def histories_for(value: SwitchValue) -> List[History]:
        return histories_up_to(value, max_extra)

    def abort_histories_for(value: SwitchValue) -> List[History]:
        # One extra level so Init Order's strict extension of the longest
        # init candidate is always available (the real rinit is infinite).
        return histories_up_to(value, max_extra + 1)

    def value_of(history: History) -> SwitchValue:
        if not history:
            raise ValueError("the empty history has no representing value")
        tag, value = history[0]
        return value

    return RInit(
        histories_for,
        value_of,
        abort_interpretations=abort_histories_for,
        description="consensus rinit",
    )


# ---------------------------------------------------------------------------
# Interpretations (Definitions 17-18)
# ---------------------------------------------------------------------------


def is_interpretation(
    trace: Trace,
    phase_tag: int,
    f: Mapping[int, History],
    rinit: RInit,
    abort: bool = False,
) -> bool:
    """Check Definitions 17/18: ``f`` interprets the switches tagged
    ``phase_tag`` (``m`` for init actions, ``n`` for abort actions; pass
    ``abort=True`` for the latter so the abort candidate set is used)."""
    for i, action in enumerate(trace):
        if isinstance(action, Switch) and action.phase == phase_tag:
            if i not in f:
                return False
            candidates = (
                rinit.abort_interpretations_for(action)
                if abort
                else rinit.interpretations_for(action)
            )
            if tuple(f[i]) not in set(candidates):
                return False
    return True


def enumerate_interpretations(
    trace: Trace,
    phase_tag: int,
    rinit: RInit,
    max_interpretations: Optional[int] = None,
    sample_seed: int = 0,
) -> Iterable[Dict[int, History]]:
    """Interpretations of the switches tagged ``phase_tag``.

    By default, the full product over switch indices of each value's
    candidate histories (a single empty mapping when the trace has no
    such switches).  The product is exponential in the number of init
    actions; ``max_interpretations`` caps it by deterministic sampling
    (seeded by ``sample_seed``) — the check becomes an approximation of
    the universal quantifier, which callers must surface (see
    ``SpeculativeResult.exhaustive``).
    """
    import random as _random

    indices = [
        i
        for i, action in enumerate(trace)
        if isinstance(action, Switch) and action.phase == phase_tag
    ]
    if not indices:
        yield {}
        return
    candidate_lists = [
        rinit.interpretations_for(trace[i]) for i in indices
    ]
    total = 1
    for candidates in candidate_lists:
        total *= max(1, len(candidates))
    if max_interpretations is None or total <= max_interpretations:
        for combo in itertools.product(*candidate_lists):
            yield dict(zip(indices, combo))
        return
    rng = _random.Random(sample_seed)
    seen = set()
    # Always include the "shortest candidates" corner (empirically the
    # most constraining interpretation: the longest lcp per length).
    first = tuple(
        min(candidates, key=len) for candidates in candidate_lists
    )
    seen.add(first)
    yield dict(zip(indices, first))
    attempts = 0
    while len(seen) < max_interpretations and attempts < 20 * max_interpretations:
        attempts += 1
        combo = tuple(
            rng.choice(candidates) for candidates in candidate_lists
        )
        if combo in seen:
            continue
        seen.add(combo)
        yield dict(zip(indices, combo))


def count_interpretations(trace: Trace, phase_tag: int, rinit: RInit) -> int:
    """Size of the full interpretation product (without enumerating it)."""
    total = 1
    for i, action in enumerate(trace):
        if isinstance(action, Switch) and action.phase == phase_tag:
            total *= max(1, len(rinit.interpretations_for(action)))
    return total


# ---------------------------------------------------------------------------
# Valid inputs (Definitions 25-26)
# ---------------------------------------------------------------------------


def initially_valid_inputs(
    trace: Trace,
    m: int,
    finit: Mapping[int, History],
    index: int,
) -> Multiset:
    """``ivi(m, t, finit, i)`` (Definition 25).

    The interpreted histories combine by pointwise max — they all
    approximate the *same* previous-phase linearization, so a shared
    prefix must not be double counted.  The carried pending inputs
    combine *additively*, both with the histories and across switches:
    each is a distinct invocation event (well-formedness gives one init
    switch per client), and in the paper's own proofs the concatenation
    ``th @ t'`` contains the history's invocations and, separately, every
    replaced pending invocation.

    This max-histories / sum-pendings split is a deliberate reading of
    Definition 25 (whose two union symbols are ambiguous between max and
    sum).  All-max starves legitimate executions twice over: a client
    whose switch value can only be interpreted as histories led by its
    *own* pending proposal — e.g. a Quorum client that times out and
    switches with its own value — could never be served by the next
    phase under the strict Init Order; and two clients switching with
    identical pending inputs would get one budget slot for two
    invocations.  All-sum over histories would instead double count the
    shared linearization prefix.
    """
    histories: List[Multiset] = []
    carried: List[Input] = []
    for j in range(index):
        action = trace[j]
        if isinstance(action, Switch) and action.phase == m:
            histories.append(elems(finit[j]))
            carried.append(action.input)
    return union_all(histories).sum(Multiset(carried))


def valid_inputs(
    trace: Trace,
    m: int,
    finit: Mapping[int, History],
    index: int,
) -> Multiset:
    """``vi(m, t, finit, i)`` (Definition 26): ivi ⊎ inputs invoked before i."""
    return initially_valid_inputs(trace, m, finit, index).sum(
        elems(inputs(trace, index))
    )


# ---------------------------------------------------------------------------
# The speculative linearization predicates (Definitions 27-32)
# ---------------------------------------------------------------------------


def commit_index_valid(
    trace: Trace,
    m: int,
    finit: Mapping[int, History],
    index: int,
    history: History,
) -> bool:
    """Definition 27: the commit history at ``index`` draws on valid inputs
    and ends with the responding input."""
    action = trace[index]
    if not history or history[-1] != action.input:
        return False
    return elems(history).issubset(valid_inputs(trace, m, finit, index))


def abort_index_valid(
    trace: Trace,
    m: int,
    finit: Mapping[int, History],
    index: int,
    abort_history: History,
) -> bool:
    """Definition 28: ``elems(fabort(v)) u {in} <= vi(m, t, finit, i)``."""
    action = trace[index]
    required = elems(abort_history).union(Multiset([action.input]))
    return required.issubset(valid_inputs(trace, m, finit, index))


@dataclass(frozen=True)
class SpeculativeWitness:
    """A witness for one interpretation ``finit``.

    ``commit`` maps response positions to commit histories; ``abort`` maps
    abort positions to abort histories; ``init_prefix`` is the longest
    common prefix of the init histories.
    """

    finit: Mapping[int, History]
    fabort: Mapping[int, History]
    commit: Mapping[int, History]
    init_prefix: History


@dataclass(frozen=True)
class SpeculativeResult:
    """Outcome of a speculative linearizability check.

    ``ok`` requires a witness for *every* interpretation of the init
    actions; ``witnesses`` collects one witness per interpretation checked,
    and on failure ``failing_finit`` is an interpretation with no witness.
    ``exhaustive`` is False when the universal quantifier was sampled
    (``max_interpretations``) rather than fully enumerated — a positive
    verdict is then an approximation.
    """

    ok: bool
    witnesses: Tuple[SpeculativeWitness, ...] = ()
    failing_finit: Optional[Mapping[int, History]] = None
    reason: str = ""
    exhaustive: bool = True

    def __bool__(self) -> bool:
        return self.ok


def check_speculative_witness(
    trace: Trace,
    m: int,
    n: int,
    adt: ADT,
    witness: SpeculativeWitness,
    rinit: RInit,
) -> Tuple[bool, str]:
    """Validate a full witness against Definitions 19-32 (the definition
    made executable; used by tests and by the search as a final guard)."""
    if not is_phase_wellformed(trace, m, n):
        return False, "trace is not (m,n)-well-formed"
    if not is_interpretation(trace, m, witness.finit, rinit):
        return False, "finit is not an interpretation of the init actions"
    if not is_interpretation(trace, n, witness.fabort, rinit, abort=True):
        return False, "fabort is not an interpretation of the abort actions"

    commits = commit_indices(trace)
    aborts = abort_indices(trace, n)
    inits = init_indices(trace, m)

    # Explains.
    for i in commits:
        history = witness.commit.get(i)
        if history is None:
            return False, f"no commit history assigned at index {i}"
        if adt.output(history) != trace[i].output:
            return False, f"g does not explain the response at index {i}"

    # Validity (Definition 29).
    for i in commits:
        if not commit_index_valid(trace, m, witness.finit, i, witness.commit[i]):
            return False, f"commit index {i} is not valid"
    for i in aborts:
        if not abort_index_valid(trace, m, witness.finit, i, witness.fabort[i]):
            return False, f"abort index {i} is not valid"

    # Commit Order (Definition 30).
    ordered = sorted(
        (witness.commit[i] for i in commits), key=len
    )
    for h1, h2 in zip(ordered, ordered[1:]):
        if h1 == h2:
            continue  # identical histories may only arise from the same index
        if not is_strict_prefix(h1, h2):
            return False, "Commit Order violated"
    lengths = [len(witness.commit[i]) for i in commits]
    if len(set(lengths)) != len(lengths):
        return (
            False,
            "Commit Order violated (two distinct commit indices share a "
            "history length)",
        )

    # Real-Time Order (the repair documented in linearizability.py).
    from .linearizability import invocation_positions

    inv_pos = invocation_positions(trace)
    for i in commits:
        for j in commits:
            if i != j and i < inv_pos[j]:
                if not is_strict_prefix(witness.commit[i], witness.commit[j]):
                    return False, f"Real-Time Order violated ({i}, {j})"

    # Init Order (Definition 31) — vacuous with no init actions.
    if inits:
        init_prefix = longest_common_prefix(
            [witness.finit[i] for i in inits]
        )
        if tuple(witness.init_prefix) != init_prefix:
            return False, "witness init_prefix mismatch"
        for i in commits:
            if not is_strict_prefix(init_prefix, witness.commit[i]):
                return False, f"Init Order violated at commit index {i}"
        for i in aborts:
            if not is_strict_prefix(init_prefix, witness.fabort[i]):
                return False, f"Init Order violated at abort index {i}"

    # Abort Order (Definition 32).
    for i in commits:
        for j in aborts:
            if not is_prefix(witness.commit[i], witness.fabort[j]):
                return False, (
                    f"Abort Order violated: commit {i} vs abort {j}"
                )
    return True, ""


# ---------------------------------------------------------------------------
# Search
# ---------------------------------------------------------------------------


def _abort_candidates(
    trace: Trace,
    m: int,
    n: int,
    finit: Mapping[int, History],
    rinit: RInit,
    init_prefix: History,
    has_inits: bool,
) -> List[Tuple[int, List[History]]]:
    """Per abort index, the rinit candidates surviving the local checks
    (abort validity and Init Order)."""
    survivors: List[Tuple[int, List[History]]] = []
    for i in abort_indices(trace, n):
        action = trace[i]
        options = []
        for candidate in rinit.abort_interpretations_for(action):
            if not abort_index_valid(trace, m, finit, i, candidate):
                continue
            if has_inits and not is_strict_prefix(init_prefix, candidate):
                continue
            options.append(candidate)
        survivors.append((i, options))
    return survivors


def _search_commits(
    trace: Trace,
    m: int,
    adt: ADT,
    finit: Mapping[int, History],
    init_prefix: History,
    abort_lcp: Optional[History],
    commits: Sequence[int],
) -> Optional[Dict[int, History]]:
    """DFS for the commit assignment given fixed finit/fabort choices.

    The master history starts at ``init_prefix``; each step either commits
    a remaining response (appending its input) or interleaves an available
    input.  When the trace aborts, every commit history must additionally
    be a prefix of ``abort_lcp``.
    """
    if not commits:
        return {}

    before = {i: valid_inputs(trace, m, finit, i) for i in commits}
    from .linearizability import invocation_positions

    inv_pos = invocation_positions(trace)
    available = elems(
        [a.input for a in trace if isinstance(a, Invocation)]
    ).sum(
        elems(
            [
                a.input
                for a in trace
                if isinstance(a, Switch) and a.phase == m
            ]
        )
    )
    for i in init_indices(trace, m):
        available = available.union(elems(finit[i]))

    try:
        state0, _ = adt.run(init_prefix)
    except ValueError:
        state0 = adt.initial_state
    witness: Dict[int, History] = {}
    visited: Set[Tuple[History, FrozenSet[int]]] = set()

    def prefix_of_abort(candidate: History) -> bool:
        return abort_lcp is None or is_prefix(candidate, abort_lcp)

    def dfs(master: History, state, committed: FrozenSet[int]) -> bool:
        if len(committed) == len(commits):
            return True
        key = (master, committed)
        if key in visited:
            return False
        visited.add(key)
        used = elems(master)

        for position in commits:
            if position in committed:
                continue
            # Real-Time Order (same repair as the plain checker): every
            # response preceding this operation's opening action commits
            # first.
            threshold = inv_pos[position]
            if any(
                other < threshold and other not in committed
                for other in commits
            ):
                continue
            action = trace[position]
            extended = master + (action.input,)
            if not prefix_of_abort(extended):
                continue
            if not elems(extended).issubset(before[position]):
                continue
            new_state, output = adt.transition(state, action.input)
            if output != action.output:
                continue
            witness[position] = extended
            if dfs(extended, new_state, committed | {position}):
                return True
            del witness[position]

        for candidate in available:
            if used.count(candidate) >= available.count(candidate):
                continue
            extended = master + (candidate,)
            if not prefix_of_abort(extended):
                continue
            feasible = any(
                position not in committed
                and elems(extended).issubset(before[position])
                for position in commits
            )
            if not feasible:
                continue
            new_state, _ = adt.transition(state, candidate)
            if dfs(extended, new_state, committed):
                return True
        return False

    if dfs(tuple(init_prefix), state0, frozenset()):
        return dict(witness)
    return None


def speculatively_linearize_for(
    trace: Trace,
    m: int,
    n: int,
    adt: ADT,
    rinit: RInit,
    finit: Mapping[int, History],
) -> Optional[SpeculativeWitness]:
    """Find a witness (g, fabort) for one fixed interpretation ``finit``."""
    inits = init_indices(trace, m)
    has_inits = bool(inits)
    init_prefix = longest_common_prefix([finit[i] for i in inits])
    commits = commit_indices(trace)

    per_abort = _abort_candidates(
        trace, m, n, finit, rinit, init_prefix, has_inits
    )
    if any(not options for _, options in per_abort):
        return None

    positions = [i for i, _ in per_abort]
    option_lists = [options for _, options in per_abort]
    for combo in itertools.product(*option_lists) if positions else [()]:
        fabort = dict(zip(positions, combo))
        abort_lcp: Optional[History]
        if fabort:
            abort_lcp = longest_common_prefix(list(fabort.values()))
        else:
            abort_lcp = None
        commit_assignment = _search_commits(
            trace, m, adt, finit, init_prefix, abort_lcp, commits
        )
        if commit_assignment is None:
            continue
        witness = SpeculativeWitness(
            finit=dict(finit),
            fabort=fabort,
            commit=commit_assignment,
            init_prefix=init_prefix,
        )
        ok, _ = check_speculative_witness(trace, m, n, adt, witness, rinit)
        if ok:
            return witness
    return None


def speculatively_linearize(
    trace: Trace,
    m: int,
    n: int,
    adt: ADT,
    rinit: RInit,
    max_interpretations: Optional[int] = None,
    sample_seed: int = 0,
) -> SpeculativeResult:
    """Full check of Definition 19 over all init interpretations.

    ``max_interpretations`` caps the universal quantifier by sampling
    (for traces with many init actions); the result then carries
    ``exhaustive=False``.
    """
    if not is_phase_wellformed(trace, m, n):
        return SpeculativeResult(
            False, reason="trace is not (m,n)-well-formed"
        )
    exhaustive = (
        max_interpretations is None
        or count_interpretations(trace, m, rinit) <= max_interpretations
    )
    witnesses: List[SpeculativeWitness] = []
    for finit in enumerate_interpretations(
        trace, m, rinit, max_interpretations, sample_seed
    ):
        witness = speculatively_linearize_for(trace, m, n, adt, rinit, finit)
        if witness is None:
            return SpeculativeResult(
                False,
                failing_finit=finit,
                reason="no witness for some init interpretation",
                exhaustive=exhaustive,
            )
        witnesses.append(witness)
    return SpeculativeResult(
        True, witnesses=tuple(witnesses), exhaustive=exhaustive
    )


def is_speculatively_linearizable(
    trace: Trace, m: int, n: int, adt: ADT, rinit: RInit
) -> bool:
    """Boolean wrapper around :func:`speculatively_linearize`."""
    return speculatively_linearize(trace, m, n, adt, rinit).ok
