"""Trace recording at the client/object interface (Section 4.2).

Concurrent-object implementations (the message-passing and shared-memory
algorithms of this repository) emit their interface events through a
:class:`TraceRecorder`.  The recorder timestamps nothing — events are
totally ordered by emission order, which is exactly the paper's trace
model: "an event occurs at some point in time and has no duration".

The recorder also enforces the well-formedness discipline per client as
events arrive, so a buggy algorithm that, e.g., responds twice to one
invocation is caught at the emission site rather than as a mysterious
checker failure later.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from .actions import (
    Action,
    Input,
    Invocation,
    Output,
    Response,
    Switch,
    SwitchValue,
)
from .traces import Trace


class WellFormednessError(RuntimeError):
    """An algorithm emitted an event violating client well-formedness."""


class TraceRecorder:
    """Collects interface actions into a trace.

    ``phase_bounds`` optionally declares the (m, n) phase interval so that
    recorded switch tags can be validated; pass ``None`` for plain
    (non-speculative) objects.
    """

    def __init__(
        self,
        phase_bounds: Optional[tuple] = None,
        enforce: bool = True,
    ) -> None:
        self._actions: List[Action] = []
        self._open_input: Dict[Hashable, Optional[Input]] = {}
        self._aborted: Dict[Hashable, bool] = {}
        self.phase_bounds = phase_bounds
        self.enforce = enforce

    def _check_closed(self, client: Hashable, what: str) -> None:
        if self.enforce and self._open_input.get(client) is not None:
            raise WellFormednessError(
                f"client {client!r} issued {what} with an open invocation"
            )

    def _check_open(self, client: Hashable, input: Input, what: str) -> None:
        if not self.enforce:
            return
        current = self._open_input.get(client)
        if current is None:
            raise WellFormednessError(
                f"client {client!r} received {what} with no open invocation"
            )
        if current != input:
            raise WellFormednessError(
                f"client {client!r} received {what} for {input!r} but its "
                f"open invocation is {current!r}"
            )

    def invoke(self, client: Hashable, phase: int, input: Input) -> Invocation:
        """Record ``inv(client, phase, input)``."""
        self._check_closed(client, "an invocation")
        if self.enforce and self._aborted.get(client):
            raise WellFormednessError(
                f"client {client!r} invoked after aborting this phase"
            )
        action = Invocation(client, phase, input)
        self._actions.append(action)
        self._open_input[client] = input
        return action

    def respond(
        self, client: Hashable, phase: int, input: Input, output: Output
    ) -> Response:
        """Record ``res(client, phase, input, output)``."""
        self._check_open(client, input, "a response")
        action = Response(client, phase, input, output)
        self._actions.append(action)
        self._open_input[client] = None
        return action

    def switch_in(
        self, client: Hashable, phase: int, input: Input, value: SwitchValue
    ) -> Switch:
        """Record an init switch: the client enters this phase."""
        self._check_closed(client, "an init switch")
        action = Switch(client, phase, input, value)
        self._actions.append(action)
        self._open_input[client] = input
        return action

    def switch_out(
        self, client: Hashable, phase: int, input: Input, value: SwitchValue
    ) -> Switch:
        """Record an abort switch: the client leaves this phase."""
        self._check_open(client, input, "an abort switch")
        action = Switch(client, phase, input, value)
        self._actions.append(action)
        self._open_input[client] = None
        self._aborted[client] = True
        return action

    def switch(
        self, client: Hashable, phase: int, input: Input, value: SwitchValue
    ) -> Switch:
        """Record a switch *through* a phase boundary.

        A switch is a single action shared by two phases — the abort of
        one and the init of the next — so a composed run records it once;
        projecting onto either phase's signature keeps the same action.
        The client's pending invocation stays open: the next phase will
        answer it.
        """
        self._check_open(client, input, "a switch")
        action = Switch(client, phase, input, value)
        self._actions.append(action)
        return action

    def trace(self) -> Trace:
        """The trace recorded so far."""
        return Trace(self._actions)

    def __len__(self) -> int:
        return len(self._actions)
