"""The paper's new definition of linearizability (Section 4, Defs 5-15).

A trace ``t`` is linearizable iff it is well-formed and admits a
*linearization function* ``g`` mapping each response index to a *commit
history* (a sequence of ADT inputs) such that:

* **Explains** (Def. 7):  ``out = f_T(g(i))`` for each response at ``i``;
* **Validity** (Defs 10/11): ``elems(g(i))`` is included in the multiset of
  inputs invoked before ``i``, and ``g(i)`` ends with the responding
  client's input;
* **Commit Order** (Def. 12): commit histories form a chain under the
  *strict* prefix order;
* **Real-Time Order** (repair, see below): if the response at commit
  index ``i`` occurs before the *invocation* answered at commit index
  ``j``, then ``g(i)`` is a strict prefix of ``g(j)``.

The last condition does not appear in the paper's Definition 6, but it is
necessary for Theorem 1 (equivalence with classical linearizability) to
hold: without it, the trace ``[inv(w, write(2)), res(w, ok),
inv(r, read), res(r, value=None)]`` — a read invoked *after* a completed
write returning the pre-write value — admits a linearization function
(commit the read's singleton history first, then embed it under the
write's), yet it is rejected by the classical definition, which preserves
the order of non-overlapping operations (Definition 44).  The appendix's
Lemma 4 proof implicitly uses this property when it claims the
constructed reordering is a classical witness.  The test-suite carries
the counterexample (``test_equivalence.py``) and checks that, with the
repair, the two complete checkers agree over large random trace
families.

Two artifacts live here:

1. :func:`check_linearization_function` — verifies a user-supplied ``g``
   against the definition (the definition made executable);
2. :func:`linearize` / :func:`is_linearizable` — a complete search for a
   witness ``g``.  Commit Order means all commit histories are prefixes of
   a single master history, so the search builds that master history left
   to right: at each step it either *commits* a not-yet-explained response
   (appending its input and checking Explains + Validity) or *interleaves*
   the input of another invocation (e.g. one that remains pending).  The
   search is exponential in the worst case — linearizability checking is
   NP-hard — but memoization on (master, committed) states keeps it fast at
   the trace sizes used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .actions import Input, Invocation, Response
from .adt import ADT, History
from .multisets import Multiset, elems
from .sequences import is_strict_prefix
from .traces import Trace, inputs, is_wellformed


@dataclass(frozen=True)
class LinearizationResult:
    """Outcome of a linearizability check.

    ``ok`` is the verdict; on success ``witness`` maps each response index
    (0-based position in the trace) to its commit history, and ``master``
    is the longest commit history (the full linearization).  On failure
    ``reason`` holds a human-readable explanation.
    """

    ok: bool
    witness: Optional[Mapping[int, History]] = None
    master: Optional[History] = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def _response_positions(trace: Trace) -> List[int]:
    return [
        i for i, a in enumerate(trace.actions) if isinstance(a, Response)
    ]


def invocation_positions(trace: Trace) -> Dict[int, int]:
    """Map each response position to the position where its operation
    *started*.

    An operation starts at its invocation, or — in a phase trace whose
    clients enter via an init switch — at that switch.  Crucially, a
    switch occurring while the client's operation is already open (the
    pass-through of a composed trace) does **not** restart the
    operation: the pending invocation travels across the phase boundary,
    so the operation still spans from the original invocation.  Treating
    the switch as a fresh start would manufacture real-time edges against
    operations that completed mid-flight, wrongly rejecting composed
    traces (caught by the exhaustive sweep in ``test_enumeration.py``).
    """
    from .actions import Switch

    start: Dict[object, int] = {}
    open_now: Dict[object, bool] = {}
    pairing: Dict[int, int] = {}
    for i, action in enumerate(trace.actions):
        if isinstance(action, Invocation):
            start[action.client] = i
            open_now[action.client] = True
        elif isinstance(action, Switch):
            if not open_now.get(action.client, False):
                start[action.client] = i
                open_now[action.client] = True
        elif isinstance(action, Response):
            pairing[i] = start.get(action.client, i)
            open_now[action.client] = False
    return pairing


def _realtime_pairs_ok(
    histories: Dict[int, "History"], inv_pos: Dict[int, int]
) -> Optional[Tuple[int, int]]:
    """Return a violating (i, j) pair, or None if Real-Time Order holds."""
    for i in histories:
        for j in histories:
            if i == j:
                continue
            if i < inv_pos[j]:
                from .sequences import is_strict_prefix as _strict

                if not _strict(histories[i], histories[j]):
                    return (i, j)
    return None


def check_linearization_function(
    trace: Trace,
    g: Mapping[int, Sequence[Input]],
    adt: ADT,
    require_wellformed: bool = True,
) -> LinearizationResult:
    """Verify that ``g`` is a linearization function for ``trace`` (Def. 6).

    ``g`` maps 0-based response positions to histories; positions that are
    not response indices are ignored (the definition only constrains
    commit indices).
    """
    if require_wellformed and not is_wellformed(trace):
        return LinearizationResult(False, reason="trace is not well-formed")

    histories: Dict[int, History] = {}
    for i in _response_positions(trace):
        if i not in g:
            return LinearizationResult(
                False, reason=f"g is undefined at commit index {i}"
            )
        histories[i] = tuple(g[i])

    # Explains (Definition 7) and Validity (Definitions 10-11).
    for i, history in histories.items():
        action = trace[i]
        if not history:
            return LinearizationResult(
                False, reason=f"empty commit history at index {i}"
            )
        if adt.output(history) != action.output:
            return LinearizationResult(
                False,
                reason=(
                    f"g does not explain index {i}: f(g({i})) = "
                    f"{adt.output(history)!r} but output is {action.output!r}"
                ),
            )
        if history[-1] != action.input:
            return LinearizationResult(
                False,
                reason=(
                    f"commit history at {i} does not end with the "
                    f"responding input {action.input!r}"
                ),
            )
        if not elems(history).issubset(elems(inputs(trace, i))):
            return LinearizationResult(
                False,
                reason=(
                    f"commit history at {i} uses inputs not invoked "
                    f"before index {i}"
                ),
            )

    # Commit Order (Definition 12): strict prefix chain over distinct
    # commit indices.
    items = sorted(histories.items(), key=lambda kv: len(kv[1]))
    for (i, h1), (j, h2) in zip(items, items[1:]):
        if not is_strict_prefix(h1, h2):
            return LinearizationResult(
                False,
                reason=(
                    f"commit histories at {i} and {j} violate Commit "
                    f"Order: {h1!r} vs {h2!r}"
                ),
            )

    # Real-Time Order (the repair; see the module docstring).
    violation = _realtime_pairs_ok(histories, invocation_positions(trace))
    if violation is not None:
        i, j = violation
        return LinearizationResult(
            False,
            reason=(
                f"Real-Time Order violated: response at {i} precedes the "
                f"invocation answered at {j} but g({i}) is not a strict "
                f"prefix of g({j})"
            ),
        )

    master = items[-1][1] if items else ()
    return LinearizationResult(True, witness=dict(histories), master=master)


@dataclass
class _SearchContext:
    """Internal state shared across the DFS."""

    trace: Trace
    adt: ADT
    responses: List[int]
    # Position of the invocation answered by each response position.
    inv_pos: Dict[int, int]
    # Multiset of inputs invoked strictly before each response position.
    before: Dict[int, Multiset]
    # Multiset of all invocation inputs in the trace.
    available: Multiset
    visited: Set[Tuple[History, FrozenSet[int]]] = field(default_factory=set)
    witness: Dict[int, History] = field(default_factory=dict)
    nodes: int = 0
    node_limit: Optional[int] = None


class SearchBudgetExceeded(RuntimeError):
    """Raised when the linearization search exceeds its node budget."""


def _search(
    ctx: _SearchContext,
    master: History,
    state: Hashable,
    committed: FrozenSet[int],
) -> bool:
    if len(committed) == len(ctx.responses):
        return True
    key = (master, committed)
    if key in ctx.visited:
        return False
    ctx.visited.add(key)
    ctx.nodes += 1
    if ctx.node_limit is not None and ctx.nodes > ctx.node_limit:
        raise SearchBudgetExceeded(
            f"linearization search exceeded {ctx.node_limit} nodes"
        )

    used = elems(master)

    # Option A: commit an uncommitted response next.
    for position in ctx.responses:
        if position in committed:
            continue
        # Real-Time Order: a response that occurred before this
        # operation's invocation must already be committed (it must be a
        # strict prefix in the chain, and the DFS commits in chain order).
        threshold = ctx.inv_pos[position]
        if any(
            other < threshold and other not in committed
            for other in ctx.responses
        ):
            continue
        action = ctx.trace[position]
        extended = master + (action.input,)
        # Validity: the extended history must be drawn from the inputs
        # invoked before `position`.
        if not elems(extended).issubset(ctx.before[position]):
            continue
        new_state, output = ctx.adt.transition(state, action.input)
        if output != action.output:
            continue
        ctx.witness[position] = extended
        if _search(ctx, extended, new_state, committed | {position}):
            return True
        del ctx.witness[position]

    # Option B: interleave an invocation input without committing (needed
    # for pending invocations whose effect is visible to others, and for
    # commit histories that embed other clients' inputs before their own
    # commit point).  Only inputs still available in the global multiset
    # are candidates, and only while responses remain to be committed.
    for candidate in ctx.available:
        if used.count(candidate) >= ctx.available.count(candidate):
            continue
        extended = master + (candidate,)
        # Prune: at least one uncommitted response must be able to absorb
        # this extension (its `before` multiset must cover it).
        feasible = any(
            position not in committed
            and elems(extended).issubset(ctx.before[position])
            for position in ctx.responses
        )
        if not feasible:
            continue
        new_state, _ = ctx.adt.transition(state, candidate)
        if _search(ctx, extended, new_state, committed):
            return True

    return False


def linearize(
    trace: Trace,
    adt: ADT,
    node_limit: Optional[int] = None,
) -> LinearizationResult:
    """Search for a linearization function for ``trace`` (Definition 5).

    Returns a :class:`LinearizationResult`; on success the witness can be
    re-validated with :func:`check_linearization_function`.  ``node_limit``
    optionally bounds the search (raising :class:`SearchBudgetExceeded`)
    for use in benchmarks.
    """
    if not is_wellformed(trace):
        return LinearizationResult(False, reason="trace is not well-formed")

    responses = _response_positions(trace)
    if not responses:
        return LinearizationResult(True, witness={}, master=())

    for position in responses:
        action = trace[position]
        if not adt.is_input(action.input):
            return LinearizationResult(
                False, reason=f"invalid ADT input at index {position}"
            )

    before = {
        position: elems(inputs(trace, position)) for position in responses
    }
    available = elems(
        [a.input for a in trace if isinstance(a, Invocation)]
    )
    ctx = _SearchContext(
        trace=trace,
        adt=adt,
        responses=responses,
        inv_pos=invocation_positions(trace),
        before=before,
        available=available,
        node_limit=node_limit,
    )
    if _search(ctx, (), adt.initial_state, frozenset()):
        witness = dict(ctx.witness)
        master = max(witness.values(), key=len) if witness else ()
        return LinearizationResult(True, witness=witness, master=master)
    return LinearizationResult(
        False, reason="no linearization function exists"
    )


def is_linearizable(
    trace: Trace, adt: ADT, node_limit: Optional[int] = None
) -> bool:
    """Boolean convenience wrapper around :func:`linearize`."""
    return linearize(trace, adt, node_limit=node_limit).ok


def lin_trace_property_contains(trace: Trace, adt: ADT) -> bool:
    """Membership test for the ``Lin_T`` trace property (Section 4.6).

    ``Traces(Lin_T)`` is the set of all traces in ``sigT`` satisfying
    linearizability; a system ``S`` implements the ADT iff the projection
    of its traces onto ``sigT`` all pass this test.
    """
    for action in trace:
        if isinstance(action, Invocation):
            if not adt.is_input(action.input):
                return False
        elif isinstance(action, Response):
            if not adt.is_input(action.input) or not adt.is_output(
                action.output
            ):
                return False
        else:
            return False  # switch actions are not in sigT
    return is_linearizable(trace, adt)
