"""The paper's new definition of linearizability (Section 4, Defs 5-15).

A trace ``t`` is linearizable iff it is well-formed and admits a
*linearization function* ``g`` mapping each response index to a *commit
history* (a sequence of ADT inputs) such that:

* **Explains** (Def. 7):  ``out = f_T(g(i))`` for each response at ``i``;
* **Validity** (Defs 10/11): ``elems(g(i))`` is included in the multiset of
  inputs invoked before ``i``, and ``g(i)`` ends with the responding
  client's input;
* **Commit Order** (Def. 12): commit histories form a chain under the
  *strict* prefix order;
* **Real-Time Order** (repair, see below): if the response at commit
  index ``i`` occurs before the *invocation* answered at commit index
  ``j``, then ``g(i)`` is a strict prefix of ``g(j)``.

The last condition does not appear in the paper's Definition 6, but it is
necessary for Theorem 1 (equivalence with classical linearizability) to
hold: without it, the trace ``[inv(w, write(2)), res(w, ok),
inv(r, read), res(r, value=None)]`` — a read invoked *after* a completed
write returning the pre-write value — admits a linearization function
(commit the read's singleton history first, then embed it under the
write's), yet it is rejected by the classical definition, which preserves
the order of non-overlapping operations (Definition 44).  The appendix's
Lemma 4 proof implicitly uses this property when it claims the
constructed reordering is a classical witness.  The test-suite carries
the counterexample (``test_equivalence.py``) and checks that, with the
repair, the two complete checkers agree over large random trace
families.

Two artifacts live here:

1. :func:`check_linearization_function` — verifies a user-supplied ``g``
   against the definition (the definition made executable);
2. :func:`linearize` / :func:`is_linearizable` — a complete search for a
   witness ``g``.  Commit Order means all commit histories are prefixes of
   a single master history, so the search builds that master history left
   to right: at each step it either *commits* a not-yet-explained response
   (appending its input and checking Explains + Validity) or *interleaves*
   the input of another invocation (e.g. one that remains pending).  The
   search is exponential in the worst case — linearizability checking is
   NP-hard — but three engine-level optimizations keep it fast far beyond
   the trace sizes the tests use:

   * **incremental counters** — Validity is decided in O(1) per candidate
     by tracking, per input, how many copies the master history has
     consumed and the trace position at which the next copy becomes
     available, instead of rebuilding an ``elems`` multiset at every step;
   * **state caching** (Lowe-style) — the memo key is
     ``(ADT state, committed set, consumed-input counts)`` rather than the
     full master history: two masters that are permutations of each other
     reaching the same ADT state are explored once;
   * **a cheap pre-pass** (:func:`prepass_reject`) rejects traces that
     fail locally-checkable necessary conditions — Explains on forced
     singleton commit histories, and consistency of the must-commit-before
     order — without entering the exponential search at all.

   Search effort is bounded two ways: ``node_limit`` raises
   :class:`SearchBudgetExceeded` (the legacy contract used by the fault
   campaigns), while ``state_limit`` bounds the memo table and makes the
   checker report ``unknown`` (see :class:`LinearizationResult`) instead
   of thrashing — the caller can then retry with a bigger budget or treat
   the run as inconclusive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .actions import Input, Invocation, Response
from .adt import ADT, History
from .multisets import elems
from .sequences import is_strict_prefix
from .traces import Trace, inputs, is_wellformed


@dataclass(frozen=True, slots=True)
class LinearizationResult:
    """Outcome of a linearizability check.

    ``ok`` is the verdict; on success ``witness`` maps each response index
    (0-based position in the trace) to its commit history, and ``master``
    is the longest commit history (the full linearization).  On failure
    ``reason`` holds a human-readable explanation.  ``unknown`` is set
    when the search gave up against an explicit ``state_limit`` budget
    rather than proving non-linearizability: ``ok`` is False but the
    verdict is *inconclusive*, not a violation.
    """

    ok: bool
    witness: Optional[Mapping[int, History]] = None
    master: Optional[History] = None
    reason: str = ""
    unknown: bool = False

    def __bool__(self) -> bool:
        return self.ok


def _response_positions(trace: Trace) -> List[int]:
    return [
        i for i, a in enumerate(trace.actions) if isinstance(a, Response)
    ]


def invocation_positions(trace: Trace) -> Dict[int, int]:
    """Map each response position to the position where its operation
    *started*.

    An operation starts at its invocation, or — in a phase trace whose
    clients enter via an init switch — at that switch.  Crucially, a
    switch occurring while the client's operation is already open (the
    pass-through of a composed trace) does **not** restart the
    operation: the pending invocation travels across the phase boundary,
    so the operation still spans from the original invocation.  Treating
    the switch as a fresh start would manufacture real-time edges against
    operations that completed mid-flight, wrongly rejecting composed
    traces (caught by the exhaustive sweep in ``test_enumeration.py``).
    """
    from .actions import Switch

    start: Dict[object, int] = {}
    open_now: Dict[object, bool] = {}
    pairing: Dict[int, int] = {}
    for i, action in enumerate(trace.actions):
        if isinstance(action, Invocation):
            start[action.client] = i
            open_now[action.client] = True
        elif isinstance(action, Switch):
            if not open_now.get(action.client, False):
                start[action.client] = i
                open_now[action.client] = True
        elif isinstance(action, Response):
            pairing[i] = start.get(action.client, i)
            open_now[action.client] = False
    return pairing


def _realtime_pairs_ok(
    histories: Dict[int, "History"], inv_pos: Dict[int, int]
) -> Optional[Tuple[int, int]]:
    """Return a violating (i, j) pair, or None if Real-Time Order holds."""
    for i in histories:
        for j in histories:
            if i == j:
                continue
            if i < inv_pos[j]:
                from .sequences import is_strict_prefix as _strict

                if not _strict(histories[i], histories[j]):
                    return (i, j)
    return None


def check_linearization_function(
    trace: Trace,
    g: Mapping[int, Sequence[Input]],
    adt: ADT,
    require_wellformed: bool = True,
) -> LinearizationResult:
    """Verify that ``g`` is a linearization function for ``trace`` (Def. 6).

    ``g`` maps 0-based response positions to histories; positions that are
    not response indices are ignored (the definition only constrains
    commit indices).
    """
    if require_wellformed and not is_wellformed(trace):
        return LinearizationResult(False, reason="trace is not well-formed")

    histories: Dict[int, History] = {}
    for i in _response_positions(trace):
        if i not in g:
            return LinearizationResult(
                False, reason=f"g is undefined at commit index {i}"
            )
        histories[i] = tuple(g[i])

    # Explains (Definition 7) and Validity (Definitions 10-11).
    for i, history in histories.items():
        action = trace[i]
        if not history:
            return LinearizationResult(
                False, reason=f"empty commit history at index {i}"
            )
        if adt.output(history) != action.output:
            return LinearizationResult(
                False,
                reason=(
                    f"g does not explain index {i}: f(g({i})) = "
                    f"{adt.output(history)!r} but output is {action.output!r}"
                ),
            )
        if history[-1] != action.input:
            return LinearizationResult(
                False,
                reason=(
                    f"commit history at {i} does not end with the "
                    f"responding input {action.input!r}"
                ),
            )
        if not elems(history).issubset(elems(inputs(trace, i))):
            return LinearizationResult(
                False,
                reason=(
                    f"commit history at {i} uses inputs not invoked "
                    f"before index {i}"
                ),
            )

    # Commit Order (Definition 12): strict prefix chain over distinct
    # commit indices.
    items = sorted(histories.items(), key=lambda kv: len(kv[1]))
    for (i, h1), (j, h2) in zip(items, items[1:]):
        if not is_strict_prefix(h1, h2):
            return LinearizationResult(
                False,
                reason=(
                    f"commit histories at {i} and {j} violate Commit "
                    f"Order: {h1!r} vs {h2!r}"
                ),
            )

    # Real-Time Order (the repair; see the module docstring).
    violation = _realtime_pairs_ok(histories, invocation_positions(trace))
    if violation is not None:
        i, j = violation
        return LinearizationResult(
            False,
            reason=(
                f"Real-Time Order violated: response at {i} precedes the "
                f"invocation answered at {j} but g({i}) is not a strict "
                f"prefix of g({j})"
            ),
        )

    master = items[-1][1] if items else ()
    return LinearizationResult(True, witness=dict(histories), master=master)


@dataclass
class _SearchContext:
    """Internal state shared across the DFS."""

    trace: Trace
    adt: ADT
    responses: List[int]
    # Position of the invocation answered by each response position.
    inv_pos: Dict[int, int]
    # Trace positions of the invocations of each input, in trace order:
    # the c-th copy of input e becomes available to a commit history at
    # any response position strictly after ``inv_positions[e][c-1]``.
    inv_positions: Dict[Input, Tuple[int, ...]]
    # One cached ADT step function (unvalidated; inputs are pre-checked).
    step: "Callable"
    visited: Set[Tuple[Hashable, FrozenSet[int], FrozenSet]] = field(
        default_factory=set
    )
    witness: Dict[int, History] = field(default_factory=dict)
    # Number of copies of each input consumed by the current master
    # history, maintained incrementally (no per-step multiset rebuilds).
    used: Dict[Input, int] = field(default_factory=dict)
    nodes: int = 0
    node_limit: Optional[int] = None
    state_limit: Optional[int] = None


class SearchBudgetExceeded(RuntimeError):
    """Raised when the linearization search exceeds its node budget."""


class _StateBudgetExceeded(Exception):
    """Internal: the memo table outgrew ``state_limit`` (-> unknown)."""


def _must_precede_cycle(
    responses: Sequence[int], inv_pos: Mapping[int, int]
) -> Optional[Tuple[int, int]]:
    """A cycle in the must-commit-before order, or None.

    ``i`` must commit strictly before ``j`` whenever the response at ``i``
    precedes the invocation answered at ``j`` (the Real-Time Order
    repair).  For positions extracted from an actual trace this order is
    acyclic by construction (``inv_pos[i] <= i`` always), so this check
    is a defensive guard for callers that supply their own pairing — a
    cycle makes the strict-prefix chain impossible, so the search would
    otherwise burn its whole budget proving the obvious.
    """
    for i in responses:
        for j in responses:
            if i != j and i < inv_pos[j] and j < inv_pos[i]:
                return (i, j)
    return None


def prepass_reject(
    trace: Trace,
    adt: ADT,
    responses: Sequence[int],
    inv_pos: Mapping[int, int],
) -> Optional[str]:
    """Locally-checkable necessary conditions, tried before the search.

    Returns a rejection reason, or None when the trace survives.  Two
    families of O(n^2)-cheap checks:

    * **Explains on singleton candidates** — a response preceded by
      exactly one invocation has its commit history forced to the
      singleton of its own input, so Explains can be decided outright;
    * **must-commit-before consistency** — the Real-Time Order repair
      induces a strict order on commit indices; a cycle in it (possible
      only with a caller-supplied pairing) is rejected without search.

    Both are *necessary* conditions: rejecting here never changes the
    verdict, it only skips the exponential search.
    """
    cycle = _must_precede_cycle(responses, inv_pos)
    if cycle is not None:
        i, j = cycle
        return (
            f"must-commit-before order has a cycle between responses "
            f"at {i} and {j}"
        )
    invocations_before = 0
    position_iter = iter(sorted(responses))
    position = next(position_iter, None)
    for index, action in enumerate(trace.actions):
        while position is not None and position == index:
            if invocations_before == 1:
                forced = (trace[position].input,)
                if adt.output(forced) != trace[position].output:
                    return (
                        f"forced singleton history at {position} fails "
                        f"Explains: f({forced!r}) = "
                        f"{adt.output(forced)!r} but output is "
                        f"{trace[position].output!r}"
                    )
            position = next(position_iter, None)
        if isinstance(action, Invocation):
            invocations_before += 1
    return None


def _search(
    ctx: _SearchContext,
    master: History,
    state: Hashable,
    committed: FrozenSet[int],
    max_threshold: int,
) -> bool:
    if len(committed) == len(ctx.responses):
        return True
    # Lowe-style state caching: the subtree verdict depends only on the
    # ADT state, the committed set, and the per-input consumption counts
    # (Validity and feasibility are functions of counts via the
    # availability thresholds) — not on the order of the master history.
    key = (state, committed, frozenset(ctx.used.items()))
    if key in ctx.visited:
        return False
    ctx.visited.add(key)
    if (
        ctx.state_limit is not None
        and len(ctx.visited) > ctx.state_limit
    ):
        raise _StateBudgetExceeded
    ctx.nodes += 1
    if ctx.node_limit is not None and ctx.nodes > ctx.node_limit:
        raise SearchBudgetExceeded(
            f"linearization search exceeded {ctx.node_limit} nodes"
        )

    min_uncommitted = len(ctx.trace)
    max_uncommitted = -1
    for position in ctx.responses:
        if position not in committed:
            if position < min_uncommitted:
                min_uncommitted = position
            if position > max_uncommitted:
                max_uncommitted = position

    used = ctx.used
    step = ctx.step

    # Option A: commit an uncommitted response next.
    for position in ctx.responses:
        if position in committed:
            continue
        # Real-Time Order: a response that occurred before this
        # operation's invocation must already be committed (it must be a
        # strict prefix in the chain, and the DFS commits in chain order).
        if min_uncommitted < ctx.inv_pos[position]:
            continue
        action = ctx.trace[position]
        payload = action.input
        copies = used.get(payload, 0) + 1
        positions = ctx.inv_positions.get(payload, ())
        if copies > len(positions):
            continue
        # Validity in O(1): the extended history fits the inputs invoked
        # before `position` iff every consumed copy was invoked strictly
        # earlier — i.e. the latest availability threshold is < position.
        threshold = positions[copies - 1]
        if threshold < max_threshold:
            threshold = max_threshold
        if threshold >= position:
            continue
        new_state, output = step(state, payload)
        if output != action.output:
            continue
        extended = master + (payload,)
        ctx.witness[position] = extended
        used[payload] = copies
        if _search(
            ctx, extended, new_state, committed | {position}, threshold
        ):
            return True
        if copies > 1:
            used[payload] = copies - 1
        else:
            del used[payload]
        del ctx.witness[position]

    # Option B: interleave an invocation input without committing (needed
    # for pending invocations whose effect is visible to others, and for
    # commit histories that embed other clients' inputs before their own
    # commit point).  Only inputs with unconsumed copies are candidates,
    # and only while some uncommitted response can still absorb them.
    for payload, positions in ctx.inv_positions.items():
        copies = used.get(payload, 0) + 1
        if copies > len(positions):
            continue
        threshold = positions[copies - 1]
        if threshold < max_threshold:
            threshold = max_threshold
        if threshold >= max_uncommitted:
            continue
        new_state, _ = step(state, payload)
        used[payload] = copies
        if _search(
            ctx, master + (payload,), new_state, committed, threshold
        ):
            return True
        if copies > 1:
            used[payload] = copies - 1
        else:
            del used[payload]

    return False


def linearize(
    trace: Trace,
    adt: ADT,
    node_limit: Optional[int] = None,
    state_limit: Optional[int] = None,
) -> LinearizationResult:
    """Search for a linearization function for ``trace`` (Definition 5).

    Returns a :class:`LinearizationResult`; on success the witness can be
    re-validated with :func:`check_linearization_function`.  ``node_limit``
    optionally bounds the search (raising :class:`SearchBudgetExceeded`,
    the legacy contract); ``state_limit`` bounds the memo table instead
    and returns an ``unknown`` result rather than raising, so callers can
    treat a blown budget as inconclusive without exception plumbing.

    All invocation inputs must belong to the ADT's input set: a trace
    containing an invocation outside ``I_T`` is not a trace of ``sigT``
    at all (Section 4.2) and is rejected outright.
    """
    if not is_wellformed(trace):
        return LinearizationResult(False, reason="trace is not well-formed")

    responses = _response_positions(trace)
    inv_positions: Dict[Input, List[int]] = {}
    for index, action in enumerate(trace.actions):
        if isinstance(action, Invocation):
            if not adt.is_input(action.input):
                return LinearizationResult(
                    False, reason=f"invalid ADT input at index {index}"
                )
            inv_positions.setdefault(action.input, []).append(index)
    for position in responses:
        action = trace[position]
        if not adt.is_input(action.input):
            return LinearizationResult(
                False, reason=f"invalid ADT input at index {position}"
            )
    if not responses:
        return LinearizationResult(True, witness={}, master=())

    inv_pos = invocation_positions(trace)
    reason = prepass_reject(trace, adt, responses, inv_pos)
    if reason is not None:
        return LinearizationResult(False, reason=f"pre-pass: {reason}")

    ctx = _SearchContext(
        trace=trace,
        adt=adt,
        responses=responses,
        inv_pos=inv_pos,
        inv_positions={
            payload: tuple(indices)
            for payload, indices in inv_positions.items()
        },
        step=adt.step,
        node_limit=node_limit,
        state_limit=state_limit,
    )
    try:
        found = _search(ctx, (), adt.initial_state, frozenset(), -1)
    except _StateBudgetExceeded:
        return LinearizationResult(
            False,
            unknown=True,
            reason=(
                f"linearization search exceeded the {state_limit}-state "
                f"memo budget; verdict unknown"
            ),
        )
    if found:
        witness = dict(ctx.witness)
        master = max(witness.values(), key=len) if witness else ()
        return LinearizationResult(True, witness=witness, master=master)
    return LinearizationResult(
        False, reason="no linearization function exists"
    )


# ---------------------------------------------------------------------------
# Incremental (streaming) frontier search
# ---------------------------------------------------------------------------

#: One speculative linearization state of a live stream: the ADT state
#: reached by the operations linearized so far, plus the *promises* —
#: operations linearized ahead of their responses, each carrying the
#: output its eventual response must produce.  A frontier is a set of
#: these; the stream is linearizable so far iff the set is non-empty.
FrontierConfig = Tuple[Hashable, FrozenSet[Tuple[Hashable, Hashable]]]


class FrontierBudgetExceeded(Exception):
    """A single :func:`frontier_step` outgrew its node budget.

    The streaming analogue of ``state_limit``: callers treat it as an
    *unknown* verdict (the monitor degrades instead of thrashing), never
    as a violation.
    """


def initial_frontier(adt: ADT) -> FrozenSet[FrontierConfig]:
    """The frontier of the empty stream: initial state, no promises."""
    return frozenset({(adt.initial_state, frozenset())})


def frontier_step(
    step: "Callable",
    configs: FrozenSet[FrontierConfig],
    open_inputs: Mapping[Hashable, Input],
    respond_id: Hashable,
    output: Hashable,
    node_limit: Optional[int] = None,
) -> FrozenSet[FrontierConfig]:
    """Advance a linearization frontier past one response event.

    This is the incremental version of :func:`linearize`'s search, in the
    just-in-time style (Lowe): invocations merely open operations; all
    search effort happens at responses.  ``open_inputs`` maps the ids of
    the currently-open operations (invoked, not yet responded) to their
    ADT inputs, including ``respond_id`` — the operation whose response
    carrying ``output`` just arrived.  For each configuration the step
    explores every way to linearize a (possibly empty) sequence of other
    open operations speculatively — recording each one's output as a
    promise to be checked against its own later response — culminating
    in ``respond_id`` itself, whose output must equal ``output`` *now*.
    Configurations in which ``respond_id`` was already speculatively
    linearized survive iff the promised output matches.

    Deferring further linearizations to later response events loses no
    completeness: an open operation stays available for linearization at
    every later event up to its own response, so any witness order can
    be replayed lazily.  Real-time order is inherent — an operation can
    only be linearized between its invocation and its response events.

    Returns the surviving frontier; empty means the stream up to and
    including this response is **not** linearizable.  The decided prefix
    is folded into each configuration's ADT state, which is what lets a
    streaming caller garbage-collect history: memory is the frontier
    plus the open operations, not the trace.

    ``node_limit`` bounds the configurations explored in this one step;
    exceeding it raises :class:`FrontierBudgetExceeded` (verdict
    *unknown*, not a violation).
    """
    respond_input = open_inputs[respond_id]
    survivors: Set[FrontierConfig] = set()
    nodes = 0
    for state, promises in configs:
        already = None
        for op_id, promised in promises:
            if op_id == respond_id:
                already = promised
                break
        if already is not None:
            if already == output:
                survivors.add(
                    (state, promises - {(respond_id, already)})
                )
            # a mismatched promise kills this configuration only; other
            # configurations may still explain the response
            continue
        # DFS over speculative linearizations of other open operations,
        # trying to linearize the responder at every node.
        stack: List[FrontierConfig] = [(state, promises)]
        seen: Set[FrontierConfig] = {(state, promises)}
        while stack:
            base_state, base_promises = stack.pop()
            nodes += 1
            if node_limit is not None and nodes > node_limit:
                raise FrontierBudgetExceeded(
                    f"frontier step exceeded {node_limit} nodes"
                )
            new_state, produced = step(base_state, respond_input)
            if produced == output:
                survivors.add((new_state, base_promises))
            linearized = {op_id for op_id, _ in base_promises}
            for op_id, payload in open_inputs.items():
                if op_id == respond_id or op_id in linearized:
                    continue
                spec_state, spec_out = step(base_state, payload)
                candidate = (
                    spec_state,
                    base_promises | {(op_id, spec_out)},
                )
                if candidate not in seen:
                    seen.add(candidate)
                    stack.append(candidate)
    return frozenset(survivors)


def is_linearizable(
    trace: Trace,
    adt: ADT,
    node_limit: Optional[int] = None,
    state_limit: Optional[int] = None,
) -> bool:
    """Boolean convenience wrapper around :func:`linearize`."""
    return linearize(
        trace, adt, node_limit=node_limit, state_limit=state_limit
    ).ok


def lin_trace_property_contains(trace: Trace, adt: ADT) -> bool:
    """Membership test for the ``Lin_T`` trace property (Section 4.6).

    ``Traces(Lin_T)`` is the set of all traces in ``sigT`` satisfying
    linearizability; a system ``S`` implements the ADT iff the projection
    of its traces onto ``sigT`` all pass this test.
    """
    for action in trace:
        if isinstance(action, Invocation):
            if not adt.is_input(action.input):
                return False
        elif isinstance(action, Response):
            if not adt.is_input(action.input) or not adt.is_output(
                action.output
            ):
                return False
        else:
            return False  # switch actions are not in sigT
    return is_linearizable(trace, adt)
