"""Traces, projections and well-formedness (Sections 3, 4.5, 5.4).

A *trace* is a finite sequence of actions observed at the interface between
a system and its environment.  This module provides:

* the :class:`Trace` wrapper with projection and client sub-traces;
* ``inputs(t, i)`` — the sequence of previous inputs (Definition 9);
* well-formedness of plain object traces (Definitions 13–15);
* well-formedness of speculation-phase traces (Definitions 33–35);
* pending-invocation extraction.

Indexing convention: the paper indexes traces from 1; this implementation
uses Python's 0-based indexing.  Where the paper says "before index i"
(exclusive), we use the slice ``t[:i]`` — the action at position ``i``
itself is excluded, matching ``t|i`` applied at ``i``-1 elements... more
precisely, the paper's ``inputs(t, i)`` collects the inputs of ``t|i``,
i.e. of the first ``i`` actions *including* position ``i`` (1-based).  With
0-based positions, the inputs "previous to index i" are those at positions
``0..i`` inclusive; since position ``i`` is the response/switch itself and
never an invocation when queried, using ``t[:i]`` or ``t[:i+1]`` is
equivalent at every call site; we use ``t[:i]`` throughout.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Tuple

from .actions import (
    Action,
    Client,
    Input,
    Invocation,
    Response,
    Signature,
    Switch,
    client_action_set,
    is_invocation,
    is_response,
    is_switch,
)


class Trace:
    """An immutable finite sequence of actions.

    Supports tuple-like indexing and iteration; all derived views
    (projections, client sub-traces) return new :class:`Trace` objects.
    """

    __slots__ = ("_actions",)

    def __init__(self, actions: Iterable[Action] = ()) -> None:
        self._actions: Tuple[Action, ...] = tuple(actions)

    @property
    def actions(self) -> Tuple[Action, ...]:
        """The underlying action tuple."""
        return self._actions

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self._actions)

    def __getitem__(self, index):
        result = self._actions[index]
        if isinstance(index, slice):
            return Trace(result)
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Trace):
            return self._actions == other._actions
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._actions)

    def __add__(self, other: "Trace") -> "Trace":
        if isinstance(other, Trace):
            return Trace(self._actions + other._actions)
        return Trace(self._actions + tuple(other))

    def __repr__(self) -> str:
        if len(self._actions) <= 8:
            inner = ", ".join(repr(a) for a in self._actions)
            return f"Trace([{inner}])"
        return f"Trace(<{len(self._actions)} actions>)"

    def append(self, action: Action) -> "Trace":
        """Return a new trace with ``action`` appended."""
        return Trace(self._actions + (action,))

    def project(self, keep: Callable[[Action], bool]) -> "Trace":
        """``proj(t, A)`` with ``A`` a membership predicate (Section 3)."""
        return Trace(a for a in self._actions if keep(a))

    def project_signature(self, signature: Signature) -> "Trace":
        """Project onto the actions of a signature."""
        return self.project(signature.contains)

    def clients(self) -> frozenset:
        """The set of clients with at least one action in the trace."""
        return frozenset(a.client for a in self._actions)

    def client_subtrace(self, client: Client) -> "Trace":
        """``sub(t, c)``: the actions of one client (Definition 13).

        All of the client's invocations, responses and switches are kept
        (plain-object form; for the phase form use
        :func:`phase_client_subtrace`).
        """
        return self.project(lambda a: a.client == client)

    def invocations(self) -> "Trace":
        """The subsequence of invocation actions."""
        return self.project(is_invocation)

    def responses(self) -> "Trace":
        """The subsequence of response actions."""
        return self.project(is_response)

    def switches(self) -> "Trace":
        """The subsequence of switch actions."""
        return self.project(is_switch)


def inputs(trace: Trace, index: int) -> Tuple[Input, ...]:
    """``inputs(t, i)``: inputs submitted before position ``index`` (Def. 9).

    Both plain invocations and the pending inputs carried by *init* switch
    actions count as submitted inputs for the purposes of the plain
    linearizability checker only when they are invocation actions; the
    speculative checker accounts for switch-carried inputs separately
    (Definition 25).  Hence this function collects invocation inputs only.
    """
    return tuple(
        a.input for a in trace.actions[:index] if isinstance(a, Invocation)
    )


def all_inputs(trace: Trace) -> Tuple[Input, ...]:
    """All invocation inputs of the trace in order."""
    return inputs(trace, len(trace))


def pending_invocations(trace: Trace) -> List[Invocation]:
    """Invocations with no later matching response or switch by that client.

    A client's invocation is pending if the client performs no response (or
    outgoing switch, in phase traces) after it.  For well-formed traces each
    client has at most one pending invocation.
    """
    last_call: Dict[Client, Invocation] = {}
    completed: Dict[Client, bool] = {}
    for action in trace:
        client = action.client
        if isinstance(action, Invocation):
            last_call[client] = action
            completed[client] = False
        elif isinstance(action, (Response, Switch)):
            completed[client] = True
    return [
        invocation
        for client, invocation in last_call.items()
        if not completed.get(client, True)
    ]


# ---------------------------------------------------------------------------
# Plain well-formedness (Definitions 13-15)
# ---------------------------------------------------------------------------


def is_wellformed_client_subtrace(subtrace: Trace) -> bool:
    """Definition 14: alternating invocation/response, starting with inv.

    The response at position ``i+1`` must answer the invocation at ``i``
    (same input).  An empty sub-trace is well-formed (the client never
    interacted).
    """
    actions = subtrace.actions
    if not actions:
        return True
    if not isinstance(actions[0], Invocation):
        return False
    for i, action in enumerate(actions):
        expected_invocation = i % 2 == 0
        if expected_invocation:
            if not isinstance(action, Invocation):
                return False
        else:
            previous = actions[i - 1]
            if not isinstance(action, Response):
                return False
            if action.input != previous.input:
                return False
    return True


def is_wellformed(trace: Trace) -> bool:
    """Definition 15: every client sub-trace is well-formed."""
    return all(
        is_wellformed_client_subtrace(trace.client_subtrace(client))
        for client in trace.clients()
    )


# ---------------------------------------------------------------------------
# Phase well-formedness (Definitions 33-35)
# ---------------------------------------------------------------------------


def phase_client_subtrace(trace: Trace, m: int, n: int, client: Client) -> Trace:
    """``sub(t, m, n, c)`` (Definition 33).

    Keeps the client's invocations/responses tagged in ``[m..n]`` and its
    switches tagged exactly ``m`` (init) or ``n`` (abort); intermediate
    switch tags are projected away.
    """
    return trace.project(client_action_set(client, m, n))


def is_wellformed_phase_client_subtrace(subtrace: Trace, m: int, n: int) -> bool:
    """Definition 34 for a single client's ``(m, n)`` sub-trace.

    * Each invocation or init switch is immediately followed by a response
      to the same input or an abort switch carrying the same input (or is
      the final, pending action).
    * An abort action can only be the last element.
    * If ``m != 1`` the sub-trace must begin with an init action and contain
      no other init actions.
    * If ``m == 1`` the sub-trace must begin with an invocation and contain
      no init actions at all.
    """
    actions = subtrace.actions
    if not actions:
        return True

    first = actions[0]
    if m != 1:
        if not (isinstance(first, Switch) and first.phase == m):
            return False
    else:
        if not isinstance(first, Invocation):
            return False

    init_count = sum(
        1 for a in actions if isinstance(a, Switch) and a.phase == m
    )
    if m != 1 and init_count != 1:
        return False
    if m == 1 and init_count != 0:
        return False

    for i, action in enumerate(actions):
        is_abort = isinstance(action, Switch) and action.phase == n
        if is_abort and i != len(actions) - 1:
            return False
        opens = isinstance(action, Invocation) or (
            isinstance(action, Switch) and action.phase == m
        )
        if opens and i + 1 < len(actions):
            follower = actions[i + 1]
            if isinstance(follower, Response):
                if follower.input != action.input:
                    return False
            elif isinstance(follower, Switch) and follower.phase == n:
                if follower.input != action.input:
                    return False
            else:
                return False
        closes = isinstance(action, Response) or is_abort
        if closes and i + 1 < len(actions):
            follower = actions[i + 1]
            if not (
                isinstance(follower, Invocation)
                or (isinstance(follower, Switch) and follower.phase == m)
            ):
                return False
    return True


def is_phase_wellformed(trace: Trace, m: int, n: int) -> bool:
    """Definition 35: all ``(m, n)``-client sub-traces are well-formed."""
    return all(
        is_wellformed_phase_client_subtrace(
            phase_client_subtrace(trace, m, n, client), m, n
        )
        for client in trace.clients()
    )


# ---------------------------------------------------------------------------
# Index classification (Definitions 8, 22-24)
# ---------------------------------------------------------------------------


def commit_indices(trace: Trace) -> Tuple[int, ...]:
    """Positions of response actions (commit indices, Definitions 8/22)."""
    return tuple(
        i for i, a in enumerate(trace.actions) if isinstance(a, Response)
    )


def init_indices(trace: Trace, m: int) -> Tuple[int, ...]:
    """Positions of init switch actions, ``swi(_, m, _, _)`` (Def. 23)."""
    return tuple(
        i
        for i, a in enumerate(trace.actions)
        if isinstance(a, Switch) and a.phase == m
    )


def abort_indices(trace: Trace, n: int) -> Tuple[int, ...]:
    """Positions of abort switch actions, ``swi(_, n, _, _)`` (Def. 24)."""
    return tuple(
        i
        for i, a in enumerate(trace.actions)
        if isinstance(a, Switch) and a.phase == n
    )


def is_complete(trace: Trace) -> bool:
    """Definition 39: well-formed with no pending invocations."""
    return is_wellformed(trace) and not pending_invocations(trace)


def strip_phase_tags(trace: Trace) -> Trace:
    """Collapse all phase indices to 1 and drop switch actions.

    This is the projection onto ``acts(sigT)`` used by Theorem 2: viewing a
    composed speculative execution as a plain object execution where the
    phase structure is invisible.  Switch actions do not belong to
    ``sigT`` and are removed; invocation/response actions keep their
    payloads but are re-tagged with phase 1.
    """
    result: List[Action] = []
    for action in trace:
        if isinstance(action, Invocation):
            result.append(Invocation(action.client, 1, action.input))
        elif isinstance(action, Response):
            result.append(
                Response(action.client, 1, action.input, action.output)
            )
    return Trace(result)


def replace_switches_with_invocations(trace: Trace, m: int) -> Trace:
    """Replace init switches by the pending invocation they carry (§2.3).

    Speculative linearizability of a second phase concatenates the init
    prefix with "the trace t where switch calls are replaced by the pending
    invocation they contain".  This helper performs that replacement for
    the init switches (tag ``m``) of a phase trace.
    """
    result: List[Action] = []
    for action in trace:
        if isinstance(action, Switch) and action.phase == m:
            result.append(Invocation(action.client, m, action.input))
        else:
            result.append(action)
    return Trace(result)
