"""The paper's invariants I1-I5 as executable trace monitors (§2.4, §2.5).

The paper proves the example phases speculatively linearizable in two
steps: (1) the algorithm satisfies simple invariants; (2) the invariants
imply speculative linearizability.  This module implements step (1) as
monitors over consensus phase traces, and step (2) constructively — from
a trace satisfying I1-I3 (resp. I4-I5) it builds the witness histories of
the paper's proof, which the tests then validate against the full
Definition 19 checker.

First-phase invariants (Quorum, RCons):

* **I1** — if some client decides ``v`` then every client that switches
  does so with value ``v`` (before or after the decision);
* **I2** — all deciding clients decide the same value;
* **I3** — every decided or switched value was proposed before the
  decision/switch.

Second-phase invariants (Backup, CASCons):

* **I4** — all deciding clients decide the same value;
* **I5** — every decided value is a switch value previously submitted by
  some client.

The monitors are phase-agnostic: they look only at propose inputs, decide
outputs and switch values, so the same code checks the message-passing and
the shared-memory algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Set, Tuple

from .actions import Input, Invocation, Response, Switch
from .adt import decided_value, propose, proposed_value
from .traces import Trace


@dataclass(frozen=True)
class InvariantReport:
    """Result of checking one invariant: verdict plus a violation note."""

    name: str
    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


def _decisions(trace: Trace) -> List[Tuple[int, Hashable, Hashable]]:
    """(index, client, decided value) for every response in the trace."""
    return [
        (i, a.client, decided_value(a.output))
        for i, a in enumerate(trace.actions)
        if isinstance(a, Response)
    ]


def _switches_out(trace: Trace, n: int) -> List[Tuple[int, Hashable, Hashable]]:
    """(index, client, switch value) for every abort switch tagged ``n``."""
    return [
        (i, a.client, a.value)
        for i, a in enumerate(trace.actions)
        if isinstance(a, Switch) and a.phase == n
    ]


def _proposals_before(trace: Trace, index: int) -> Set[Hashable]:
    """Values proposed (via invocation) strictly before ``index``."""
    values: Set[Hashable] = set()
    for a in trace.actions[:index]:
        if isinstance(a, Invocation):
            values.add(proposed_value(a.input))
    return values


def check_i1(trace: Trace, abort_tag: int) -> InvariantReport:
    """I1: a decision value pins every switch value (in either order)."""
    decisions = _decisions(trace)
    if not decisions:
        return InvariantReport("I1", True, "no decisions")
    value = decisions[0][2]
    for index, client, switch_value in _switches_out(trace, abort_tag):
        if switch_value != value:
            return InvariantReport(
                "I1",
                False,
                f"client {client!r} switched with {switch_value!r} at "
                f"{index} but {value!r} was decided",
            )
    return InvariantReport("I1", True)


def check_i2(trace: Trace) -> InvariantReport:
    """I2: all decisions carry the same value."""
    decisions = _decisions(trace)
    values = {v for _, _, v in decisions}
    if len(values) > 1:
        return InvariantReport(
            "I2", False, f"conflicting decisions: {sorted(map(repr, values))}"
        )
    return InvariantReport("I2", True)


def check_i3(trace: Trace, abort_tag: int) -> InvariantReport:
    """I3: decided/switched values were proposed before the event."""
    for index, client, value in _decisions(trace):
        if value not in _proposals_before(trace, index):
            return InvariantReport(
                "I3",
                False,
                f"client {client!r} decided unproposed value {value!r}",
            )
    for index, client, value in _switches_out(trace, abort_tag):
        if value not in _proposals_before(trace, index):
            return InvariantReport(
                "I3",
                False,
                f"client {client!r} switched with unproposed value "
                f"{value!r}",
            )
    return InvariantReport("I3", True)


def check_i4(trace: Trace) -> InvariantReport:
    """I4: all decisions carry the same value (second phase)."""
    report = check_i2(trace)
    return InvariantReport("I4", report.ok, report.detail)


def check_i5(trace: Trace, init_tag: int) -> InvariantReport:
    """I5: every decided value is a previously submitted switch value."""
    switch_values: Set[Hashable] = set()
    for index, action in enumerate(trace.actions):
        if isinstance(action, Switch) and action.phase == init_tag:
            switch_values.add(action.value)
        elif isinstance(action, Response):
            value = decided_value(action.output)
            if value not in switch_values:
                return InvariantReport(
                    "I5",
                    False,
                    f"decision {value!r} at {index} matches no prior "
                    f"switch value",
                )
    return InvariantReport("I5", True)


def check_first_phase_invariants(
    trace: Trace, abort_tag: int
) -> List[InvariantReport]:
    """I1, I2, I3 for a first-phase consensus trace."""
    return [
        check_i1(trace, abort_tag),
        check_i2(trace),
        check_i3(trace, abort_tag),
    ]


def check_second_phase_invariants(
    trace: Trace, init_tag: int
) -> List[InvariantReport]:
    """I4, I5 for a second-phase consensus trace."""
    return [check_i4(trace), check_i5(trace, init_tag)]


# ---------------------------------------------------------------------------
# The constructive proofs of Section 2.4 (invariants => witnesses)
# ---------------------------------------------------------------------------


def first_phase_witness_history(trace: Trace) -> Tuple[Input, ...]:
    """The history ``h`` of the paper's proof that I1-I3 imply SLin.

    "Let the history h be such that h starts with winner's proposal and
    the sub-sequence of h starting at position 2 is equal to the
    subsequence of t containing all the proposals of the clients that
    decide and that are not winner."

    Returns the empty history when no client decides.
    """
    decisions = _decisions(trace)
    if not decisions:
        return ()
    value = decisions[0][2]
    deciding_clients = {c for _, c, _ in decisions}

    # The winner: a client that proposed `value` before any decision.  I3
    # guarantees one exists.  Prefer a client that decided (matching the
    # paper's narrative) but accept any proposer of the value.
    first_decision_index = decisions[0][0]
    winner: Optional[Hashable] = None
    for a in trace.actions[:first_decision_index]:
        if isinstance(a, Invocation) and proposed_value(a.input) == value:
            winner = a.client
            if winner in deciding_clients:
                break
    if winner is None:
        raise ValueError("I3 violated: decided value was never proposed")

    history: List[Input] = [propose(value)]
    for a in trace.actions:
        if (
            isinstance(a, Invocation)
            and a.client in deciding_clients
            and a.client != winner
        ):
            history.append(a.input)
    return tuple(history)


def first_phase_commit_histories(trace: Trace) -> dict:
    """Commit histories of the paper's proof: ``h`` truncated per decider.

    "We satisfy our definition of linearizability by associating to each
    decision from a client c the history h truncated just after the
    proposal of c."  Maps response positions to histories.
    """
    h = first_phase_witness_history(trace)
    decisions = _decisions(trace)
    if not decisions:
        return {}
    value = decisions[0][2]
    # Identify, per client, the position of its proposal inside h.
    assignments = {}
    deciding_clients = [c for _, c, _ in decisions]
    # Map clients to cut points in h.  The winner (if deciding) owns
    # position 1; other deciders appear in trace order from position 2 on.
    cut_of_client = {}
    cursor = 1
    ordered_clients: List[Hashable] = []
    for a in trace.actions:
        if isinstance(a, Invocation) and a.client in set(deciding_clients):
            if a.client not in cut_of_client:
                ordered_clients.append(a.client)
    # Rebuild cuts consistently with first_phase_witness_history: the
    # winner's proposal sits at index 0; every other decider's proposal
    # appears in trace order afterwards.
    winner_candidates = [
        a.client
        for a in trace.actions
        if isinstance(a, Invocation) and proposed_value(a.input) == value
    ]
    winner = None
    for candidate in winner_candidates:
        if candidate in set(deciding_clients):
            winner = candidate
            break
    if winner is None and winner_candidates:
        winner = winner_candidates[0]
    cut_of_client[winner] = 1
    for a in trace.actions:
        if (
            isinstance(a, Invocation)
            and a.client in set(deciding_clients)
            and a.client != winner
        ):
            cursor += 1
            cut_of_client[a.client] = cursor
    for index, client, _ in decisions:
        assignments[index] = h[: cut_of_client[client]]
    return assignments


def second_phase_decision_consistent(
    trace: Trace, init_tag: int
) -> bool:
    """Sanity predicate used by the I4/I5 => SLin tests.

    When all switch values agree on ``v``, every decision must be ``v``
    (this is what makes the paper's concatenation argument go through).
    """
    values = {
        a.value
        for a in trace.actions
        if isinstance(a, Switch) and a.phase == init_tag
    }
    decisions = {v for _, _, v in _decisions(trace)}
    if len(values) == 1:
        (value,) = values
        return decisions.issubset({value})
    return True
