"""Actions and signatures (Sections 3, 4.2, 5.1 of the paper).

Three kinds of actions occur at the interface of a concurrent object or a
speculation phase:

* ``inv(c, n, in)``        — client ``c`` invokes input ``in`` at phase ``n``
* ``res(c, n, in, out)``   — client ``c`` receives output ``out`` for its
                             input ``in`` from phase ``n``
* ``swi(c, n, in, v)``     — client ``c`` switches *into* phase ``n``
                             carrying pending input ``in`` and switch value
                             ``v``

The second parameter (the phase index) is what lets a single trace contain
actions of several composed phases: for a phase ``(m, n)``, actions tagged
``m`` through ``n - 1`` are internal invocations/responses, a switch tagged
``m`` is an *init* action (received from the previous phase), and a switch
tagged ``n`` is an *abort* action (emitted toward the next phase).

Plain linearizability (Section 4) uses phase index ``1`` everywhere and no
switch actions; ``sig_T`` below builds that signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

Client = Hashable
Input = Hashable
Output = Hashable
SwitchValue = Hashable


@dataclass(frozen=True, slots=True)
class Invocation:
    """The paper's ``inv(c, n, in)`` action."""

    client: Client
    phase: int
    input: Input

    def __repr__(self) -> str:
        return f"inv({self.client!r}, {self.phase}, {self.input!r})"


@dataclass(frozen=True, slots=True)
class Response:
    """The paper's ``res(c, n, in, out)`` action."""

    client: Client
    phase: int
    input: Input
    output: Output

    def __repr__(self) -> str:
        return (
            f"res({self.client!r}, {self.phase}, {self.input!r}, "
            f"{self.output!r})"
        )


@dataclass(frozen=True, slots=True)
class Switch:
    """The paper's ``swi(c, n, in, v)`` action.

    ``phase`` is the phase the client switches *to*; ``input`` is the
    client's pending input carried across the phase boundary; ``value`` is
    the switch value interpreted through the ``rinit`` relation.
    """

    client: Client
    phase: int
    input: Input
    value: SwitchValue

    def __repr__(self) -> str:
        return (
            f"swi({self.client!r}, {self.phase}, {self.input!r}, "
            f"{self.value!r})"
        )


Action = Any  # Invocation | Response | Switch


def is_invocation(action: Action) -> bool:
    """True iff ``action`` matches ``inv(_, _, _)``."""
    return isinstance(action, Invocation)


def is_response(action: Action) -> bool:
    """True iff ``action`` matches ``res(_, _, _, _)``."""
    return isinstance(action, Response)


def is_switch(action: Action) -> bool:
    """True iff ``action`` matches ``swi(_, _, _, _)``."""
    return isinstance(action, Switch)


def inv(client: Client, phase: int, input: Input) -> Invocation:
    """Shorthand constructor mirroring the paper's notation."""
    return Invocation(client, phase, input)


def res(client: Client, phase: int, input: Input, output: Output) -> Response:
    """Shorthand constructor mirroring the paper's notation."""
    return Response(client, phase, input, output)


def swi(client: Client, phase: int, input: Input, value: SwitchValue) -> Switch:
    """Shorthand constructor mirroring the paper's notation."""
    return Switch(client, phase, input, value)


class Signature:
    """A signature: disjoint sets of input and output actions (Section 3).

    Action sets are typically infinite (one action per client, phase, input,
    output combination), so a signature is represented *intensionally* by
    membership predicates rather than by extensional sets.
    """

    def __init__(
        self,
        is_input: Callable[[Action], bool],
        is_output: Callable[[Action], bool],
        description: str = "",
    ) -> None:
        self._is_input = is_input
        self._is_output = is_output
        self.description = description

    def is_input(self, action: Action) -> bool:
        """True iff ``action`` is an input action of this signature."""
        return self._is_input(action)

    def is_output(self, action: Action) -> bool:
        """True iff ``action`` is an output action of this signature."""
        return self._is_output(action)

    def contains(self, action: Action) -> bool:
        """True iff ``action`` belongs to ``acts(sig)``."""
        return self._is_input(action) or self._is_output(action)

    def __contains__(self, action: Action) -> bool:
        return self.contains(action)

    def __repr__(self) -> str:
        return f"Signature({self.description or 'anonymous'})"


def sig_T(
    valid_input: Optional[Callable[[Input], bool]] = None,
    valid_output: Optional[Callable[[Output], bool]] = None,
) -> Signature:
    """The signature ``sigT`` of a plain concurrent object (Section 4.2).

    Invocation actions are inputs of the object; response actions are
    outputs.  Optional predicates restrict the allowed ADT inputs/outputs;
    by default any payload is accepted, which is what the checkers use
    (they validate payloads against the ADT separately).
    """

    def is_in(action: Action) -> bool:
        if not isinstance(action, Invocation):
            return False
        return valid_input is None or valid_input(action.input)

    def is_out(action: Action) -> bool:
        if not isinstance(action, Response):
            return False
        if valid_input is not None and not valid_input(action.input):
            return False
        return valid_output is None or valid_output(action.output)

    return Signature(is_in, is_out, description="sigT")


def sig_phase(m: int, n: int) -> Signature:
    """The signature ``sigT(m, n, Init)`` of a speculation phase (Def. 16).

    For a phase ``(m, n)`` with ``m < n``:

    * invocations and responses tagged with ``o`` in ``[m..n-1]`` belong
      to the phase (invocations are inputs; responses are outputs) — a
      client that switches to phase ``n`` performs its subsequent
      invocations *in the next phase*, so tag ``n`` operations are not
      owned here.  (Definition 16 writes the range as ``[m..n]``, but
      Lemma 7's decomposition — the ``(m, n)`` client sub-trace ends at
      the abort and the ``(n, o)`` sub-trace starts at the matching init —
      and signature compatibility of adjacent phases both require the
      half-open reading: with a shared tag-``n`` response, ``(m, n)`` and
      ``(n, o)`` would have overlapping outputs and could not compose.)
    * a switch tagged ``m`` is an incoming init action (an input);
    * a switch tagged ``n`` is an outgoing abort action (an output);
    * switches tagged strictly between ``m`` and ``n`` are *internal* to a
      composed phase, classified as outputs (they are produced by the
      sub-phase that aborts) so composition synchronizes on them.
    """
    if not m < n:
        raise ValueError(f"phase bounds must satisfy m < n, got ({m}, {n})")

    def is_in(action: Action) -> bool:
        if isinstance(action, Invocation):
            return m <= action.phase < n
        if isinstance(action, Switch):
            return action.phase == m
        return False

    def is_out(action: Action) -> bool:
        if isinstance(action, Response):
            return m <= action.phase < n
        if isinstance(action, Switch):
            return m < action.phase <= n
        return False

    return Signature(is_in, is_out, description=f"sigT({m},{n})")


def actions_of_client(action: Action) -> Client:
    """The client performing an action (total over the three action kinds)."""
    return action.client


def phase_of(action: Action) -> int:
    """The phase tag of an action."""
    return action.phase


def client_action_set(
    client: Client, m: int, n: int
) -> Callable[[Action], bool]:
    """Membership predicate for ``ActT(c, m, n)`` (Section 5.4).

    Invocations and responses of ``client`` tagged in ``[m..n-1]`` (see
    :func:`sig_phase` for why the range is half-open), plus switch actions
    of ``client`` tagged exactly ``m`` or ``n``.  Switches with
    intermediate tags are excluded — the paper notes they "are projected
    away" when forming client sub-traces.
    """

    def member(action: Action) -> bool:
        if actions_of_client(action) != client:
            return False
        if isinstance(action, (Invocation, Response)):
            return m <= action.phase < n
        if isinstance(action, Switch):
            return action.phase in (m, n)
        return False

    return member


def rename_phase(action: Action, mapping: Callable[[int], int]) -> Action:
    """Re-tag an action's phase index through ``mapping``.

    Used when embedding a stand-alone phase implementation into a larger
    composition (e.g. running the same algorithm as phase 3 instead of 1).
    """
    if isinstance(action, Invocation):
        return Invocation(action.client, mapping(action.phase), action.input)
    if isinstance(action, Response):
        return Response(
            action.client, mapping(action.phase), action.input, action.output
        )
    if isinstance(action, Switch):
        return Switch(
            action.client, mapping(action.phase), action.input, action.value
        )
    raise TypeError(f"not an action: {action!r}")
