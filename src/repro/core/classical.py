"""Classical linearizability* (Appendix A of the paper, Defs 37-46).

This module formalizes the Herlihy-Wing-style definition the paper calls
``linearizable*`` and provides a complete checker for it:

* sequential traces (Def. 37) and agreement with an ADT (Def. 38);
* complete traces and completions (Defs 39-40) — note the paper's
  completion extends the trace with responses for *all* pending
  invocations (pending invocations are not dropped);
* reorderings and preservation of the order of non-overlapping operations
  (Defs 41-44);
* ``linearizable*`` for complete traces (Def. 45) and in general (Def. 46).

The checker is the standard Wing-Gong search: repeatedly pick a *minimal*
operation — one that no other remaining operation finished before —
verify its output against the ADT's output function, and recurse.  Pending
invocations participate with an infinite response time and an
unconstrained output (their completion response is appended at the end of
the trace, so any output the ADT produces is acceptable).

Theorem 1 states this definition is equivalent to the new one in
``linearizability.py``; the test suite checks that equivalence on randomly
generated traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .actions import Input, Invocation, Output, Response
from .adt import ADT
from .traces import Trace, is_wellformed


@dataclass(frozen=True)
class Operation:
    """A (possibly pending) operation extracted from a well-formed trace.

    ``res_index`` is ``math.inf`` for pending operations and ``output`` is
    then ``None`` (unconstrained by Definition 46's completion).
    """

    client: Hashable
    input: Input
    inv_index: int
    res_index: float
    output: Optional[Output]

    @property
    def pending(self) -> bool:
        """True iff the operation has no response in the original trace."""
        return math.isinf(self.res_index)


def extract_operations(trace: Trace) -> List[Operation]:
    """Pair each invocation with its response (or mark it pending).

    Requires a well-formed trace: per client, invocations and responses
    alternate, so pairing is positional.
    """
    open_invocation: Dict[Hashable, Tuple[int, Input]] = {}
    operations: List[Operation] = []
    for index, action in enumerate(trace):
        if isinstance(action, Invocation):
            open_invocation[action.client] = (index, action.input)
        elif isinstance(action, Response):
            inv_index, input = open_invocation.pop(action.client)
            operations.append(
                Operation(
                    client=action.client,
                    input=input,
                    inv_index=inv_index,
                    res_index=index,
                    output=action.output,
                )
            )
    for client, (inv_index, input) in open_invocation.items():
        operations.append(
            Operation(
                client=client,
                input=input,
                inv_index=inv_index,
                res_index=math.inf,
                output=None,
            )
        )
    return operations


# ---------------------------------------------------------------------------
# Definitional artifacts (used directly by tests)
# ---------------------------------------------------------------------------


def is_sequential(trace: Trace) -> bool:
    """Definition 37: alternating inv/res where res(i+1) answers inv(i)."""
    actions = trace.actions
    if len(actions) % 2 != 0:
        # A sequential trace in the paper's appendix pairs every invocation
        # with the immediately following response; an odd-length candidate
        # can still be "sequential" per Def. 37 if it ends in an
        # invocation, but agreement checks (Def. 38) are stated for fully
        # paired traces.  We accept a trailing invocation.
        pass
    for i, action in enumerate(actions):
        if i % 2 == 0:
            if not isinstance(action, Invocation):
                return False
        else:
            previous = actions[i - 1]
            if not isinstance(action, Response):
                return False
            if (
                action.client != previous.client
                or action.input != previous.input
            ):
                return False
    return True


def agrees_with_adt(trace: Trace, adt: ADT) -> bool:
    """Definition 38: each output equals f applied to the inputs so far."""
    if not is_sequential(trace):
        return False
    history: List[Input] = []
    state = adt.initial_state
    for action in trace:
        if isinstance(action, Invocation):
            history.append(action.input)
            state, output = adt.transition(state, action.input)
        else:
            if action.output != output:
                return False
    return True


def is_reordering(candidate: Trace, trace: Trace) -> bool:
    """Definition 41: same length and same multiset of actions.

    A permutation sigma with ``candidate(sigma(i)) = trace(i)`` exists iff
    the two traces contain the same actions with the same multiplicities.
    """
    if len(candidate) != len(trace):
        return False
    from collections import Counter

    return Counter(candidate.actions) == Counter(trace.actions)


def find_permutation(candidate: Trace, trace: Trace) -> Optional[List[int]]:
    """A permutation sigma with ``candidate[sigma[i]] == trace[i]``.

    Among the possibly many permutations (repeated actions), matches
    occurrences in order, which suffices for checking Definition 44 because
    equal actions are interchangeable.
    """
    if len(candidate) != len(trace):
        return None
    slots: Dict[object, List[int]] = {}
    for j, action in enumerate(candidate):
        slots.setdefault(action, []).append(j)
    sigma: List[int] = []
    for action in trace:
        bucket = slots.get(action)
        if not bucket:
            return None
        sigma.append(bucket.pop(0))
    return sigma


def preserves_nonoverlap_order(
    candidate: Trace, trace: Trace, sigma: Sequence[int]
) -> bool:
    """Definition 44 for complete traces.

    For invocation indices ``i, j`` of ``trace``: if the response to ``i``
    precedes ``j`` then ``sigma(i) < sigma(j)``; and each response must
    immediately follow its invocation in the reordering.
    """
    operations = extract_operations(trace)
    for op in operations:
        if op.pending:
            return False  # Definition 44 is stated for complete traces
        if sigma[int(op.res_index)] != sigma[op.inv_index] + 1:
            return False
    for op1 in operations:
        for op2 in operations:
            if op1 is op2:
                continue
            if op1.res_index < op2.inv_index:
                if not sigma[op1.inv_index] < sigma[op2.inv_index]:
                    return False
    return True


def check_classical_witness(
    trace: Trace, candidate: Trace, adt: ADT
) -> bool:
    """Definition 45 made executable for a *complete* trace.

    True iff ``candidate`` agrees with the ADT, is a reordering of
    ``trace`` and preserves the order of non-overlapping operations.
    """
    if not is_reordering(candidate, trace):
        return False
    if not agrees_with_adt(candidate, adt):
        return False
    sigma = find_permutation(candidate, trace)
    if sigma is None:
        return False
    return preserves_nonoverlap_order(candidate, trace, sigma)


# ---------------------------------------------------------------------------
# The Wing-Gong search
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassicalResult:
    """Outcome of a classical linearizability* check.

    On success ``linearization`` is the witness sequential trace (with the
    completion's responses included for pending operations).
    """

    ok: bool
    linearization: Optional[Trace] = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def _search(
    operations: List[Operation],
    remaining: FrozenSet[int],
    state: Hashable,
    adt: ADT,
    order: List[int],
    visited: Set[Tuple[FrozenSet[int], Hashable]],
) -> bool:
    if not remaining:
        return True
    try:
        key = (remaining, state)
        if key in visited:
            return False
        visited.add(key)
    except TypeError:
        pass  # unhashable ADT state: search without memoization

    # The earliest response among remaining operations bounds minimality:
    # an operation is minimal iff it was invoked before every remaining
    # response, i.e. before this bound.
    bound = min(operations[i].res_index for i in remaining)
    for i in sorted(remaining):
        op = operations[i]
        if op.inv_index > bound:
            continue
        new_state, output = adt.transition(state, op.input)
        if op.output is not None and output != op.output:
            continue
        order.append(i)
        if _search(operations, remaining - {i}, new_state, adt, order, visited):
            return True
        order.pop()
    return False


def linearize_classical(trace: Trace, adt: ADT) -> ClassicalResult:
    """Check linearizability* (Definition 46) and return a witness.

    The witness is the sequential trace of a linearizable completion: each
    pending operation appears with the output the ADT assigns it at its
    chosen linearization point.
    """
    if not is_wellformed(trace):
        return ClassicalResult(False, reason="trace is not well-formed")

    operations = extract_operations(trace)
    for op in operations:
        if not adt.is_input(op.input):
            return ClassicalResult(
                False, reason=f"invalid ADT input {op.input!r}"
            )

    order: List[int] = []
    visited: Set[Tuple[FrozenSet[int], Hashable]] = set()
    found = _search(
        operations,
        frozenset(range(len(operations))),
        adt.initial_state,
        adt,
        order,
        visited,
    )
    if not found:
        return ClassicalResult(False, reason="no valid reordering exists")

    actions: List[object] = []
    state = adt.initial_state
    for i in order:
        op = operations[i]
        state, output = adt.transition(state, op.input)
        actions.append(Invocation(op.client, 1, op.input))
        actions.append(Response(op.client, 1, op.input, output))
    return ClassicalResult(True, linearization=Trace(actions))


def is_linearizable_classical(trace: Trace, adt: ADT) -> bool:
    """Boolean wrapper around :func:`linearize_classical`."""
    return linearize_classical(trace, adt).ok
