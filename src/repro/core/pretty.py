"""Human-readable rendering of traces, witnesses and verdicts.

Checker results are only useful if a protocol designer can read them.
This module renders traces as aligned timelines (one column per client),
linearization witnesses as annotated histories, and check results as
short reports — used by the examples and handy in test failures.
"""

from __future__ import annotations

from typing import List, Sequence

from .actions import Invocation, Response, Switch
from .linearizability import LinearizationResult
from .speculative import SpeculativeResult
from .traces import Trace


def describe_action(action) -> str:
    """One compact human-readable cell for an action."""
    if isinstance(action, Invocation):
        return f"inv[{action.phase}] {_payload(action.input)}"
    if isinstance(action, Response):
        return (
            f"res[{action.phase}] {_payload(action.input)} -> "
            f"{_payload(action.output)}"
        )
    if isinstance(action, Switch):
        return (
            f"swi[{action.phase}] {_payload(action.input)} / "
            f"{_payload(action.value)}"
        )
    return repr(action)


def _payload(value) -> str:
    if isinstance(value, tuple) and value and isinstance(value[0], str):
        # Operation-shaped payloads like ("propose", "v1").
        head, *rest = value
        if rest:
            inner = ",".join(str(r) for r in rest)
            return f"{head}({inner})"
        return f"{head}()"
    return str(value)


def format_trace(trace: Trace, title: str = "") -> str:
    """Render a trace as a per-client timeline.

    Each row is one action; columns are clients, so overlap structure is
    visible at a glance::

        #  c1                      c2
        0  inv[1] propose(v1)      .
        1  .                       inv[1] propose(v2)
        2  res[1] ... -> decide(v1).
    """
    clients = sorted(trace.clients(), key=repr)
    if not clients:
        return f"{title}(empty trace)" if title else "(empty trace)"
    width = max(
        24,
        2 + max(
            len(describe_action(a)) for a in trace
        ),
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "#".rjust(3) + "  " + "".join(
        str(c).ljust(width) for c in clients
    )
    lines.append(header)
    for i, action in enumerate(trace):
        cells = []
        for client in clients:
            if action.client == client:
                cells.append(describe_action(action).ljust(width))
            else:
                cells.append(".".ljust(width))
        lines.append(str(i).rjust(3) + "  " + "".join(cells))
    return "\n".join(lines)


def format_history(history: Sequence) -> str:
    """Render an input history compactly."""
    return "[" + ", ".join(_payload(x) for x in history) + "]"


def format_linearization(
    trace: Trace, result: LinearizationResult
) -> str:
    """Render a linearizability verdict with its witness (if any)."""
    lines = [f"linearizable: {result.ok}"]
    if result.ok and result.witness:
        lines.append(f"linearization: {format_history(result.master)}")
        for index in sorted(result.witness):
            action = trace[index]
            lines.append(
                f"  commit @{index} ({action.client}): "
                f"{format_history(result.witness[index])}"
            )
    elif not result.ok:
        lines.append(f"reason: {result.reason}")
    return "\n".join(lines)


def format_speculative(result: SpeculativeResult) -> str:
    """Render a speculative-linearizability verdict."""
    lines = [f"speculatively linearizable: {result.ok}"]
    if result.ok:
        lines.append(
            f"witnesses for {len(result.witnesses)} init interpretation(s)"
        )
        if result.witnesses:
            witness = result.witnesses[0]
            lines.append(
                f"  example init prefix: "
                f"{format_history(witness.init_prefix)}"
            )
            for index in sorted(witness.commit):
                lines.append(
                    f"  commit @{index}: "
                    f"{format_history(witness.commit[index])}"
                )
            for index in sorted(witness.fabort):
                lines.append(
                    f"  abort  @{index}: "
                    f"{format_history(witness.fabort[index])}"
                )
    else:
        lines.append(f"reason: {result.reason}")
        if result.failing_finit is not None:
            lines.append("failing init interpretation:")
            for index in sorted(result.failing_finit):
                lines.append(
                    f"  init @{index}: "
                    f"{format_history(result.failing_finit[index])}"
                )
    return "\n".join(lines)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two multi-line blocks horizontally (report layout helper)."""
    left_lines = left.splitlines() or [""]
    right_lines = right.splitlines() or [""]
    width = max(len(line) for line in left_lines)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        line.ljust(width + gap) + other
        for line, other in zip(left_lines, right_lines)
    )
