"""Fast-path linearizability checking via P-compositionality.

The monolithic search in :mod:`repro.core.linearizability` is NP-hard in
the trace length.  But linearizability is *local* (Herlihy–Wing, §4.3 of
the paper; ``test_locality.py``): a trace over a system of independent
objects is linearizable iff each per-object projection is linearizable.
Horn & Kroening's *P-compositionality* generalizes the observation to
any partition of the operations such that outputs depend only on the
sub-history sharing the partition key — e.g. the keys of a map.  The
pay-off is drastic: one search over ``n`` interleaved operations becomes
``k`` independent searches over ``n/k`` operations each, turning an
exponential into a sum of much smaller exponentials.

An ADT opts in by carrying a :class:`~repro.core.adt.PartitionSpec`
(products built by :func:`~repro.core.adt.product_adt` and the replicated
KV-store ADT do).  The engine:

1. verifies the **whole** trace is well-formed (projections of a
   well-formed trace are well-formed, but not conversely — a client with
   two pending invocations on different keys is ill-formed globally while
   every projection looks fine, so this check cannot be delegated);
2. partitions the trace by the spec's key function, rewriting payloads
   into each component's alphabet;
3. checks every projection independently with the monolithic search;
4. **falls back to the monolithic checker** whenever the trace does not
   fit the declared partition shape (unexpected payloads, switch
   actions, cross-tagged outputs) — the fallback is always sound, a
   missed partition only costs speed.

Soundness of step 3 is exactly the locality theorem: real-time order
between same-key operations is preserved by projection (projection keeps
relative order), and per-key witnesses merge into a global witness
because distinct keys never constrain each other — the trace is a trace
of the product of the components, and the product of linearizable parts
is linearizable.  The equivalence with the monolithic verdict is tested
over random multi-object trace families in ``tests/test_fastcheck.py``,
including a non-local mutant ADT that must force the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .actions import Invocation, Response
from .adt import ADT, PartitionSpec
from .linearizability import LinearizationResult, linearize
from .traces import Trace, is_wellformed

MONOLITHIC = "monolithic"
COMPOSITIONAL = "compositional"


@dataclass(frozen=True)
class CheckReport:
    """Verdict plus how it was obtained.

    ``strategy`` is :data:`COMPOSITIONAL` when the P-compositional
    decomposition applied, :data:`MONOLITHIC` otherwise.  ``parts`` lists
    ``(key, action_count)`` per partition (empty for monolithic runs).
    On a compositional success the result carries no merged witness
    (``witness is None``) — per-part witnesses exist but renumbering them
    into global trace positions is not needed by any caller; the verdict
    and ``unknown`` flag are authoritative.
    """

    result: LinearizationResult
    strategy: str
    parts: Tuple[Tuple[Hashable, int], ...] = ()

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def unknown(self) -> bool:
        return self.result.unknown

    def __bool__(self) -> bool:
        return self.result.ok


class _Unpartitionable(Exception):
    """Internal: the trace does not fit the declared partition shape."""


def route_action(spec: PartitionSpec, action) -> Tuple[Hashable, object]:
    """Key one action and rewrite it into the component's alphabet.

    Returns ``(key, projected_action)``.  Raises (``_Unpartitionable``
    for non-invocation/response actions, or whatever the spec's callables
    raise on payloads they reject) when the action does not fit the
    declared partition shape — :func:`partition_trace` turns that into a
    monolithic fallback, while the streaming monitor turns it into an
    *unknown* verdict (it cannot fall back mid-stream after GC).
    """
    if isinstance(action, Invocation):
        key = spec.key_of(action.input)
        return key, Invocation(
            action.client,
            action.phase,
            spec.project_input(key, action.input),
        )
    if isinstance(action, Response):
        key = spec.key_of(action.input)
        return key, Response(
            action.client,
            action.phase,
            spec.project_input(key, action.input),
            spec.project_output(key, action.output),
        )
    raise _Unpartitionable(action)


def partition_trace(
    trace: Trace, spec: PartitionSpec
) -> Optional[Dict[Hashable, Trace]]:
    """Split ``trace`` into per-key projections, or None when it doesn't fit.

    Every action must be an invocation or a response whose payloads the
    spec can key and project; anything else (switch actions, unexpected
    payload shapes, a response whose output is tagged with a different
    key than its input) makes the whole trace unpartitionable and the
    caller falls back to the monolithic checker.
    """
    parts: Dict[Hashable, List] = {}
    try:
        for action in trace:
            key, projected = route_action(spec, action)
            parts.setdefault(key, []).append(projected)
    except _Unpartitionable:
        return None
    except Exception:
        # The spec's callables reject the payload shape: not partitionable.
        return None
    return {key: Trace(actions) for key, actions in parts.items()}


def check_linearizable(
    trace: Trace,
    adt: ADT,
    node_limit: Optional[int] = None,
    state_limit: Optional[int] = None,
) -> CheckReport:
    """Linearizability with the P-compositional fast path.

    Equivalent to ``linearize(trace, adt, ...)`` in verdict, but when the
    ADT carries a partition spec and the trace fits it, each per-key
    projection is checked independently — the budgets then apply *per
    projection*.  Verdict semantics on decomposed runs: any failing part
    fails the trace (with the offending key in the reason); if no part
    fails but some part blew its ``state_limit``, the whole verdict is
    ``unknown``.
    """
    spec = adt.partition
    if spec is None:
        return CheckReport(
            result=linearize(
                trace, adt, node_limit=node_limit, state_limit=state_limit
            ),
            strategy=MONOLITHIC,
        )

    # Global well-formedness cannot be delegated to the projections (see
    # the module docstring); it is also what the monolithic path checks
    # first, so verdicts stay aligned.
    if not is_wellformed(trace):
        return CheckReport(
            result=LinearizationResult(
                False, reason="trace is not well-formed"
            ),
            strategy=COMPOSITIONAL,
        )

    parts = partition_trace(trace, spec)
    if parts is None:
        return CheckReport(
            result=linearize(
                trace, adt, node_limit=node_limit, state_limit=state_limit
            ),
            strategy=MONOLITHIC,
        )

    shape = tuple(
        (key, len(parts[key])) for key in sorted(parts, key=repr)
    )
    unknown_reason = ""
    for key, _count in shape:
        component = spec.component(key)
        verdict = linearize(
            parts[key],
            component,
            node_limit=node_limit,
            state_limit=state_limit,
        )
        if verdict.unknown:
            unknown_reason = f"partition {key!r}: {verdict.reason}"
            continue
        if not verdict.ok:
            return CheckReport(
                result=LinearizationResult(
                    False, reason=f"partition {key!r}: {verdict.reason}"
                ),
                strategy=COMPOSITIONAL,
                parts=shape,
            )
    if unknown_reason:
        return CheckReport(
            result=LinearizationResult(
                False, unknown=True, reason=unknown_reason
            ),
            strategy=COMPOSITIONAL,
            parts=shape,
        )
    return CheckReport(
        result=LinearizationResult(True),
        strategy=COMPOSITIONAL,
        parts=shape,
    )


def is_linearizable_fast(
    trace: Trace,
    adt: ADT,
    node_limit: Optional[int] = None,
    state_limit: Optional[int] = None,
) -> bool:
    """Boolean convenience wrapper around :func:`check_linearizable`."""
    return check_linearizable(
        trace, adt, node_limit=node_limit, state_limit=state_limit
    ).result.ok
