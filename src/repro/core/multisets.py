"""Multisets as multiplicity functions (Section 3 of the paper).

The paper represents multisets of elements of a set ``E`` by a multiplicity
function ``E -> N`` and defines:

* pointwise-max union    ``(m1 u m2)(e)  = max(m1(e), m2(e))``
* additive union         ``(m1 + m2)(e)  = m1(e) + m2(e)``  (written ⊎)
* inclusion              ``m1 <= m2  iff  for all e, m1(e) <= m2(e)``
* ``elems``              the multiset of elements of a sequence

The distinction between the two unions matters: Definition 25 (initially
valid inputs) uses the pointwise-max union so that the *same* input learned
through several switch values is not double counted, while Definition 26
(valid inputs) adds the inputs actually invoked in the current phase with
the additive union, because those are genuinely distinct invocation events.

The implementation is immutable and hashable so multisets can participate
in memoization keys inside the linearizability checkers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Generic, Iterable, Iterator, Mapping, Sequence, Tuple, TypeVar

E = TypeVar("E")


class Multiset(Generic[E]):
    """An immutable multiset over hashable elements.

    Zero-multiplicity entries are never stored, so two multisets are equal
    iff they contain the same elements with the same multiplicities.
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, items: Iterable[E] = ()) -> None:
        counts: Dict[E, int] = {}
        for item in items:
            counts[item] = counts.get(item, 0) + 1
        self._counts: Dict[E, int] = counts
        self._hash = hash(frozenset(counts.items()))

    @classmethod
    def from_counts(cls, counts: Mapping[E, int]) -> "Multiset[E]":
        """Build a multiset directly from a multiplicity mapping.

        Raises ValueError on negative multiplicities; zero entries are
        dropped.
        """
        result = cls()
        cleaned: Dict[E, int] = {}
        for element, count in counts.items():
            if count < 0:
                raise ValueError(
                    f"negative multiplicity {count!r} for {element!r}"
                )
            if count > 0:
                cleaned[element] = count
        result._counts = cleaned
        result._hash = hash(frozenset(cleaned.items()))
        return result

    def count(self, element: E) -> int:
        """Multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(element, 0)

    def __contains__(self, element: E) -> bool:
        return element in self._counts

    def __iter__(self) -> Iterator[E]:
        """Iterate over distinct elements (not repeated per multiplicity)."""
        return iter(self._counts)

    def items(self) -> Iterator[Tuple[E, int]]:
        """Iterate over (element, multiplicity) pairs."""
        return iter(self._counts.items())

    def elements(self) -> Iterator[E]:
        """Iterate over elements, each repeated by its multiplicity."""
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def __len__(self) -> int:
        """Total number of elements counted with multiplicity."""
        return sum(self._counts.values())

    def support(self) -> frozenset:
        """The set of distinct elements."""
        return frozenset(self._counts)

    def union(self, other: "Multiset[E]") -> "Multiset[E]":
        """Pointwise-max union, the paper's ``m1 u m2`` (Section 3)."""
        counts = dict(self._counts)
        for element, count in other._counts.items():
            if counts.get(element, 0) < count:
                counts[element] = count
        return Multiset.from_counts(counts)

    def sum(self, other: "Multiset[E]") -> "Multiset[E]":
        """Additive union, the paper's ``m1 ⊎ m2``."""
        counts = dict(self._counts)
        for element, count in other._counts.items():
            counts[element] = counts.get(element, 0) + count
        return Multiset.from_counts(counts)

    def issubset(self, other: "Multiset[E]") -> bool:
        """Multiset inclusion: every multiplicity here is <= the other's."""
        return all(
            count <= other._counts.get(element, 0)
            for element, count in self._counts.items()
        )

    def add(self, element: E, count: int = 1) -> "Multiset[E]":
        """Return a new multiset with ``count`` more copies of ``element``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        counts = dict(self._counts)
        counts[element] = counts.get(element, 0) + count
        return Multiset.from_counts(counts)

    def remove(self, element: E, count: int = 1) -> "Multiset[E]":
        """Return a new multiset with ``count`` fewer copies of ``element``.

        Raises KeyError if the multiset does not contain that many copies.
        """
        have = self._counts.get(element, 0)
        if have < count:
            raise KeyError(
                f"cannot remove {count} x {element!r}: only {have} present"
            )
        counts = dict(self._counts)
        counts[element] = have - count
        return Multiset.from_counts(counts)

    def __or__(self, other: "Multiset[E]") -> "Multiset[E]":
        return self.union(other)

    def __add__(self, other: "Multiset[E]") -> "Multiset[E]":
        return self.sum(other)

    def __le__(self, other: "Multiset[E]") -> bool:
        return self.issubset(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{element!r}: {count}" for element, count in sorted(
                self._counts.items(), key=lambda pair: repr(pair[0])
            )
        )
        return f"Multiset({{{inner}}})"

    def to_counter(self) -> Counter:
        """Export as a collections.Counter (a mutable copy)."""
        return Counter(self._counts)


def elems(sequence: Sequence[E]) -> Multiset[E]:
    """The paper's ``elems`` function: the multiset of a sequence's elements.

    ``e in s`` in the paper is ``elems(s)(e) > 0``; here use
    ``element in elems(seq)``.
    """
    return Multiset(sequence)


def union_all(multisets: Iterable[Multiset[E]]) -> Multiset[E]:
    """Pointwise-max union of a family of multisets (big-cup of Def. 25).

    The union of an empty family is the empty multiset.
    """
    result: Multiset[E] = Multiset()
    for multiset in multisets:
        result = result.union(multiset)
    return result


def sum_all(multisets: Iterable[Multiset[E]]) -> Multiset[E]:
    """Additive union of a family of multisets."""
    result: Multiset[E] = Multiset()
    for multiset in multisets:
        result = result.sum(multiset)
    return result
