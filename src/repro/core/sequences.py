"""Sequence utilities from Section 3 of the paper.

The paper models histories and traces as finite sequences.  This module
implements the sequence vocabulary used throughout: prefix tests, strict
prefixes, longest common prefixes, concatenation helpers and projections.

Sequences are represented as plain Python tuples so that they are hashable
and can be used as dictionary keys (linearization caches, automaton states).
All functions accept any sequence type and return tuples.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


def as_tuple(seq: Iterable[T]) -> Tuple[T, ...]:
    """Normalize any iterable to the canonical tuple representation."""
    if isinstance(seq, tuple):
        return seq
    return tuple(seq)


def is_prefix(candidate: Sequence[T], sequence: Sequence[T]) -> bool:
    """Return True iff ``candidate`` is a (non-strict) prefix of ``sequence``.

    This is the paper's "s is a prefix of s' iff there exists s'' such that
    s' = s:::s''" (Section 3); the empty sequence is a prefix of everything
    and every sequence is a prefix of itself.
    """
    if len(candidate) > len(sequence):
        return False
    return all(candidate[i] == sequence[i] for i in range(len(candidate)))


def is_strict_prefix(candidate: Sequence[T], sequence: Sequence[T]) -> bool:
    """Return True iff ``candidate`` is a strict prefix of ``sequence``.

    Strictness requires the suffix ``s''`` to be non-empty, i.e. the
    candidate must be shorter.
    """
    return len(candidate) < len(sequence) and is_prefix(candidate, sequence)


def comparable_by_prefix(left: Sequence[T], right: Sequence[T]) -> bool:
    """Return True iff one sequence is a prefix of the other.

    The Commit Order property (Definition 12 / 30) requires every pair of
    commit histories to be comparable under the prefix order; this predicate
    is the pairwise test.
    """
    return is_prefix(left, right) or is_prefix(right, left)


def longest_common_prefix(
    sequences: Iterable[Sequence[T]],
) -> Tuple[T, ...]:
    """Longest common prefix of a set of sequences (Section 3).

    Following the paper's convention (after Definition 31), the longest
    common prefix of an *empty* collection is the empty sequence.
    """
    iterator = iter(sequences)
    try:
        first = as_tuple(next(iterator))
    except StopIteration:
        return ()
    prefix = list(first)
    for seq in iterator:
        seq = as_tuple(seq)
        limit = min(len(prefix), len(seq))
        i = 0
        while i < limit and prefix[i] == seq[i]:
            i += 1
        del prefix[i:]
        if not prefix:
            break
    return tuple(prefix)


def concat(*sequences: Sequence[T]) -> Tuple[T, ...]:
    """Concatenate sequences (the paper's ``:::`` operator)."""
    result: Tuple[T, ...] = ()
    for seq in sequences:
        result = result + as_tuple(seq)
    return result


def snoc(sequence: Sequence[T], element: T) -> Tuple[T, ...]:
    """Append a single element (the paper's ``s::e`` operator)."""
    return as_tuple(sequence) + (element,)


def take(sequence: Sequence[T], count: int) -> Tuple[T, ...]:
    """The paper's ``s|m``: the prefix of length ``count``.

    ``count`` is clamped to ``[0, len(sequence)]`` so callers may pass the
    trace length itself to mean "the whole trace".
    """
    if count < 0:
        count = 0
    return as_tuple(sequence)[:count]


def project(
    sequence: Sequence[T], keep: Callable[[T], bool]
) -> Tuple[T, ...]:
    """Projection of a sequence onto the elements satisfying ``keep``.

    This implements ``proj(t, A)`` from Section 3 with ``A`` given as a
    membership predicate, which lets callers project onto infinite action
    sets (e.g. "all invocation actions") without materializing them.
    """
    return tuple(element for element in sequence if keep(element))


def project_onto(sequence: Sequence[T], allowed: Iterable[T]) -> Tuple[T, ...]:
    """``proj(t, A)`` with ``A`` given as a concrete finite set."""
    allowed_set = set(allowed)
    return tuple(element for element in sequence if element in allowed_set)


def positions(
    sequence: Sequence[T], keep: Callable[[T], bool]
) -> Tuple[int, ...]:
    """Return the 0-based indices of the elements satisfying ``keep``."""
    return tuple(i for i, element in enumerate(sequence) if keep(element))


def subsequence_at(
    sequence: Sequence[T], indices: Iterable[int]
) -> Tuple[T, ...]:
    """Extract the subsequence at the given (increasing) indices."""
    return tuple(sequence[i] for i in indices)


def chain_sorted(
    histories: Iterable[Sequence[T]],
) -> Optional[Tuple[Tuple[T, ...], ...]]:
    """Sort histories into a prefix chain, or return None if they don't chain.

    Commit Order requires all commit histories of a trace to form a chain
    under the strict prefix order.  Distinct histories in a chain have
    distinct lengths, so sorting by length and verifying adjacent prefix
    relations is a complete test.
    """
    ordered = sorted((as_tuple(h) for h in histories), key=len)
    for previous, current in zip(ordered, ordered[1:]):
        if not is_prefix(previous, current):
            return None
    return tuple(ordered)


def is_prefix_chain(histories: Iterable[Sequence[T]]) -> bool:
    """True iff the histories are totally ordered by the prefix relation."""
    return chain_sorted(histories) is not None


def strictly_chained(histories: Iterable[Sequence[T]]) -> bool:
    """True iff distinct histories are ordered by the *strict* prefix order.

    Unlike :func:`is_prefix_chain`, equal histories are only allowed when
    they are literally the same history; two distinct commit indices must
    map to histories of different lengths (Definition 12).
    """
    ordered = sorted((as_tuple(h) for h in histories), key=len)
    for previous, current in zip(ordered, ordered[1:]):
        if previous == current:
            return False
        if not is_strict_prefix(previous, current):
            return False
    return True
