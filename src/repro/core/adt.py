"""Abstract data types (Section 4.1 of the paper).

Definition 4: an ADT is a triple ``(I, O, f)`` where ``I`` are inputs, ``O``
are disjoint outputs, and ``f : I* -> O`` is an *output function* mapping
each non-empty input history to the output produced by its last input.
Computing ``f`` "amounts to replaying the execution of the state-machine
description", so every concrete ADT here is given as a deterministic state
machine and the history-based output function is derived by folding.

The library includes the paper's running example (consensus, Figure 1 /
Example 1), the universal ADT of Section 6 (identity output function, used
to model generic SMR), and a set of standard concurrent data types used by
the tests and benchmarks: read/write register, FIFO queue, stack, counter,
set, and a compare-and-swap register.

Input and output payloads are plain hashable tuples tagged with operation
names, e.g. ``("propose", v)`` / ``("decide", v)``, so that traces remain
hashable and printable.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional, Sequence, Tuple

Input = Hashable
Output = Hashable
State = Hashable
History = Tuple[Input, ...]

#: bound on the per-ADT memoized transition table (:meth:`ADT.step`).
STEP_CACHE_SIZE = 1 << 16


@dataclass(frozen=True)
class PartitionSpec:
    """A P-compositional decomposition certificate for an ADT.

    Declares that the ADT is (isomorphic to) a product of independent
    per-key components: the output of every operation depends only on the
    sub-history of operations sharing its partition key.  By the locality
    theorem (Herlihy–Wing, §4.3 — reproduced in ``test_locality.py``) a
    trace of such an ADT is linearizable iff each per-key projection is
    linearizable against its component ADT, which is what the fast-path
    engine in :mod:`repro.core.fastcheck` exploits.

    ``key_of(input)`` maps an input payload to its partition key;
    ``component(key)`` builds the per-key ADT; ``project_input`` /
    ``project_output`` rewrite payloads for the component's alphabet (for
    a tagged product they strip the object tag).  Any of the callables
    may raise on payloads outside the declared shape — the engine then
    falls back to the monolithic checker, so an over-narrow spec costs
    speed, never soundness.  Attaching a spec is a *semantic claim*:
    only attach it when the per-key independence genuinely holds.
    """

    key_of: Callable[[Input], Hashable]
    component: Callable[[Hashable], "ADT"]
    project_input: Callable[[Hashable, Input], Input] = (
        lambda key, payload: payload
    )
    project_output: Callable[[Hashable, Output], Output] = (
        lambda key, payload: payload
    )


class ADT:
    """A deterministic abstract data type given as a state machine.

    Subclasses (or direct instances constructed with callables) provide:

    * ``initial_state`` — the state before any input;
    * ``transition(state, input)`` — returns ``(new_state, output)``;
    * ``is_input`` / ``is_output`` — payload validity predicates.

    The paper's output function ``f(history)`` is :meth:`output`.

    ``partition`` optionally carries a :class:`PartitionSpec` declaring a
    per-key product decomposition for the fast-path checker.  :meth:`step`
    is the memoized hot-path transition used by the search engines; it
    skips input validation (callers validate payloads up front) and
    caches ``(state, input) -> (state', output)`` with an LRU bound,
    which is sound because transitions are deterministic pure functions
    over hashable payloads.
    """

    __slots__ = (
        "name",
        "initial_state",
        "_transition",
        "_is_input",
        "_is_output",
        "partition",
        "step",
    )

    def __init__(
        self,
        name: str,
        initial_state: State,
        transition: Callable[[State, Input], Tuple[State, Output]],
        is_input: Callable[[Input], bool],
        is_output: Callable[[Output], bool],
        partition: Optional[PartitionSpec] = None,
    ) -> None:
        self.name = name
        self.initial_state = initial_state
        self._transition = transition
        self._is_input = is_input
        self._is_output = is_output
        self.partition = partition
        self.step = functools.lru_cache(maxsize=STEP_CACHE_SIZE)(transition)

    def transition(self, state: State, input: Input) -> Tuple[State, Output]:
        """One step of the state machine: ``(state', f-output)``."""
        if not self.is_input(input):
            raise ValueError(f"{input!r} is not an input of ADT {self.name}")
        return self._transition(state, input)

    def is_input(self, payload: Input) -> bool:
        """True iff ``payload`` belongs to the input set ``I_T``."""
        return self._is_input(payload)

    def is_output(self, payload: Output) -> bool:
        """True iff ``payload`` belongs to the output set ``O_T``."""
        return self._is_output(payload)

    def run(self, history: Sequence[Input]) -> Tuple[State, Optional[Output]]:
        """Fold the state machine over a history.

        Returns the final state and the output of the last input (``None``
        for the empty history, which has no output in the paper's model).
        """
        state = self.initial_state
        output: Optional[Output] = None
        for input in history:
            state, output = self.transition(state, input)
        return state, output

    def output(self, history: Sequence[Input]) -> Output:
        """The paper's output function ``f_T`` (Definition 4).

        Raises ValueError on the empty history, on which ``f`` is not
        defined.
        """
        if not history:
            raise ValueError(f"f_{self.name} is undefined on the empty history")
        _, out = self.run(history)
        return out

    def __repr__(self) -> str:
        return f"ADT({self.name})"


# ---------------------------------------------------------------------------
# Consensus (Figure 1 / Example 1)
# ---------------------------------------------------------------------------


def propose(value: Hashable) -> Input:
    """The consensus input ``p(v)``."""
    return ("propose", value)


def decide(value: Hashable) -> Output:
    """The consensus output ``d(v)``."""
    return ("decide", value)


def proposed_value(input: Input) -> Hashable:
    """Extract ``v`` from ``p(v)``."""
    tag, value = input
    if tag != "propose":
        raise ValueError(f"not a propose input: {input!r}")
    return value


def decided_value(output: Output) -> Hashable:
    """Extract ``v`` from ``d(v)``."""
    tag, value = output
    if tag != "decide":
        raise ValueError(f"not a decide output: {output!r}")
    return value


def consensus_adt(values: Optional[Iterable[Hashable]] = None) -> ADT:
    """The consensus ADT of Example 1.

    ``f([p(v1), p(v2), ..., p(vn)]) = d(v1)``: the first proposal wins and
    every subsequent proposal receives the same decision.  The state is the
    first proposed value (or None before any proposal).

    If ``values`` is given, inputs are restricted to proposals over that
    set; otherwise any hashable value may be proposed.
    """
    universe = None if values is None else frozenset(values)

    def is_input(payload: Input) -> bool:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return False
        if payload[0] != "propose":
            return False
        return universe is None or payload[1] in universe

    def is_output(payload: Output) -> bool:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return False
        if payload[0] != "decide":
            return False
        return universe is None or payload[1] in universe

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        value = proposed_value(input)
        winner = value if state is None else state
        return winner, decide(winner)

    return ADT("consensus", None, transition, is_input, is_output)


# ---------------------------------------------------------------------------
# Universal ADT (Section 6)
# ---------------------------------------------------------------------------


def universal_adt(
    valid_input: Optional[Callable[[Input], bool]] = None,
) -> ADT:
    """The universal ADT of Section 6.

    "The output function of the universal ADT is the identity function. In
    other words, this ADT responds to an invocation with its full trace, in
    the form of a history."  State = the history so far (a tuple), and the
    output of each input is the extended history.  Any linearizable
    implementation of the universal ADT yields an implementation of an
    arbitrary ADT ``A`` by post-applying ``A``'s output function.
    """

    def is_input(payload: Input) -> bool:
        return valid_input is None or valid_input(payload)

    def is_output(payload: Output) -> bool:
        return isinstance(payload, tuple)

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        history = state + (input,)
        return history, history

    return ADT("universal", (), transition, is_input, is_output)


def apply_adt_to_universal_output(adt: ADT, history_output: Output) -> Output:
    """Turn a universal-ADT response into an ``adt`` response (Section 6).

    Given a linearizable universal object, applying the output function of
    another ADT to its responses implements that ADT.
    """
    return adt.output(history_output)


# ---------------------------------------------------------------------------
# Read/write register
# ---------------------------------------------------------------------------


def reg_read() -> Input:
    """Register input: read the current value."""
    return ("read",)


def reg_write(value: Hashable) -> Input:
    """Register input: write ``value``."""
    return ("write", value)


def register_adt(initial: Hashable = None) -> ADT:
    """An atomic read/write register.

    ``read`` returns ``("value", v)``; ``write`` returns ``("ok",)``.
    """

    def is_input(payload: Input) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] == "read":
            return len(payload) == 1
        if payload[0] == "write":
            return len(payload) == 2
        return False

    def is_output(payload: Output) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        return payload[0] in ("value", "ok")

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        if input[0] == "read":
            return state, ("value", state)
        return input[1], ("ok",)

    return ADT("register", initial, transition, is_input, is_output)


# ---------------------------------------------------------------------------
# FIFO queue
# ---------------------------------------------------------------------------


def enq(value: Hashable) -> Input:
    """Queue input: enqueue ``value``."""
    return ("enq", value)


def deq() -> Input:
    """Queue input: dequeue the oldest value."""
    return ("deq",)


EMPTY: Output = ("empty",)


def queue_adt() -> ADT:
    """An unbounded FIFO queue.

    ``enq`` returns ``("ok",)``; ``deq`` returns ``("value", v)`` or
    ``("empty",)`` when the queue is empty.  State is a tuple of queued
    values, oldest first.
    """

    def is_input(payload: Input) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] == "enq":
            return len(payload) == 2
        if payload[0] == "deq":
            return len(payload) == 1
        return False

    def is_output(payload: Output) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        return payload[0] in ("ok", "value", "empty")

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        if input[0] == "enq":
            return state + (input[1],), ("ok",)
        if not state:
            return state, EMPTY
        return state[1:], ("value", state[0])

    return ADT("queue", (), transition, is_input, is_output)


# ---------------------------------------------------------------------------
# Stack
# ---------------------------------------------------------------------------


def push(value: Hashable) -> Input:
    """Stack input: push ``value``."""
    return ("push", value)


def pop() -> Input:
    """Stack input: pop the most recent value."""
    return ("pop",)


def stack_adt() -> ADT:
    """An unbounded LIFO stack (``pop`` on empty returns ``("empty",)``)."""

    def is_input(payload: Input) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] == "push":
            return len(payload) == 2
        if payload[0] == "pop":
            return len(payload) == 1
        return False

    def is_output(payload: Output) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        return payload[0] in ("ok", "value", "empty")

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        if input[0] == "push":
            return state + (input[1],), ("ok",)
        if not state:
            return state, EMPTY
        return state[:-1], ("value", state[-1])

    return ADT("stack", (), transition, is_input, is_output)


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------


def inc(amount: int = 1) -> Input:
    """Counter input: add ``amount``."""
    return ("inc", amount)


def counter_read() -> Input:
    """Counter input: read the current count."""
    return ("cread",)


def counter_adt() -> ADT:
    """A fetch-and-add counter: ``inc`` returns the *previous* value."""

    def is_input(payload: Input) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] == "inc":
            return len(payload) == 2 and isinstance(payload[1], int)
        if payload[0] == "cread":
            return len(payload) == 1
        return False

    def is_output(payload: Output) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "count"
        )

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        if input[0] == "inc":
            return state + input[1], ("count", state)
        return state, ("count", state)

    return ADT("counter", 0, transition, is_input, is_output)


# ---------------------------------------------------------------------------
# Set
# ---------------------------------------------------------------------------


def set_add(value: Hashable) -> Input:
    """Set input: insert ``value``; output reports prior membership."""
    return ("add", value)


def set_remove(value: Hashable) -> Input:
    """Set input: remove ``value``; output reports prior membership."""
    return ("remove", value)


def set_contains(value: Hashable) -> Input:
    """Set input: membership query."""
    return ("contains", value)


def set_adt() -> ADT:
    """A mathematical set with add/remove/contains.

    All operations answer ``("bool", b)`` where ``b`` reflects membership
    before the operation (for add/remove) or current membership (contains).
    """

    def is_input(payload: Input) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] in ("add", "remove", "contains")
        )

    def is_output(payload: Output) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "bool"
        )

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        op, value = input
        member = value in state
        if op == "add":
            return state | frozenset([value]), ("bool", member)
        if op == "remove":
            return state - frozenset([value]), ("bool", member)
        return state, ("bool", member)

    return ADT("set", frozenset(), transition, is_input, is_output)


# ---------------------------------------------------------------------------
# Compare-and-swap register
# ---------------------------------------------------------------------------


def cas(expected: Hashable, new: Hashable) -> Input:
    """CAS input: if current == expected, set to new; return prior value."""
    return ("cas", expected, new)


def cas_read() -> Input:
    """CAS-register input: read the current value."""
    return ("casread",)


def cas_register_adt(initial: Hashable = None) -> ADT:
    """A compare-and-swap register; ``cas`` returns the *previous* value.

    This mirrors the hardware CAS used by CASCons (Figure 3), where
    ``CAS(D, bottom, val)`` returns the value that wins the race.
    The modelled return convention: the returned payload is
    ``("value", v)`` where ``v`` is the register's value *after* the
    operation — i.e. the winning value — matching Figure 3's use of the CAS
    result as the decision.
    """

    def is_input(payload: Input) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] == "cas":
            return len(payload) == 3
        if payload[0] == "casread":
            return len(payload) == 1
        return False

    def is_output(payload: Output) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "value"
        )

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        if input[0] == "casread":
            return state, ("value", state)
        _, expected, new = input
        if state == expected:
            return new, ("value", new)
        return state, ("value", state)

    return ADT("cas_register", initial, transition, is_input, is_output)


# ---------------------------------------------------------------------------
# Product ADTs (inter-object composition / locality)
# ---------------------------------------------------------------------------


def product_adt(components: "dict") -> ADT:
    """The product of named ADTs: the system of independent objects.

    Linearizability's *locality* ("a system composed of linearizable
    objects is itself linearizable", Section 4.3 / [Herlihy-Wing]) is a
    statement about exactly this ADT: inputs are ``(name, inner_input)``,
    outputs ``(name, inner_output)``, and each component evolves
    independently.  The tests use it to exercise inter-object
    composition, the classical counterpart of the paper's intra-object
    composition.
    """
    components = dict(components)
    names = tuple(sorted(components, key=repr))
    index_of = {name: index for index, name in enumerate(names)}

    def is_input(payload: Input) -> bool:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return False
        name, inner = payload
        return name in components and components[name].is_input(inner)

    def is_output(payload: Output) -> bool:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return False
        name, inner = payload
        return name in components and components[name].is_output(inner)

    def transition(state: State, input: Input) -> Tuple[State, Output]:
        name, inner = input
        index = index_of[name]
        inner_state, inner_out = components[name].transition(
            state[index], inner
        )
        new_state = state[:index] + (inner_state,) + state[index + 1 :]
        return new_state, (name, inner_out)

    def key_of(payload: Input) -> Hashable:
        name, _inner = payload
        if name not in components:
            raise KeyError(name)
        return name

    def project_in(key: Hashable, payload: Input) -> Input:
        name, inner = payload
        if name != key:
            raise ValueError(f"payload {payload!r} is not tagged {key!r}")
        return inner

    def project_out(key: Hashable, payload: Output) -> Output:
        name, inner = payload
        if name != key:
            raise ValueError(f"output {payload!r} is not tagged {key!r}")
        return inner

    initial = tuple(components[name].initial_state for name in names)
    label = "x".join(str(components[name].name) for name in names)
    # Components evolve independently by construction, so the product
    # carries its own P-compositional certificate: key = the object tag.
    spec = PartitionSpec(
        key_of=key_of,
        component=components.__getitem__,
        project_input=project_in,
        project_output=project_out,
    )
    return ADT(
        f"product({label})",
        initial,
        transition,
        is_input,
        is_output,
        partition=spec,
    )


def tag_object(name: Hashable, payload: Input) -> Input:
    """Tag an inner payload with its object name for a product ADT."""
    return (name, payload)
