"""One-call verification reports for composed speculative executions.

The individual checkers answer narrow questions; a protocol designer
running a deployment wants the whole battery at once.  ``verify_phases``
takes a recorded composed trace and runs, per phase boundary and for the
composition:

* phase well-formedness;
* speculative linearizability of every phase projection;
* the composition-theorem check on every adjacent split;
* Theorem 2 (the plain projection is linearizable);
* the consensus invariants I1-I5 where the ADT is consensus-shaped.

The result is a structured :class:`VerificationReport` with a formatted
text rendering, used by the examples and suitable for CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .actions import sig_phase
from .adt import ADT
from .composition import check_composition_theorem, check_theorem_2
from .linearizability import is_linearizable
from .speculative import RInit, is_speculatively_linearizable
from .traces import Trace, is_phase_wellformed, strip_phase_tags


@dataclass
class CheckLine:
    """One named check with its verdict and an optional note."""

    name: str
    ok: bool
    note: str = ""


@dataclass
class VerificationReport:
    """The battery's outcome; truthy iff every check passed."""

    lines: List[CheckLine] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every check passed."""
        return all(line.ok for line in self.lines)

    def __bool__(self) -> bool:
        return self.ok

    def add(self, name: str, ok: bool, note: str = "") -> None:
        """Append one check outcome."""
        self.lines.append(CheckLine(name, ok, note))

    def failures(self) -> List[CheckLine]:
        """The failed checks."""
        return [line for line in self.lines if not line.ok]

    def render(self) -> str:
        """Human-readable multi-line rendering."""
        rows = []
        for line in self.lines:
            mark = "PASS" if line.ok else "FAIL"
            note = f"  ({line.note})" if line.note else ""
            rows.append(f"[{mark}] {line.name}{note}")
        verdict = "ALL CHECKS PASSED" if self.ok else "CHECKS FAILED"
        return "\n".join(rows + [verdict])


def verify_phases(
    trace: Trace,
    boundaries: Sequence[int],
    adt: ADT,
    rinit: RInit,
    check_invariants: bool = False,
) -> VerificationReport:
    """Run the full battery on a composed trace.

    ``boundaries`` lists the phase indices, e.g. ``[1, 2, 3]`` for a
    two-phase object spanning ``(1, 3)`` with the switch boundary at 2,
    or ``[1, 2, 3, 4]`` for three phases.  The first and last entries
    delimit the whole object.
    """
    if len(boundaries) < 2:
        raise ValueError("need at least two phase boundaries")
    m, o = boundaries[0], boundaries[-1]
    report = VerificationReport()

    report.add(
        f"trace is ({m},{o})-well-formed",
        is_phase_wellformed(trace, m, o),
    )

    for lo, hi in zip(boundaries, boundaries[1:]):
        projection = trace.project(sig_phase(lo, hi).contains)
        report.add(
            f"phase ({lo},{hi}) is SLin",
            is_speculatively_linearizable(projection, lo, hi, adt, rinit),
            note=f"{len(projection)} actions",
        )

    for split in boundaries[1:-1]:
        ok, why = check_composition_theorem(trace, m, split, o, adt, rinit)
        report.add(f"Theorem 5 at split {split}", ok, note=why)

    ok, why = check_theorem_2(trace, o, adt, rinit)
    report.add("Theorem 2 projection", ok, note=why)

    report.add(
        "plain projection linearizable",
        is_linearizable(strip_phase_tags(trace), adt),
    )

    if check_invariants:
        from .invariants import (
            check_first_phase_invariants,
            check_second_phase_invariants,
        )

        first = trace.project(
            sig_phase(boundaries[0], boundaries[1]).contains
        )
        for outcome in check_first_phase_invariants(first, boundaries[1]):
            report.add(
                f"{outcome.name} on phase "
                f"({boundaries[0]},{boundaries[1]})",
                outcome.ok,
                note=outcome.detail,
            )
        if len(boundaries) >= 3:
            second = trace.project(
                sig_phase(boundaries[1], boundaries[2]).contains
            )
            for outcome in check_second_phase_invariants(
                second, boundaries[1]
            ):
                report.add(
                    f"{outcome.name} on phase "
                    f"({boundaries[1]},{boundaries[2]})",
                    outcome.ok,
                    note=outcome.detail,
                )

    return report
