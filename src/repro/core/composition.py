"""Intra-object composition of speculation phases (Sections 5.6, App. C).

Theorem 3/5: if ``S1 |= SLin(m,n)`` and ``S2 |= SLin(n,o)`` then
``proj(S1 ‖ S2, sigT(m,o)) |= SLin(m,o)``.

At trace level, composing two phases means interleaving a trace of phase
``(m, n)`` with a trace of phase ``(n, o)`` such that the *shared* actions
— the switches tagged ``n``, which are aborts of the first phase and inits
of the second — occur exactly once and project back correctly into each
component.  This module provides:

* :func:`shared_actions` / :func:`components_compatible` — the
  synchronization discipline;
* :func:`interleavings` / :func:`random_interleaving` — enumerate or
  sample composed traces of two component traces;
* :func:`decompose` — recover the component projections of a composed
  trace;
* :func:`check_composition_theorem` — the executable statement of
  Theorem 5 for one composed trace: *if* both projections satisfy
  speculative linearizability *then* so does the composition.

The test-suite and ``benchmarks/bench_composition.py`` run this check over
systematically generated and randomly simulated traces; a single
counterexample would falsify the reproduction.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from .actions import Action, Switch, sig_phase
from .adt import ADT
from .linearizability import is_linearizable
from .speculative import RInit, is_speculatively_linearizable
from .traces import Trace, strip_phase_tags


def shared_actions(trace: Trace, n: int) -> Tuple[Action, ...]:
    """The switch actions tagged ``n`` — the synchronization alphabet."""
    return tuple(
        a for a in trace if isinstance(a, Switch) and a.phase == n
    )


def components_compatible(t_mn: Trace, t_no: Trace, n: int) -> bool:
    """True iff the two phase traces agree on their shared actions.

    Composition synchronizes the first phase's aborts with the second
    phase's inits: both components must contain the same sequence of
    switch actions tagged ``n``, in the same order.
    """
    return shared_actions(t_mn, n) == shared_actions(t_no, n)


def decompose(trace: Trace, m: int, n: int, o: int) -> Tuple[Trace, Trace]:
    """Project a composed trace back onto its two phase signatures."""
    sig1 = sig_phase(m, n)
    sig2 = sig_phase(n, o)
    return (
        trace.project(sig1.contains),
        trace.project(sig2.contains),
    )


def interleavings(
    t_mn: Trace,
    t_no: Trace,
    n: int,
    limit: Optional[int] = None,
) -> Iterator[Trace]:
    """Enumerate composed traces of two compatible phase traces.

    A composed trace merges the two components preserving each one's
    internal order, with each shared (tag-``n``) switch contributed once.
    ``limit`` caps the number of interleavings yielded.
    """
    if not components_compatible(t_mn, t_no, n):
        return

    a = t_mn.actions
    b = t_no.actions
    produced = 0

    def is_shared(action: Action) -> bool:
        return isinstance(action, Switch) and action.phase == n

    def merge(i: int, j: int, acc: List[Action]) -> Iterator[Trace]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if i == len(a) and j == len(b):
            produced += 1
            yield Trace(acc)
            return
        # Synchronized step: both components are at the same shared action.
        if (
            i < len(a)
            and j < len(b)
            and is_shared(a[i])
            and is_shared(b[j])
            and a[i] == b[j]
        ):
            acc.append(a[i])
            yield from merge(i + 1, j + 1, acc)
            acc.pop()
            return
        # Independent step from the first component.
        if i < len(a) and not is_shared(a[i]):
            acc.append(a[i])
            yield from merge(i + 1, j, acc)
            acc.pop()
        # Independent step from the second component.
        if j < len(b) and not is_shared(b[j]):
            acc.append(b[j])
            yield from merge(i, j + 1, acc)
            acc.pop()

    yield from merge(0, 0, [])


def random_interleaving(
    t_mn: Trace, t_no: Trace, n: int, rng: random.Random
) -> Optional[Trace]:
    """Sample one composed trace uniformly-ish by random merge choices."""
    if not components_compatible(t_mn, t_no, n):
        return None

    def is_shared(action: Action) -> bool:
        return isinstance(action, Switch) and action.phase == n

    a = list(t_mn.actions)
    b = list(t_no.actions)
    i = j = 0
    acc: List[Action] = []
    while i < len(a) or j < len(b):
        choices = []
        if (
            i < len(a)
            and j < len(b)
            and is_shared(a[i])
            and is_shared(b[j])
            and a[i] == b[j]
        ):
            choices.append("sync")
        if i < len(a) and not is_shared(a[i]):
            choices.append("a")
        if j < len(b) and not is_shared(b[j]):
            choices.append("b")
        if not choices:
            return None  # blocked: one side waits at a shared action
        pick = rng.choice(choices)
        if pick == "sync":
            acc.append(a[i])
            i += 1
            j += 1
        elif pick == "a":
            acc.append(a[i])
            i += 1
        else:
            acc.append(b[j])
            j += 1
    return Trace(acc)


def check_composition_theorem(
    trace: Trace,
    m: int,
    n: int,
    o: int,
    adt: ADT,
    rinit: RInit,
) -> Tuple[bool, str]:
    """The executable statement of Theorem 5 on one composed trace.

    Returns ``(True, reason)`` when the implication holds (either a
    premise fails, with the reason saying which, or the conclusion holds)
    and ``(False, reason)`` when both premises hold but the conclusion
    fails — a counterexample to the theorem.
    """
    t_mn, t_no = decompose(trace, m, n, o)
    if not is_speculatively_linearizable(t_mn, m, n, adt, rinit):
        return True, "premise fails: t_mn not SLin(m,n)"
    if not is_speculatively_linearizable(t_no, n, o, adt, rinit):
        return True, "premise fails: t_no not SLin(n,o)"
    if is_speculatively_linearizable(trace, m, o, adt, rinit):
        return True, "composition is SLin(m,o)"
    return False, "COUNTEREXAMPLE: premises hold but composition fails"


def check_theorem_2(trace: Trace, m: int, adt: ADT, rinit: RInit) -> Tuple[bool, str]:
    """Theorem 2: ``proj(SLin(1, m), acts(sigT)) = Lin``.

    For a trace satisfying SLin(1, m), the projection onto plain
    invocation/response actions must be linearizable.  (The converse
    inclusion — every linearizable trace arises as such a projection — is
    witnessed by taking the trace itself with no switches.)
    """
    if not is_speculatively_linearizable(trace, 1, m, adt, rinit):
        return True, "premise fails: trace not SLin(1,m)"
    projected = strip_phase_tags(trace)
    if is_linearizable(projected, adt):
        return True, "projection is linearizable"
    return False, "COUNTEREXAMPLE: SLin(1,m) trace projects to non-Lin trace"
