"""Core trace theory of *Speculative Linearizability* (PLDI 2012).

This package contains the executable form of the paper's Sections 3-5 and
Appendices A-C: sequences and multisets, actions and traces, abstract data
types, the new and the classical definitions of linearizability with
complete checkers, speculative linearizability, trace properties with
composition, and the invariants of the worked examples.
"""

from .actions import (
    Invocation,
    Response,
    Signature,
    Switch,
    inv,
    res,
    sig_T,
    sig_phase,
    swi,
)
from .adt import (
    ADT,
    PartitionSpec,
    cas_register_adt,
    consensus_adt,
    counter_adt,
    decide,
    product_adt,
    propose,
    queue_adt,
    register_adt,
    set_adt,
    stack_adt,
    tag_object,
    universal_adt,
)
from .classical import (
    ClassicalResult,
    is_linearizable_classical,
    linearize_classical,
)
from .composition import (
    check_composition_theorem,
    check_theorem_2,
    interleavings,
    random_interleaving,
)
from .enumeration import (
    enumerate_composed_consensus_traces,
    enumerate_consensus_phase_traces,
    enumerate_phase_traces,
    parallel_composition_sweep,
    sweep_composition_scope,
)
from .fastcheck import (
    CheckReport,
    check_linearizable,
    is_linearizable_fast,
    partition_trace,
)
from .invariants import (
    check_first_phase_invariants,
    check_second_phase_invariants,
)
from .linearizability import (
    LinearizationResult,
    check_linearization_function,
    is_linearizable,
    linearize,
)
from .multisets import Multiset, elems
from .pretty import (
    format_history,
    format_linearization,
    format_speculative,
    format_trace,
)
from .recording import TraceRecorder, WellFormednessError
from .report import VerificationReport, verify_phases
from .sequences import (
    is_prefix,
    is_strict_prefix,
    longest_common_prefix,
)
from .speculative import (
    RInit,
    SpeculativeResult,
    consensus_rinit,
    is_speculatively_linearizable,
    singleton_rinit,
    speculatively_linearize,
)
from .trace_property import (
    FiniteTraceProperty,
    TraceProperty,
    compose,
    lin_property,
    slin_property,
)
from .traces import (
    Trace,
    is_phase_wellformed,
    is_wellformed,
    pending_invocations,
    strip_phase_tags,
)

__all__ = [
    "ADT",
    "CheckReport",
    "ClassicalResult",
    "FiniteTraceProperty",
    "Invocation",
    "LinearizationResult",
    "Multiset",
    "PartitionSpec",
    "Response",
    "RInit",
    "Signature",
    "SpeculativeResult",
    "Switch",
    "Trace",
    "TraceProperty",
    "TraceRecorder",
    "WellFormednessError",
    "cas_register_adt",
    "check_composition_theorem",
    "check_first_phase_invariants",
    "check_linearizable",
    "check_linearization_function",
    "check_second_phase_invariants",
    "check_theorem_2",
    "compose",
    "consensus_adt",
    "consensus_rinit",
    "counter_adt",
    "decide",
    "elems",
    "enumerate_composed_consensus_traces",
    "enumerate_consensus_phase_traces",
    "enumerate_phase_traces",
    "format_history",
    "format_linearization",
    "format_speculative",
    "format_trace",
    "interleavings",
    "inv",
    "is_linearizable",
    "is_linearizable_classical",
    "is_linearizable_fast",
    "is_phase_wellformed",
    "is_prefix",
    "is_speculatively_linearizable",
    "is_strict_prefix",
    "is_wellformed",
    "lin_property",
    "linearize",
    "linearize_classical",
    "longest_common_prefix",
    "parallel_composition_sweep",
    "partition_trace",
    "pending_invocations",
    "product_adt",
    "propose",
    "queue_adt",
    "random_interleaving",
    "register_adt",
    "res",
    "set_adt",
    "sig_T",
    "sig_phase",
    "singleton_rinit",
    "slin_property",
    "speculatively_linearize",
    "stack_adt",
    "strip_phase_tags",
    "sweep_composition_scope",
    "swi",
    "tag_object",
    "universal_adt",
    "verify_phases",
    "VerificationReport",
]
