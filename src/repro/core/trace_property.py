"""Trace properties, composition and projection (Section 3, Defs 1-3).

A trace property is a pair (signature, set of traces).  Trace sets are in
general infinite (e.g. ``Lin_T`` contains every linearizable trace), so a
:class:`TraceProperty` carries the trace set *intensionally* as a
membership predicate.  Systems observed by simulation are finite and use
:class:`FiniteTraceProperty`, which additionally supports the ``|=``
satisfaction check of the paper (``Q |= P`` iff same signature and
``Traces(Q) ⊆ Traces(P)``).

Composition (Definition 2) is implemented directly from its defining
property: ``t ∈ Traces(P1 ‖ P2)`` iff ``t`` consists of actions of the
composed signature and its projections onto each component's actions
belong to that component.  Property 1 (composition preserves satisfaction)
follows and is exercised in the tests.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .actions import Action, Signature
from .traces import Trace


class IncompatibleSignatures(ValueError):
    """Raised when composing signatures that share an output action."""


class TraceProperty:
    """Definition 1: a signature plus a (possibly infinite) trace set."""

    def __init__(
        self,
        signature: Signature,
        contains: Callable[[Trace], bool],
        description: str = "",
    ) -> None:
        self.signature = signature
        self._contains = contains
        self.description = description

    def contains(self, trace: Trace) -> bool:
        """Membership in ``Traces(P)``.

        Traces containing actions outside ``acts(sig(P))`` are rejected:
        Definition 1 requires traces to be traces *in* the signature.
        """
        if not all(self.signature.contains(a) for a in trace):
            return False
        return self._contains(trace)

    def __contains__(self, trace: Trace) -> bool:
        return self.contains(trace)

    def project(self, keep: Callable[[Action], bool]) -> "TraceProperty":
        """Definition 3: projection of the property onto an action set.

        The projected property contains ``t`` iff some member trace
        projects to ``t``.  For intensional properties this existential is
        not decidable in general; the returned property uses the sound
        approximation "t is a member projection of itself", which is exact
        whenever the property's membership is closed under removing
        non-``keep`` actions.  ``Lin_T`` and ``SLin_T`` are used with exact
        projections via their dedicated helpers; simulations use
        :class:`FiniteTraceProperty`, whose projection is exact.
        """
        signature = Signature(
            lambda a: keep(a) and self.signature.is_input(a),
            lambda a: keep(a) and self.signature.is_output(a),
            description=f"proj({self.signature.description})",
        )

        def contains(trace: Trace) -> bool:
            return self._contains(trace)

        return TraceProperty(
            signature, contains, description=f"proj({self.description})"
        )

    def __repr__(self) -> str:
        return f"TraceProperty({self.description or 'anonymous'})"


class FiniteTraceProperty(TraceProperty):
    """A trace property given by an explicit finite set of traces.

    This models an observed *system*: the traces collected from simulation
    runs.  Satisfaction ``Q |= P`` and exact projection are available.
    """

    def __init__(
        self,
        signature: Signature,
        traces: Iterable[Trace],
        description: str = "",
    ) -> None:
        trace_set = frozenset(
            t if isinstance(t, Trace) else Trace(t) for t in traces
        )
        super().__init__(
            signature, lambda t: t in trace_set, description=description
        )
        self.traces = trace_set

    def satisfies(self, other: TraceProperty) -> bool:
        """The paper's ``Q |= P``: every trace of Q belongs to P.

        Signature equality is intensional and cannot be decided for
        predicate signatures; following standard practice we check the
        trace-set inclusion and require the caller to pair properties over
        the same interface.
        """
        return all(other.contains(t) for t in self.traces)

    def project(self, keep: Callable[[Action], bool]) -> "FiniteTraceProperty":
        """Exact projection: project every member trace."""
        signature = Signature(
            lambda a: keep(a) and self.signature.is_input(a),
            lambda a: keep(a) and self.signature.is_output(a),
            description=f"proj({self.signature.description})",
        )
        return FiniteTraceProperty(
            signature,
            (t.project(keep) for t in self.traces),
            description=f"proj({self.description})",
        )

    def __repr__(self) -> str:
        return (
            f"FiniteTraceProperty({self.description or 'anonymous'}, "
            f"{len(self.traces)} traces)"
        )


def compose_signatures(sig1: Signature, sig2: Signature) -> Signature:
    """Definition 2's composed signature.

    ``in = (in1 u in2) \\ (out1 u out2)``; ``out = out1 u out2``.
    Compatibility (disjoint outputs) is enforced per action at membership
    time, since predicate signatures cannot be intersected eagerly.
    """

    def is_output(action: Action) -> bool:
        o1, o2 = sig1.is_output(action), sig2.is_output(action)
        if o1 and o2:
            raise IncompatibleSignatures(
                f"action {action!r} is an output of both components"
            )
        return o1 or o2

    def is_input(action: Action) -> bool:
        if is_output(action):
            return False
        return sig1.is_input(action) or sig2.is_input(action)

    return Signature(
        is_input,
        is_output,
        description=(
            f"{sig1.description or '?'} || {sig2.description or '?'}"
        ),
    )


def compose(p1: TraceProperty, p2: TraceProperty) -> TraceProperty:
    """Definition 2: the composition ``P1 ‖ P2``.

    Membership: a trace over the composed signature belongs to the
    composition iff its projection onto each component's actions belongs
    to that component.
    """
    signature = compose_signatures(p1.signature, p2.signature)

    def contains(trace: Trace) -> bool:
        t1 = trace.project(p1.signature.contains)
        t2 = trace.project(p2.signature.contains)
        return p1.contains(t1) and p2.contains(t2)

    return TraceProperty(
        signature,
        contains,
        description=f"({p1.description}) || ({p2.description})",
    )


def compose_finite(
    q1: FiniteTraceProperty, q2: FiniteTraceProperty, traces: Iterable[Trace]
) -> FiniteTraceProperty:
    """Observed composition: the subset of ``traces`` accepted by Q1 ‖ Q2.

    Simulation produces candidate interleavings; this filters them by the
    defining property of composition, yielding a finite system that can be
    checked against a specification with ``satisfies``.
    """
    spec = compose(q1, q2)
    signature = compose_signatures(q1.signature, q2.signature)
    accepted = [t for t in traces if spec.contains(t)]
    return FiniteTraceProperty(
        signature,
        accepted,
        description=f"({q1.description}) || ({q2.description})",
    )


def lin_property(adt) -> TraceProperty:
    """The ``Lin_T`` trace property (Section 4.6)."""
    from .actions import sig_T
    from .linearizability import lin_trace_property_contains

    return TraceProperty(
        sig_T(adt.is_input, adt.is_output),
        lambda t: lin_trace_property_contains(t, adt),
        description=f"Lin[{adt.name}]",
    )


def slin_property(m: int, n: int, adt, rinit) -> TraceProperty:
    """The ``SLin_T(m, n)`` trace property (Definition 36)."""
    from .actions import sig_phase
    from .speculative import is_speculatively_linearizable

    return TraceProperty(
        sig_phase(m, n),
        lambda t: is_speculatively_linearizable(t, m, n, adt, rinit),
        description=f"SLin[{adt.name}]({m},{n})",
    )
