"""Hypothesis strategies for traces — property-based testing as a library
feature.

Downstream users verifying their own speculation phases need random
well-formed traces; these strategies generate them directly in shrinkable
form (hypothesis minimizes failing examples to tiny traces).  Used by the
repository's own property tests.

Requires ``hypothesis`` (a test-only dependency): importing this module
without it raises ImportError.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from hypothesis import strategies as st

from .actions import Invocation, Response, Switch
from .adt import ADT, decide, propose
from .traces import Trace


@st.composite
def wellformed_traces(
    draw,
    adt: ADT,
    inputs: Sequence,
    clients: Sequence[Hashable] = ("c1", "c2", "c3"),
    max_steps: int = 10,
    honest: bool = False,
):
    """Well-formed phase-1 traces over ``adt``.

    ``honest=True`` makes every output the atomic-at-response-time output
    (the trace is linearizable by construction); otherwise outputs are
    drawn from plausible ADT outputs and the trace may or may not be
    linearizable — the right mix for equivalence testing.
    """
    n_steps = draw(st.integers(0, max_steps))
    open_input = {c: None for c in clients}
    state = adt.initial_state
    actions = []
    for _ in range(n_steps):
        client = draw(st.sampled_from(list(clients)))
        if open_input[client] is None:
            payload = draw(st.sampled_from(list(inputs)))
            actions.append(Invocation(client, 1, payload))
            open_input[client] = payload
        else:
            payload = open_input[client]
            if honest:
                state, output = adt.transition(state, payload)
            else:
                history_len = draw(st.integers(0, 2))
                history = [
                    draw(st.sampled_from(list(inputs)))
                    for _ in range(history_len)
                ] + [payload]
                output = adt.output(tuple(history))
            actions.append(Response(client, 1, payload, output))
            open_input[client] = None
    return Trace(actions)


@st.composite
def linearizable_traces(
    draw,
    adt: ADT,
    inputs: Sequence,
    clients: Sequence[Hashable] = ("c1", "c2", "c3"),
    max_steps: int = 10,
):
    """Traces linearizable by construction (atomic at response time)."""
    return draw(
        wellformed_traces(
            adt, inputs, clients=clients, max_steps=max_steps, honest=True
        )
    )


@st.composite
def consensus_phase_traces(
    draw,
    values: Sequence[Hashable] = ("a", "b"),
    clients: Sequence[Hashable] = ("c1", "c2"),
    max_steps: int = 8,
    abort_tag: int = 2,
):
    """Well-formed consensus *phase* traces with optional abort switches.

    Outputs and switch values are drawn from proposed-so-far values with
    a bias toward the first proposal, so a healthy fraction of generated
    traces satisfies SLin while the rest exercises rejection paths.
    """
    n_steps = draw(st.integers(0, max_steps))
    open_input = {c: None for c in clients}
    gone = set()
    proposed = []
    actions = []
    for _ in range(n_steps):
        live = [c for c in clients if c not in gone]
        if not live:
            break
        client = draw(st.sampled_from(live))
        if open_input[client] is None:
            value = draw(st.sampled_from(list(values)))
            actions.append(Invocation(client, 1, propose(value)))
            open_input[client] = propose(value)
            proposed.append(value)
        else:
            payload = open_input[client]
            pool = proposed or list(values)
            biased = [pool[0]] * 2 + pool
            value = draw(st.sampled_from(biased))
            if draw(st.booleans()):
                actions.append(
                    Response(client, 1, payload, decide(value))
                )
                open_input[client] = None
            else:
                actions.append(
                    Switch(client, abort_tag, payload, value)
                )
                gone.add(client)
    return Trace(actions)
