"""A replicated key-value store on speculative SMR.

The application the paper's introduction motivates (Chubby, Gaios):
clients issue ``put``/``get``/``delete`` operations, the speculative SMR
layer linearizes them into the replicated log, and responses are derived
by applying the KV ADT's output function to the log prefix ending at the
client's committed command — exactly the universal-ADT recipe of
Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.actions import Invocation, Response
from ..core.traces import Trace
from .replica import CommandOutcome, SpeculativeSMR
from .universal import UniversalFrontend, kv_delete, kv_get, kv_put, kv_store_adt


@dataclass
class KVResult:
    """A completed KV operation with its derived response."""

    client: Hashable
    command: Tuple
    response: Optional[Hashable]
    outcome: CommandOutcome


class ReplicatedKVStore:
    """Client-facing KV API over :class:`SpeculativeSMR`.

    Each operation is tagged with a unique sequence number before
    replication so identical commands from different clients occupy
    distinct log slots; responses strip the tag and apply the KV
    semantics to the linearized prefix.
    """

    def __init__(
        self,
        n_servers: int = 3,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        backoff: Any = None,
    ) -> None:
        self.smr = SpeculativeSMR(
            n_servers=n_servers,
            seed=seed,
            delay=delay,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            backoff=backoff,
        )
        self.frontend = UniversalFrontend(kv_store_adt())
        self.results: List[KVResult] = []
        self._seq = 0
        self.smr.on_commit = self._on_commit
        self._pending: Dict[Hashable, Tuple[Hashable, Tuple]] = {}
        self._events: List[Tuple[str, Hashable, Tuple, Optional[Hashable]]] = []
        self._busy: Dict[Hashable, bool] = {}
        self._queues: Dict[Hashable, List[Tuple]] = {}

    def _tagged(self, command: Tuple) -> Tuple:
        self._seq += 1
        return command + (("seq", self._seq),)

    @staticmethod
    def _untag(command: Tuple) -> Tuple:
        return command[:-1]

    def _submit(self, client: Hashable, command: Tuple, at: float) -> None:
        # Clients are sequential (the paper's client model): an operation
        # scheduled while the client's previous one is still in flight is
        # queued and starts when the response arrives.
        def arrive() -> None:
            if self._busy.get(client):
                self._queues.setdefault(client, []).append(command)
            else:
                self._start(client, command)

        self.smr.sim.schedule(at, arrive)

    def _start(self, client: Hashable, command: Tuple) -> None:
        self._busy[client] = True
        tagged = self._tagged(command)
        self._pending[tagged] = (client, command)
        self._events.append(("inv", client, command, None))
        self.smr.submit(client, tagged, at=0.0)

    def put(self, client: Hashable, key: Hashable, value: Hashable, at: float = 0.0) -> None:
        """Schedule a replicated ``put``."""
        self._submit(client, kv_put(key, value), at)

    def get(self, client: Hashable, key: Hashable, at: float = 0.0) -> None:
        """Schedule a replicated ``get``."""
        self._submit(client, kv_get(key), at)

    def delete(self, client: Hashable, key: Hashable, at: float = 0.0) -> None:
        """Schedule a replicated ``delete``."""
        self._submit(client, kv_delete(key), at)

    def _on_commit(self, outcome: CommandOutcome) -> None:
        client, command = self._pending[outcome.command]
        # The log prefix up to and including the committed slot is the
        # universal-object history; applying the KV ADT yields the
        # response (Section 6's recipe).
        history = tuple(
            self._untag(c)
            for slot, c in sorted(self.smr.log.items())
            if slot <= outcome.slot
        )
        response = self.frontend.respond(history)
        self.results.append(
            KVResult(
                client=client,
                command=command,
                response=response,
                outcome=outcome,
            )
        )
        self._events.append(("res", client, command, response))
        self._busy[client] = False
        queued = self._queues.get(client)
        if queued:
            self._start(client, queued.pop(0))

    def run(self, until: Optional[float] = None) -> None:
        """Drive the underlying simulation."""
        self.smr.run(until=until)

    def interface_trace(self) -> Trace:
        """The client-level trace of KV invocations and responses.

        Suitable for checking against ``Lin[kv_store]``: the KV store
        built on a linearizable universal object must itself be
        linearizable.
        """
        actions = []
        for kind, client, command, response in self._events:
            if kind == "inv":
                actions.append(Invocation(client, 1, command))
            else:
                actions.append(Response(client, 1, command, response))
        return Trace(actions)

    def state(self) -> Dict[Hashable, Hashable]:
        """The KV state after applying the committed log prefix."""
        mapping: Dict[Hashable, Hashable] = {}
        for command in self.smr.committed_log():
            untagged = self._untag(command)
            if untagged[0] == "put":
                mapping[untagged[1]] = untagged[2]
            elif untagged[0] == "delete":
                mapping.pop(untagged[1], None)
        return mapping
